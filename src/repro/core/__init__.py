"""Integrated mining framework facade."""

from .miner import LatentEntityMiner, MinerConfig, MiningResult

__all__ = ["LatentEntityMiner", "MinerConfig", "MiningResult"]
