"""The integrated mining framework (Section 1.4).

:class:`LatentEntityMiner` chains the dissertation's modules end to end:

1. collapse the text-attached network (Chapter 1 data model),
2. recursively construct the phrase-represented, entity-enriched topical
   hierarchy (Chapters 3-4),
3. expose entity topical role analysis over it (Chapter 5),
4. optionally mine hierarchical advisor–advisee relations when documents
   carry timestamps (Chapter 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cathy import BuilderConfig, HierarchyBuilder
from ..corpus import Corpus
from ..errors import DataError
from ..hierarchy import TopicalHierarchy
from ..network import HeterogeneousNetwork, build_collapsed_network
from ..obs import (build_run_report, get_logger, get_report_path,
                   is_enabled, span, write_report)
from ..parallel import pool_scope
from ..phrases import (PhraseCounts, attach_entity_rankings, attach_phrases)
from ..relations import (CandidateGraph, CollaborationNetwork, TPFG,
                         TPFGResult, build_candidate_graph)
from ..roles import RoleAnalyzer
from ..utils import RandomState, ensure_rng

logger = get_logger("core.miner")


@dataclass
class MinerConfig:
    """End-to-end configuration.

    Attributes:
        num_children: children per topic per level (see
            :class:`~repro.cathy.BuilderConfig.num_children`).
        max_depth: hierarchy depth.
        weight_mode: CATHYHIN link-type weighting
            ("equal" / "norm" / "learn" / mapping).
        min_support: frequent-phrase mining threshold.
        max_phrase_length: longest mined phrase.
        entity_types: which entity types to use (default: all present).
        min_count: minimum term frequency to enter the network.
        top_k: phrases / entities retained per topic.
        workers: parallel workers for hierarchy construction (sibling
            subtrees, EM restarts); None defers to the process default /
            ``REPRO_WORKERS`` (see :mod:`repro.parallel`).  Results are
            identical for every worker count under the same seed.
    """

    num_children: Union[int, Sequence[int], str] = 4
    max_depth: int = 2
    weight_mode: object = "learn"
    min_support: int = 5
    max_phrase_length: int = 6
    entity_types: Optional[Sequence[str]] = None
    min_count: int = 1
    top_k: int = 20
    workers: Optional[int] = None
    builder_overrides: Dict[str, object] = field(default_factory=dict)


@dataclass
class MiningResult:
    """Everything the integrated pipeline produces."""

    corpus: Corpus
    network: HeterogeneousNetwork
    hierarchy: TopicalHierarchy
    counts: PhraseCounts
    roles: RoleAnalyzer
    #: Run report (see :mod:`repro.obs.report`); None while observability
    #: is disabled.
    report: Optional[Dict[str, object]] = None

    def render(self, max_phrases: int = 5,
               entity_types: Optional[List[str]] = None,
               max_entities: int = 3) -> str:
        """ASCII rendering of the hierarchy (Figure 3.4 style).

        Degrades gracefully: topics with fewer than ``max_phrases``
        ranked phrases show what they have, undecorated topics fall back
        to their term distribution, and a hierarchy that produced no
        topics at all still renders (with a placeholder root) instead of
        assuming populated children.
        """
        return self.hierarchy.render(max_phrases=max_phrases,
                                     entity_types=entity_types,
                                     max_entities=max_entities)


class LatentEntityMiner:
    """Facade over the full framework."""

    def __init__(self, config: Optional[MinerConfig] = None,
                 seed: RandomState = None) -> None:
        self.config = config or MinerConfig()
        self._rng = ensure_rng(seed)

    def fit(self, corpus: Corpus, checkpoint_dir: Optional[str] = None,
            resume: bool = False) -> MiningResult:
        """Run network collapse, hierarchy construction, and decoration.

        With observability configured (:func:`repro.obs.configure`), every
        phase is timed, the EM runs leave convergence traces, and the
        aggregated run report is attached to the result — and written to
        the configured report path, if any.

        Args:
            corpus: the input corpus.
            checkpoint_dir: when given, hierarchy construction persists
                per-topic checkpoints there (see
                :class:`~repro.cathy.BuilderConfig`), so a killed fit can
                be resumed without redoing completed subtrees.
            resume: continue from checkpoints in ``checkpoint_dir``; the
                resumed fit produces the same hierarchy bit for bit.
        """
        config = self.config
        logger.info("fit: %d documents, %d terms", len(corpus),
                    len(corpus.vocabulary))
        with span("miner.fit"), pool_scope():
            with span("miner.network_collapse"):
                network = build_collapsed_network(
                    corpus, entity_types=config.entity_types,
                    min_count=config.min_count)
            builder_kwargs: Dict[str, object] = {
                "num_children": config.num_children,
                "max_depth": config.max_depth,
                "weight_mode": config.weight_mode,
                "workers": config.workers,
            }
            if checkpoint_dir is not None:
                builder_kwargs["checkpoint_dir"] = checkpoint_dir
                builder_kwargs["resume"] = resume
            builder_kwargs.update(config.builder_overrides)
            builder_config = BuilderConfig(**builder_kwargs)
            builder = HierarchyBuilder(builder_config, seed=self._rng)
            with span("miner.hierarchy"):
                hierarchy = builder.build(network)
            logger.info("fit: hierarchy has %d topics",
                        sum(1 for _ in hierarchy.topics()))
            with span("miner.phrase_decoration"):
                counts = attach_phrases(
                    hierarchy, corpus, min_support=config.min_support,
                    max_phrase_length=config.max_phrase_length,
                    top_k=config.top_k)
            with span("miner.entity_ranking"):
                attach_entity_rankings(hierarchy, top_k=config.top_k)
            with span("miner.roles"):
                roles = RoleAnalyzer(
                    hierarchy, corpus, counts=counts,
                    min_support=config.min_support,
                    max_phrase_length=config.max_phrase_length)
        report = self._finish_report(corpus)
        return MiningResult(corpus=corpus, network=network,
                            hierarchy=hierarchy, counts=counts, roles=roles,
                            report=report)

    # ------------------------------------------------------------ artifacts
    def save_model(self, result: MiningResult, path: str,
                   format: str = "v1") -> Dict[str, object]:
        """Export ``result`` as a versioned model artifact.

        The artifact carries everything the read path needs — the topic
        tree, phrase rankings, and entity role tables — plus a manifest
        fingerprinting this miner's configuration and the corpus
        vocabulary, so :meth:`load_model` can reject mismatched or
        corrupted files.  ``format`` picks the on-disk representation:
        ``"v1"`` (canonical JSON) or ``"v2"`` (zero-copy memory-mappable
        binary sections).  The write is atomic.  Returns the manifest.
        """
        from ..serve import save_model as _save_model

        return _save_model(result, path, config=self._artifact_config(),
                           format=format)

    @staticmethod
    def load_model(path: str):
        """Load a model artifact written by :meth:`save_model`.

        Returns a :class:`~repro.serve.ServedModel`; wrap it in a
        :class:`~repro.serve.ModelQueryEngine` (or ``repro serve``) to
        answer queries without re-running EM.

        Raises:
            DataError: corrupt, truncated, or schema-mismatched artifact.
        """
        from ..serve import load_model as _load_model

        return _load_model(path)

    def _artifact_config(self) -> Dict[str, object]:
        """The config fingerprint stamped into exported model manifests."""
        return dict(vars(self.config))

    def _finish_report(self, corpus: Corpus) -> Optional[Dict[str, object]]:
        """Build (and optionally persist) the run report when enabled."""
        if not is_enabled():
            return None
        config = dict(vars(self.config))
        config["num_documents"] = len(corpus)
        config["vocabulary_size"] = len(corpus.vocabulary)
        report = build_run_report(config=config)
        path = get_report_path()
        if path:
            write_report(report, path)
            logger.info("fit: wrote run report to %s", path)
        return report

    def mine_relations(self, corpus: Corpus,
                       author_type: str = "author",
                       ) -> Tuple[TPFGResult, CandidateGraph,
                                  CollaborationNetwork]:
        """Advisor–advisee mining over the corpus's author links.

        Requires documents to carry years; raises
        :class:`~repro.errors.DataError` otherwise.
        """
        if not any(doc.year is not None for doc in corpus):
            raise DataError("relation mining requires document years")
        network = CollaborationNetwork.from_corpus(corpus,
                                                   author_type=author_type)
        graph = build_candidate_graph(network)
        result = TPFG().fit(graph)
        return result, graph, network
