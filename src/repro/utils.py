"""Small numeric helpers shared across the library."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from .errors import ConfigurationError

#: Smallest probability used when guarding logs and divisions.
EPS = 1e-12

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged), so every stochastic entry point in the
    library shares one convention.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def normalize(values: Iterable[float]) -> np.ndarray:
    """Normalize non-negative ``values`` into a probability vector.

    A zero-sum input maps to the uniform distribution, which is the safe
    fallback inside EM iterations where a cluster may momentarily lose all
    of its mass.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError("normalize expects a 1-D array")
    if np.any(arr < 0):
        raise ConfigurationError("normalize expects non-negative values")
    total = arr.sum()
    if total <= 0:
        return np.full(arr.shape, 1.0 / max(len(arr), 1))
    return arr / total


def safe_log(values: np.ndarray) -> np.ndarray:
    """Elementwise ``log`` with values clipped away from zero."""
    return np.log(np.maximum(np.asarray(values, dtype=float), EPS))


def pointwise_kl(p: float, q: float) -> float:
    """Pointwise KL divergence ``p * log(p / q)`` with zero-guards.

    This is the combination rule used throughout the dissertation for
    popularity x purity (Eq. 4.9) and entity-specific ranking (Eq. 5.1).
    """
    if p <= 0:
        return 0.0
    return p * float(np.log(max(p, EPS) / max(q, EPS)))


def top_k_indices(scores: Sequence[float], k: int) -> List[int]:
    """Indices of the ``k`` largest scores, in descending score order."""
    arr = np.asarray(scores, dtype=float)
    if k <= 0:
        return []
    k = min(k, len(arr))
    order = np.argsort(-arr, kind="stable")
    return [int(i) for i in order[:k]]


def is_distribution(vector: np.ndarray, tol: float = 1e-6) -> bool:
    """True when ``vector`` is non-negative and sums to one within ``tol``."""
    arr = np.asarray(vector, dtype=float)
    return bool(np.all(arr >= -tol) and abs(arr.sum() - 1.0) <= tol)


def weighted_sample(probabilities: np.ndarray,
                    rng: np.random.Generator,
                    size: Optional[int] = None) -> Union[int, np.ndarray]:
    """Sample indices from a probability vector (single int when size=None)."""
    probs = normalize(probabilities)
    result = rng.choice(len(probs), size=size, p=probs)
    if size is None:
        return int(result)
    return result
