"""repro — Mining latent entity structures from unstructured, interconnected data.

A reproduction of Chi Wang's 2014 dissertation.  The public API is exposed
through the subpackages:

* :mod:`repro.corpus` — documents, tokenization, vocabulary.
* :mod:`repro.network` — heterogeneous edge-weighted networks.
* :mod:`repro.hierarchy` — topical hierarchy containers.
* :mod:`repro.cathy` — CATHY / CATHYHIN hierarchical topic discovery (Ch. 3).
* :mod:`repro.phrases` — KERT and ToPMine topical phrase mining (Ch. 4).
* :mod:`repro.roles` — entity topical role analysis (Ch. 5).
* :mod:`repro.relations` — TPFG and supervised relation mining (Ch. 6).
* :mod:`repro.strod` — scalable moment-based topic discovery (Ch. 7).
* :mod:`repro.baselines` — LDA, PLSA, NetClus, keyphrase baselines.
* :mod:`repro.eval` — HPMI, intrusion, nKQM, MI_K, robustness metrics.
* :mod:`repro.datasets` — synthetic DBLP / NEWS / planted-LDA generators.
* :mod:`repro.core` — the integrated LatentEntityMiner facade.
"""

from .errors import (ConfigurationError, ConvergenceError, DataError,
                     NotFittedError, ReproError)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "ConvergenceError",
    "__version__",
]
