"""repro — Mining latent entity structures from unstructured, interconnected data.

A reproduction of Chi Wang's 2014 dissertation.  The public API is exposed
through the subpackages:

* :mod:`repro.corpus` — documents, tokenization, vocabulary.
* :mod:`repro.network` — heterogeneous edge-weighted networks.
* :mod:`repro.hierarchy` — topical hierarchy containers.
* :mod:`repro.cathy` — CATHY / CATHYHIN hierarchical topic discovery (Ch. 3).
* :mod:`repro.phrases` — KERT and ToPMine topical phrase mining (Ch. 4).
* :mod:`repro.roles` — entity topical role analysis (Ch. 5).
* :mod:`repro.relations` — TPFG and supervised relation mining (Ch. 6).
* :mod:`repro.strod` — scalable moment-based topic discovery (Ch. 7).
* :mod:`repro.baselines` — LDA, PLSA, NetClus, keyphrase baselines.
* :mod:`repro.eval` — HPMI, intrusion, nKQM, MI_K, robustness metrics.
* :mod:`repro.datasets` — synthetic DBLP / NEWS / planted-LDA generators.
* :mod:`repro.core` — the integrated LatentEntityMiner facade.
* :mod:`repro.lint` — static enforcement of the codebase's determinism,
  atomicity, and error-contract invariants (``repro lint``).
"""

from .errors import (ConfigurationError, ConvergenceError, DataError,
                     NotFittedError, ReproError)

__version__ = "1.5.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "ConvergenceError",
    "__version__",
    "get_version",
]


def get_version() -> str:
    """The library version, preferring installed package metadata.

    Falls back to the in-tree ``__version__`` constant when the package
    is imported straight from a source checkout (``PYTHONPATH=src``)
    without being installed.  This is the version stamped into run
    reports, dataset files, and model artifacts so every on-disk
    artifact is traceable to the code that produced it.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 never reaches here
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__
