"""CATHY / CATHYHIN hierarchical topic and community discovery (Chapter 3)."""

from .builder import BuilderConfig, HierarchyBuilder
from .em import CathyEM, TermTopicModel
from .hin_em import CathyHIN, HINTopicModel
from .model_selection import score_links, select_num_topics, split_network

__all__ = [
    "CathyEM",
    "TermTopicModel",
    "CathyHIN",
    "HINTopicModel",
    "HierarchyBuilder",
    "BuilderConfig",
    "select_num_topics",
    "split_network",
    "score_links",
]
