"""Recursive topical hierarchy construction (Steps 1-3 of CATHY/CATHYHIN).

A :class:`HierarchyBuilder` clusters a network into subtopic subnetworks
with :class:`~repro.cathy.hin_em.CathyHIN` and recurses top-down until the
requested depth, a too-small subnetwork, or a model-selection stop.  The
result is a :class:`~repro.hierarchy.TopicalHierarchy` whose topics carry
per-type ranking distributions and their subnetworks — ready for phrase
ranking (Chapter 4) and role analysis (Chapter 5).

Sibling subtopic subproblems are independent (the STROD chapter's
scalability observation), so each child's entire subtree expansion fans
out over :func:`repro.parallel.pmap`.  Every expansion draws its
randomness from a :class:`~numpy.random.SeedSequence` spawned in the
parent before dispatch, which makes the built hierarchy identical for
every worker count under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..hierarchy import Topic, TopicalHierarchy
from ..network import HeterogeneousNetwork
from ..obs import get_logger, span
from ..parallel import pmap, pool_scope, rng_from, spawn_seed_sequences
from ..resilience import checkpoint_in
from ..utils import RandomState, ensure_rng
from .hin_em import CathyHIN
from .model_selection import select_num_topics

logger = get_logger("cathy.builder")


@dataclass
class BuilderConfig:
    """Configuration for :class:`HierarchyBuilder`.

    Attributes:
        num_children: children per topic — an int used at every level, a
            sequence indexed by level, or ``"auto"`` for model selection.
        max_depth: maximal topic level (1 = flat clustering at the root).
        auto_candidates: candidate k values when ``num_children="auto"``.
        selection_method: ``"bic"`` or ``"cv"`` for auto selection.
        min_network_weight: stop recursing below this total link weight.
        min_nodes: stop recursing when any would-be clustering has fewer
            nodes than this.
        weight_mode: CATHYHIN link-type weight mode per level
            (``"equal"``/``"norm"``/``"learn"`` or mapping).
        max_iter / restarts / tol: forwarded to the EM.
        subnetwork_min_weight: threshold for dropping links when extracting
            child networks (the "expected weight >= 1" rule).
        workers: parallel workers for sibling subtree expansion and EM
            restarts; None defers to the process default /
            ``REPRO_WORKERS`` (see :mod:`repro.parallel`).  The built
            hierarchy is identical for every worker count.
        checkpoint_dir: directory for crash-recovery checkpoints; every
            topic node gets a subtree checkpoint (finished expansions)
            and an EM checkpoint (the in-flight fit), so a killed build
            resumes without redoing completed subtrees.  None disables
            checkpointing.
        checkpoint_every: EM-iteration cadence for the in-flight
            checkpoints (1 = every iteration).
        resume: continue from existing checkpoints in ``checkpoint_dir``;
            checkpoints written under different builder parameters or a
            different seed are rejected with a
            :class:`~repro.errors.DataError` because resuming them would
            not reproduce the uninterrupted build.
    """

    num_children: Union[int, Sequence[int], str] = 4
    max_depth: int = 2
    auto_candidates: Sequence[int] = tuple(range(2, 9))
    selection_method: str = "bic"
    min_network_weight: float = 20.0
    min_nodes: int = 4
    weight_mode: object = "equal"
    max_iter: int = 150
    restarts: int = 1
    tol: float = 1e-6
    subnetwork_min_weight: float = 1.0
    workers: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    resume: bool = False

    #: Parameters that must match for a checkpoint to be resumable
    #: (execution-only knobs like ``workers`` excluded on purpose).
    _GUARDED = ("num_children", "max_depth", "auto_candidates",
                "selection_method", "min_network_weight", "min_nodes",
                "weight_mode", "max_iter", "restarts", "tol",
                "subnetwork_min_weight")


def _safe_name(notation: str) -> str:
    """A topic notation as a filesystem-safe checkpoint file stem."""
    return notation.replace("/", "-")


def _expand_subtree_task(config: BuilderConfig, item: Tuple) -> Topic:
    """Expand one child topic's whole subtree (worker-process task).

    Inside a pool worker all nested pmaps resolve to the serial backend,
    so the recursion below this point never creates nested pools.
    """
    topic, network, level, seed_seq = item
    builder = HierarchyBuilder(config)
    builder._expand(topic, network, level, seed_seq)
    return topic


class HierarchyBuilder:
    """Builds a topical hierarchy from an edge-weighted network."""

    def __init__(self, config: Optional[BuilderConfig] = None,
                 seed: RandomState = None) -> None:
        self.config = config or BuilderConfig()
        self._rng = ensure_rng(seed)

    # ----------------------------------------------------------------- build
    def build(self, network: HeterogeneousNetwork) -> TopicalHierarchy:
        """Construct the hierarchy rooted at topic ``o`` for ``network``."""
        hierarchy = TopicalHierarchy()
        hierarchy.root.network = network
        self._set_parent_phi(hierarchy.root, network)
        root_seq = spawn_seed_sequences(self._rng, 1)[0]
        with pool_scope():
            self._expand(hierarchy.root, network, 0, root_seq)
        return hierarchy

    def expand_topic(self, hierarchy: TopicalHierarchy, topic: Topic,
                     num_children: Optional[int] = None) -> None:
        """Re-grow the subtree under ``topic`` (the revision primitive).

        This is the "revise part of the hierarchy while remaining other
        parts intact" operation highlighted in Section 1.4.  With
        ``num_children`` given, exactly one level of that many subtopics
        is grown; otherwise the builder's configuration applies as it
        did during the original construction.
        """
        if topic.network is None:
            raise ConfigurationError(
                f"topic {topic.notation} has no attached network")
        topic.children = []
        seed_seq = spawn_seed_sequences(self._rng, 1)[0]
        if num_children is None:
            self._expand(topic, topic.network, topic.level, seed_seq)
            return
        saved_children = self.config.num_children
        saved_depth = self.config.max_depth
        self.config.num_children = [0] * topic.level + [num_children]
        self.config.max_depth = topic.level + 1
        try:
            self._expand(topic, topic.network, topic.level, seed_seq)
        finally:
            self.config.num_children = saved_children
            self.config.max_depth = saved_depth

    # -------------------------------------------------------------- recursion
    def _expand(self, topic: Topic, network: HeterogeneousNetwork,
                level: int, seed_seq: np.random.SeedSequence) -> None:
        # One span per hierarchy node: the recursion's span tree mirrors
        # the topic tree, so a flamegraph shows which subtree was slow.
        with span("cathy.builder.expand", topic=topic.notation,
                  level=level):
            self._expand_node(topic, network, level, seed_seq)

    def _expand_node(self, topic: Topic, network: HeterogeneousNetwork,
                     level: int, seed_seq: np.random.SeedSequence) -> None:
        config = self.config
        if level >= config.max_depth:
            return
        if network.total_weight() < config.min_network_weight:
            return
        num_nodes = sum(network.node_count(t) for t in network.node_types())
        if num_nodes < config.min_nodes or not network.link_types():
            return

        # Crash recovery: a finished subtree is restored wholesale; an
        # interrupted EM fit resumes from its iteration checkpoint.  The
        # guard ties every file to the builder parameters and this
        # node's spawned seed, so a stale or foreign checkpoint is
        # rejected instead of silently breaking reproducibility.
        guard = self._checkpoint_guard(seed_seq)
        stem = _safe_name(topic.notation)
        subtree_writer = checkpoint_in(
            config.checkpoint_dir, "subtree_" + stem,
            "cathy.builder.subtree", config=guard)
        if subtree_writer is not None and config.resume:
            saved = subtree_writer.load()
            if saved is not None:
                topic.children = saved["state"]["children"]
                logger.debug("restored subtree %s from checkpoint",
                             topic.notation)
                return
        em_writer = checkpoint_in(
            config.checkpoint_dir, "em_" + stem, "cathy.hin_em",
            config=guard, every=config.checkpoint_every)

        k = self._children_at(level, network, seed_seq)
        if k < 2:
            return

        logger.debug("expanding %s at level %d into %d subtopics "
                     "(%d nodes, total weight %.1f)", topic.notation,
                     level, k, num_nodes, network.total_weight())
        fit_seq = seed_seq.spawn(1)[0]
        estimator = CathyHIN(num_topics=k,
                             weight_mode=config.weight_mode,
                             max_iter=config.max_iter,
                             restarts=config.restarts,
                             tol=config.tol,
                             seed=rng_from(fit_seq),
                             workers=config.workers,
                             checkpoint=em_writer,
                             resume=config.resume)
        model = estimator.fit(network)

        # Order children by descending rho so child index 0 is the largest
        # subtopic — stable, readable hierarchies.
        order = np.argsort(-model.rho, kind="stable")
        child_items = []
        child_seqs = seed_seq.spawn(len(order))
        for z, child_seq in zip(order, child_seqs):
            z = int(z)
            subnetwork = estimator.subnetwork(
                z, min_weight=config.subnetwork_min_weight)
            child = Topic(
                rho=float(model.rho[z]),
                phi={t: model.topic_distribution(t, z)
                     for t in model.node_names},
                network=subnetwork)
            topic.add_child(child)
            child_items.append((child, subnetwork, level + 1, child_seq))
        if not child_items:
            return
        # Each sibling subtree is an independent subproblem: fan the whole
        # recursions out, then reattach in rho order.  Serial and parallel
        # paths run identical code with identical seeds.
        topic.children = pmap(_expand_subtree_task, child_items,
                              workers=config.workers, shared=config,
                              label="cathy.builder.children")
        if subtree_writer is not None:
            subtree_writer.save(level, {"children": topic.children})
            if em_writer is not None:
                em_writer.clear()

    def _checkpoint_guard(self, seed_seq: np.random.SeedSequence,
                          ) -> Dict[str, object]:
        """The config fingerprint stored with every checkpoint of a node."""
        guard: Dict[str, object] = {
            name: getattr(self.config, name)
            for name in BuilderConfig._GUARDED}
        guard["seed_entropy"] = repr(seed_seq.entropy)
        guard["spawn_key"] = list(seed_seq.spawn_key)
        return guard

    def _children_at(self, level: int, network: HeterogeneousNetwork,
                     seed_seq: np.random.SeedSequence) -> int:
        num_children = self.config.num_children
        if num_children == "auto":
            selection_seq = seed_seq.spawn(1)[0]
            best, _ = select_num_topics(
                network,
                candidates=self.config.auto_candidates,
                method=self.config.selection_method,
                seed=rng_from(selection_seq),
                weight_mode=self.config.weight_mode,
                max_iter=min(self.config.max_iter, 60),
                restarts=1)
            return best
        if isinstance(num_children, int):
            return num_children
        if isinstance(num_children, Sequence):
            if level < len(num_children):
                return int(num_children[level])
            return 0
        raise ConfigurationError(
            f"unsupported num_children: {num_children!r}")

    @staticmethod
    def _set_parent_phi(root: Topic, network: HeterogeneousNetwork) -> None:
        """Give the root a phi built from weighted degrees.

        Matches the convention that a topic's ranking distribution is the
        normalized node participation in its own network.
        """
        for node_type in network.node_types():
            names = network.node_names(node_type)
            if not names:
                continue
            degrees = network.degree_vector(node_type)
            total = degrees.sum()
            if total <= 0:
                continue
            root.phi[node_type] = {
                name: float(d / total)
                for name, d in zip(names, degrees) if d > 0}
