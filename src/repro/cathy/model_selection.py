"""Choosing the number of subtopics (Section 3.2.3).

Two strategies are provided, as discussed in the dissertation: held-out
cross-validation (Smyth) and the Bayesian information criterion.  Both
operate on the CATHYHIN model; BIC is recommended for small networks and
cross-validation when data is plentiful.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..network import HeterogeneousNetwork
from ..utils import EPS, RandomState, ensure_rng
from .hin_em import CathyHIN, HINTopicModel


def score_links(model: HINTopicModel,
                network: HeterogeneousNetwork,
                links: Iterable[Tuple[Tuple[str, str], int, int, float]],
                ) -> float:
    """Average per-unit-weight log score of held-out links under ``model``.

    Each element of ``links`` is (link_type, i, j, weight) with node ids
    in the *original* network's index space; node identity is resolved by
    name so models fitted on a subnetwork still score correctly.
    """
    total_ll = 0.0
    total_weight = 0.0
    name_index = {t: {name: idx for idx, name in enumerate(names)}
                  for t, names in model.node_names.items()}
    for link_type, i, j, weight in links:
        type_x, type_y = link_type
        name_x = network.node_names(type_x)[i]
        name_y = network.node_names(type_y)[j]
        idx_x = name_index.get(type_x, {}).get(name_x)
        idx_y = name_index.get(type_y, {}).get(name_y)
        if idx_x is None or idx_y is None:
            score = EPS
        else:
            topical = float(np.dot(
                model.rho,
                model.phi[type_x][:, idx_x] * model.phi[type_y][:, idx_y]))
            background = model.rho0 * 0.5 * (
                model.phi_background[type_x][idx_x]
                * model.phi_parent[type_y][idx_y]
                + model.phi_background[type_y][idx_y]
                * model.phi_parent[type_x][idx_x])
            score = max(topical + background, EPS)
        total_ll += weight * float(np.log(score))
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total_ll / total_weight


def split_network(network: HeterogeneousNetwork,
                  holdout_fraction: float = 0.2,
                  seed: RandomState = None,
                  ) -> Tuple[HeterogeneousNetwork, list]:
    """Randomly split links into a training network and a held-out list."""
    if not 0 < holdout_fraction < 1:
        raise ConfigurationError("holdout_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    train = HeterogeneousNetwork()
    for node_type in network.node_types():
        train.add_nodes(node_type, network.node_names(node_type))
    held_out = []
    for link_type in network.link_types():
        type_x, type_y = link_type
        i_idx, j_idx, weights = network.link_arrays(link_type)
        if not len(weights):
            continue
        # One batched draw per link type; the held-out mask selects
        # columns out of the CSR arrays instead of testing per link.
        mask = rng.random(len(weights)) < holdout_fraction
        held_out.extend(
            (link_type, i, j, w)
            for i, j, w in zip(i_idx[mask].tolist(), j_idx[mask].tolist(),
                               weights[mask].tolist()))
        keep = ~mask
        train.add_links(type_x, i_idx[keep], type_y, j_idx[keep],
                        weights=weights[keep])
    return train, held_out


def select_num_topics(network: HeterogeneousNetwork,
                      candidates: Iterable[int] = range(2, 11),
                      method: str = "bic",
                      holdout_fraction: float = 0.2,
                      folds: int = 1,
                      seed: RandomState = None,
                      **fit_kwargs) -> Tuple[int, Dict[int, float]]:
    """Pick the number of subtopics k for one topic node.

    Args:
        method: ``"bic"`` (minimize BIC) or ``"cv"`` (maximize averaged
            held-out log-likelihood).
        folds: number of random held-out splits averaged for ``"cv"``.
        fit_kwargs: forwarded to :class:`~repro.cathy.hin_em.CathyHIN`.

    Returns:
        (best_k, score_per_k).  For BIC lower is better; for CV higher is
        better; ``best_k`` already accounts for the direction.
    """
    if method not in ("bic", "cv"):
        raise ConfigurationError("method must be 'bic' or 'cv'")
    rng = ensure_rng(seed)
    candidates = [k for k in candidates if k >= 1]
    if not candidates:
        raise ConfigurationError("no candidate topic numbers supplied")

    scores: Dict[int, float] = {}
    if method == "bic":
        for k in candidates:
            estimator = CathyHIN(num_topics=k, seed=rng, **fit_kwargs)
            estimator.fit(network)
            scores[k] = estimator.bic()
        best = min(scores, key=lambda k: scores[k])
        return best, scores

    splits = [split_network(network, holdout_fraction, seed=rng)
              for _ in range(max(folds, 1))]
    for k in candidates:
        fold_scores = []
        for train, held_out in splits:
            estimator = CathyHIN(num_topics=k, seed=rng, **fit_kwargs)
            model = estimator.fit(train)
            fold_scores.append(score_links(model, network, held_out))
        scores[k] = float(np.mean(fold_scores))
    best = max(scores, key=lambda k: scores[k])
    return best, scores
