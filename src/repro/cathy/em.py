"""CATHY: Poisson EM clustering of a homogeneous term network (Section 3.1).

The generative model: every co-occurrence link between terms i and j in
topic ``t/z`` follows ``e_ij ~ Poisson(rho_z * phi_z,i * phi_z,j)``
(Eq. 3.1–3.2); the observed link weight is the sum over subtopics
(Eq. 3.3).  Maximum-likelihood inference is the EM of Eq. 3.5–3.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..obs import timed, trace
from ..utils import EPS, RandomState, ensure_rng
from ..network import HeterogeneousNetwork, TERM_TYPE


@dataclass
class TermTopicModel:
    """Fitted parameters of the homogeneous CATHY model for one topic node.

    Attributes:
        rho: expected number of links per subtopic, shape (k,)  (Eq. 3.6).
        phi: subtopic node distributions, shape (k, V)  (Eq. 3.7).
        node_names: term names aligned with phi's columns.
        log_likelihood: observed-data log likelihood at convergence (up to
            link-independent constants).
    """

    rho: np.ndarray
    phi: np.ndarray
    node_names: List[str]
    log_likelihood: float

    @property
    def num_topics(self) -> int:
        """Number of subtopics k."""
        return self.phi.shape[0]

    def topic_distribution(self, z: int) -> Dict[str, float]:
        """phi_z as a name -> probability mapping."""
        return {name: float(p)
                for name, p in zip(self.node_names, self.phi[z]) if p > 0}


class CathyEM:
    """EM estimator for the homogeneous Poisson link-clustering model.

    Args:
        num_topics: number of subtopics k.
        max_iter: EM iteration budget.
        tol: relative log-likelihood improvement below which EM stops.
        restarts: random restarts; the best-likelihood solution is kept.
        seed: RNG seed or generator.
    """

    def __init__(self, num_topics: int, max_iter: int = 200,
                 tol: float = 1e-6, restarts: int = 1,
                 seed: RandomState = None) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        if restarts < 1:
            raise ConfigurationError("restarts must be >= 1")
        self.num_topics = num_topics
        self.max_iter = max_iter
        self.tol = tol
        self.restarts = restarts
        self._rng = ensure_rng(seed)
        self.model_: Optional[TermTopicModel] = None

    # ------------------------------------------------------------------- fit
    def fit(self, network: HeterogeneousNetwork,
            node_type: str = TERM_TYPE) -> TermTopicModel:
        """Fit the model to the ``node_type`` co-occurrence links."""
        names = network.node_names(node_type)
        num_nodes = len(names)
        if num_nodes == 0:
            raise ConfigurationError("network has no nodes to cluster")
        links = list(network.links((node_type, node_type)))
        if not links:
            raise ConfigurationError("network has no links to cluster")
        i_idx = np.array([l[0] for l in links], dtype=np.int64)
        j_idx = np.array([l[1] for l in links], dtype=np.int64)
        weights = np.array([l[2] for l in links], dtype=float)

        with timed("cathy.em.fit"):
            best: Optional[TermTopicModel] = None
            for _ in range(self.restarts):
                model = self._fit_once(i_idx, j_idx, weights,
                                       num_nodes, names)
                if best is None or model.log_likelihood > best.log_likelihood:
                    best = model
        self.model_ = best
        return best

    def _fit_once(self, i_idx: np.ndarray, j_idx: np.ndarray,
                  weights: np.ndarray, num_nodes: int,
                  names: List[str]) -> TermTopicModel:
        k = self.num_topics
        total = weights.sum()
        phi = self._rng.dirichlet(np.ones(num_nodes), size=k)
        rho = np.full(k, total / k)

        tracer = trace("cathy.em", num_topics=k, num_nodes=num_nodes,
                       num_links=len(weights))
        termination = "max_iter"
        prev_ll = -np.inf
        ll = prev_ll
        for _ in range(self.max_iter):
            # E-step (Eq. 3.5): responsibilities per link and subtopic.
            scores = rho[:, None] * phi[:, i_idx] * phi[:, j_idx]  # (k, E)
            denom = scores.sum(axis=0)
            denom = np.maximum(denom, EPS)
            q = scores / denom  # (k, E)
            ll = float(np.dot(weights, np.log(denom)))

            # M-step (Eq. 3.6-3.7).
            expected = q * weights  # (k, E)
            rho = expected.sum(axis=1)
            phi = np.zeros((k, num_nodes))
            for z in range(k):
                np.add.at(phi[z], i_idx, expected[z])
                np.add.at(phi[z], j_idx, expected[z])
            row_sums = phi.sum(axis=1, keepdims=True)
            row_sums = np.maximum(row_sums, EPS)
            phi = phi / row_sums
            rho = np.maximum(rho, EPS)

            tracer.record(log_likelihood=ll)
            if ll - prev_ll < self.tol * max(abs(prev_ll), 1.0) \
                    and np.isfinite(prev_ll):
                termination = "converged"
                break
            prev_ll = ll
        tracer.finish(termination)

        return TermTopicModel(rho=rho, phi=phi, node_names=list(names),
                              log_likelihood=ll)

    # ------------------------------------------------------------ subnetwork
    def expected_link_weights(self, network: HeterogeneousNetwork,
                              node_type: str = TERM_TYPE,
                              ) -> List[Dict[Tuple[int, int], float]]:
        """Expected per-subtopic link weights e-hat (posterior split).

        Returns one ``{(i, j): weight}`` mapping per subtopic, computed
        with Eq. 3.5 at the fitted parameters.
        """
        model = self._require_fitted()
        result: List[Dict[Tuple[int, int], float]] = [
            {} for _ in range(model.num_topics)]
        for i, j, weight in network.links((node_type, node_type)):
            scores = model.rho * model.phi[:, i] * model.phi[:, j]
            denom = scores.sum()
            if denom <= 0:
                continue
            for z in range(model.num_topics):
                expected = weight * scores[z] / denom
                if expected > 0:
                    result[z][(i, j)] = expected
        return result

    def subnetworks(self, network: HeterogeneousNetwork,
                    node_type: str = TERM_TYPE,
                    min_weight: float = 1.0) -> List[HeterogeneousNetwork]:
        """Per-subtopic subnetworks, dropping links below ``min_weight``.

        This is the recursion step of CATHY: extract E^{t/z} =
        {e-hat >= 1} and cluster again (Section 3.1).
        """
        per_topic = self.expected_link_weights(network, node_type)
        return [network.subnetwork({(node_type, node_type): bucket},
                                   min_weight=min_weight)
                for bucket in per_topic]

    def _require_fitted(self) -> TermTopicModel:
        if self.model_ is None:
            raise NotFittedError("call fit() before using the model")
        return self.model_
