"""CATHY: Poisson EM clustering of a homogeneous term network (Section 3.1).

The generative model: every co-occurrence link between terms i and j in
topic ``t/z`` follows ``e_ij ~ Poisson(rho_z * phi_z,i * phi_z,j)``
(Eq. 3.1–3.2); the observed link weight is the sum over subtopics
(Eq. 3.3).  Maximum-likelihood inference is the EM of Eq. 3.5–3.7.

Both hot kernels are fully vectorized: the M-step scatters all subtopic
expectations in one :func:`numpy.bincount` over a flattened ``(k * V)``
index space, and the posterior link split (Eq. 3.5) is computed for
every link and subtopic in a single ``(k, E)`` pass.  Random restarts
fan out over :func:`repro.parallel.pmap` with per-restart seeds derived
via :meth:`numpy.random.SeedSequence.spawn`, so any worker count
reproduces the serial result exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..fastpath import kernel_fallback
from ..obs import inc, span, trace
from ..parallel import pmap, rng_from, spawn_seed_sequences
from ..resilience import CheckpointWriter
from ..utils import EPS, RandomState, ensure_rng
from ..network import HeterogeneousNetwork, TERM_TYPE

try:
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy ships with the project
    _sparse = None


class RestartCheckpoint:
    """Checkpoint slot for the live restart inside a multi-restart fit.

    The on-disk document always holds the full restart loop state —
    completed runs, which restart is live, and that restart's
    solver-defined resume state — so a crash at any point resumes
    without redoing finished restarts.
    """

    def __init__(self, writer: CheckpointWriter, completed: List,
                 restart: int) -> None:
        self._writer = writer
        self._completed = completed
        self._restart = restart
        self.every = writer.every

    def save(self, iteration: int, state: Dict) -> None:
        """Persist ``state`` as the live restart's resume state."""
        self._writer.save(iteration, {"completed": list(self._completed),
                                      "restart": self._restart,
                                      "current": state})

    def maybe_save(self, iteration: int, state_fn) -> bool:
        """Save at the writer's cadence; ``state_fn`` is called lazily."""
        if (iteration + 1) % self.every != 0:
            return False
        self.save(iteration, state_fn())
        return True


def run_restarts_checkpointed(writer: CheckpointWriter, resume: bool,
                              shared, seeds, task) -> List:
    """Serial restart loop with checkpoint/resume.

    Bit-identical to the :func:`repro.parallel.pmap` fan-out: the same
    deterministically spawned seeds drive the same per-restart kernels,
    only sequentially so there is a single well-ordered resume point.
    ``task(shared, seed_seq, checkpoint=..., state=...)`` must accept the
    extra keywords (the pmap path calls it without them).
    """
    completed: List = []
    start = 0
    inner_state = None
    document = writer.load() if resume else None
    if document is not None:
        outer = document["state"]
        completed = list(outer["completed"])
        start = int(outer["restart"])
        inner_state = outer["current"]
    for index in range(start, len(seeds)):
        inner = RestartCheckpoint(writer, completed, index)
        run = task(shared, seeds[index], checkpoint=inner, state=inner_state)
        inner_state = None
        completed.append(run)
        writer.save(index, {"completed": list(completed),
                            "restart": index + 1, "current": None})
    return completed


@dataclass
class TermTopicModel:
    """Fitted parameters of the homogeneous CATHY model for one topic node.

    Attributes:
        rho: expected number of links per subtopic, shape (k,)  (Eq. 3.6).
        phi: subtopic node distributions, shape (k, V)  (Eq. 3.7).
        node_names: term names aligned with phi's columns.
        log_likelihood: observed-data log likelihood at convergence (up to
            link-independent constants).
    """

    rho: np.ndarray
    phi: np.ndarray
    node_names: List[str]
    log_likelihood: float

    @property
    def num_topics(self) -> int:
        """Number of subtopics k."""
        return self.phi.shape[0]

    def topic_distribution(self, z: int) -> Dict[str, float]:
        """phi_z as a name -> probability mapping."""
        return {name: float(p)
                for name, p in zip(self.node_names, self.phi[z]) if p > 0}


def flat_scatter_index(idx: np.ndarray, num_nodes: int,
                       k: int) -> np.ndarray:
    """Flattened ``(k * V)`` scatter index for one link-endpoint array.

    Depends only on the link arrays, the node count, and k — all fixed
    across EM iterations — so fits precompute it once and reuse it every
    M-step.
    """
    offsets = (np.arange(k, dtype=np.int64) * num_nodes)[:, None]
    return (offsets + idx[None, :]).reshape(-1)


def scatter_expectations(expected: np.ndarray, i_idx: np.ndarray,
                         j_idx: np.ndarray, num_nodes: int,
                         flat_idx: Optional[Tuple[np.ndarray, np.ndarray]]
                         = None) -> np.ndarray:
    """Accumulate per-link expectations onto both endpoints, per subtopic.

    One :func:`numpy.bincount` per link direction over a flattened
    ``(k * V)`` index space replaces the per-subtopic ``np.add.at``
    loop; ``expected`` has shape (k, E) and the result (k, V).  Pass a
    precomputed ``(flat_i, flat_j)`` pair (from
    :func:`flat_scatter_index`) to skip rebuilding the indices in hot
    loops.
    """
    k = expected.shape[0]
    if flat_idx is None:
        flat_i = flat_scatter_index(i_idx, num_nodes, k)
        flat_j = flat_scatter_index(j_idx, num_nodes, k)
    else:
        flat_i, flat_j = flat_idx
    contrib = expected.reshape(-1)
    flat = np.bincount(flat_i, weights=contrib, minlength=k * num_nodes)
    flat += np.bincount(flat_j, weights=contrib, minlength=k * num_nodes)
    return flat.reshape(k, num_nodes)


def link_incidence(i_idx: np.ndarray, j_idx: np.ndarray,
                   num_nodes: int):
    """(E, V) CSR incidence matrix of an undirected edge list.

    Row e carries a unit entry at columns ``i_e`` and ``j_e`` (a 2.0 at
    the diagonal column for self-links, matching the double count of
    :func:`scatter_expectations`), so the whole M-step scatter becomes a
    single sparse product ``expected @ incidence`` — the (k, E) posterior
    expectations land on the (k, V) node axis in one pass.  Returns
    ``None`` when :mod:`scipy` is unavailable; callers fall back to the
    bincount scatter via :func:`repro.fastpath.kernel_fallback`.
    """
    if _sparse is None:
        return None
    num_links = len(i_idx)
    rows = np.repeat(np.arange(num_links, dtype=np.int64), 2)
    cols = np.empty(2 * num_links, dtype=np.int64)
    cols[0::2] = i_idx
    cols[1::2] = j_idx
    data = np.ones(2 * num_links, dtype=np.float64)
    matrix = _sparse.coo_matrix((data, (rows, cols)),
                                shape=(num_links, num_nodes))
    matrix.sum_duplicates()
    return matrix.tocsr()


def endpoint_one_hot(idx: np.ndarray, num_nodes: int):
    """(E, V) CSR with a single unit entry per row at column ``idx[e]``.

    The per-endpoint scatter operator for heterogeneous links, where the
    two endpoints live on different node-type axes and need separate
    matrices.  Each row has exactly one entry, so the CSR triple is
    assembled directly (``indptr = arange``) without a COO round-trip.
    Returns ``None`` when :mod:`scipy` is unavailable.
    """
    if _sparse is None:
        return None
    num_links = len(idx)
    return _sparse.csr_matrix(
        (np.ones(num_links, dtype=np.float64),
         np.asarray(idx, dtype=np.int64),
         np.arange(num_links + 1, dtype=np.int64)),
        shape=(num_links, num_nodes))


def posterior_link_split(rho: np.ndarray, phi: np.ndarray,
                         i_idx: np.ndarray, j_idx: np.ndarray,
                         weights: np.ndarray,
                         counter: Optional[str] = "cathy.degenerate_links",
                         ) -> np.ndarray:
    """Eq. 3.5 posterior split of every link weight, one (k, E) pass.

    Links whose mixture score degenerates to zero (``denom <= 0``) get a
    zero split; they are counted under ``counter`` instead of vanishing
    silently.
    """
    scores = rho[:, None] * phi[:, i_idx] * phi[:, j_idx]  # (k, E)
    denom = scores.sum(axis=0)
    degenerate = denom <= 0.0
    num_degenerate = int(np.count_nonzero(degenerate))
    if num_degenerate and counter:
        inc(counter, num_degenerate)
    safe = np.where(degenerate, 1.0, denom)
    expected = scores * (weights / safe)[None, :]
    if num_degenerate:
        expected[:, degenerate] = 0.0
    return expected


def sparse_topic_buckets(expected: np.ndarray, i_idx: np.ndarray,
                         j_idx: np.ndarray,
                         ) -> List[Dict[Tuple[int, int], float]]:
    """Per-subtopic ``{(i, j): weight}`` buckets from a dense (k, E) split."""
    buckets: List[Dict[Tuple[int, int], float]] = []
    i_list = i_idx.tolist()
    j_list = j_idx.tolist()
    for row in expected:
        nonzero = np.flatnonzero(row > 0)
        values = row[nonzero].tolist()
        buckets.append({(i_list[e], j_list[e]): value
                        for e, value in zip(nonzero.tolist(), values)})
    return buckets


def _fit_kernel(i_idx: np.ndarray, j_idx: np.ndarray, weights: np.ndarray,
                num_nodes: int, num_topics: int, max_iter: int, tol: float,
                rng: np.random.Generator, checkpoint=None,
                state: Optional[Dict] = None) -> Tuple[np.ndarray,
                                                       np.ndarray, float]:
    """One EM run (Eq. 3.5–3.7) from a random start; returns (rho, phi, ll).

    Module-level (rather than a method) so restart tasks are picklable
    for the process backend.  With ``checkpoint``, the post-iteration
    state — including the convergence decision, so a resumed run never
    iterates past where the original stopped — is persisted at the
    writer's cadence; ``state`` restores such a snapshot (the RNG only
    seeds the initialization, so the replay is bit-identical).
    """
    k = num_topics
    total = weights.sum()
    if state is not None:
        rho = state["rho"]
        phi = state["phi"]
        prev_ll = state["prev_ll"]
        ll = state["ll"]
        start = int(state["iteration"]) + 1
        if state["done"]:
            return rho, phi, ll
    else:
        phi = rng.dirichlet(np.ones(num_nodes), size=k)
        rho = np.full(k, total / k)
        prev_ll = -np.inf
        ll = prev_ll
        start = 0
    incidence = link_incidence(i_idx, j_idx, num_nodes)
    flat_idx = None
    if incidence is None:
        kernel_fallback("cathy.m_step", "scipy.sparse unavailable")
        flat_idx = (flat_scatter_index(i_idx, num_nodes, k),
                    flat_scatter_index(j_idx, num_nodes, k))

    tracer = trace("cathy.em", num_topics=k, num_nodes=num_nodes,
                   num_links=len(weights))
    termination = "max_iter"
    for iteration in range(start, max_iter):
        # E-step (Eq. 3.5): responsibilities per link and subtopic.
        with span("cathy.em.e_step", iteration=iteration):
            scores = rho[:, None] * phi[:, i_idx] * phi[:, j_idx]  # (k, E)
            denom = scores.sum(axis=0)
            denom = np.maximum(denom, EPS)
            q = scores / denom  # (k, E)
            ll = float(np.dot(weights, np.log(denom)))

        # M-step (Eq. 3.6-3.7).
        with span("cathy.em.m_step", iteration=iteration):
            expected = q * weights  # (k, E)
            rho = expected.sum(axis=1)
            if incidence is not None:
                phi = np.asarray(expected @ incidence)
            else:
                phi = scatter_expectations(expected, i_idx, j_idx,
                                           num_nodes, flat_idx=flat_idx)
            row_sums = phi.sum(axis=1, keepdims=True)
            row_sums = np.maximum(row_sums, EPS)
            phi = phi / row_sums
            rho = np.maximum(rho, EPS)

        tracer.record(log_likelihood=ll)
        done = ll - prev_ll < tol * max(abs(prev_ll), 1.0) \
            and bool(np.isfinite(prev_ll))
        if done:
            termination = "converged"
        else:
            prev_ll = ll
        if checkpoint is not None:
            state_fn = lambda: {"iteration": iteration, "rho": rho,  # noqa: E731
                                "phi": phi, "ll": ll,
                                "prev_ll": prev_ll, "done": done}
            if done:
                checkpoint.save(iteration, state_fn())
            else:
                checkpoint.maybe_save(iteration, state_fn)
        if done:
            break
    tracer.finish(termination)
    return rho, phi, ll


def _restart_task(shared, seed_seq, checkpoint=None,
                  state=None) -> Tuple[np.ndarray, np.ndarray, float]:
    """One random restart; ``shared`` carries the static problem arrays."""
    i_idx, j_idx, weights, num_nodes, num_topics, max_iter, tol = shared
    return _fit_kernel(i_idx, j_idx, weights, num_nodes, num_topics,
                       max_iter, tol, rng_from(seed_seq),
                       checkpoint=checkpoint, state=state)


class CathyEM:
    """EM estimator for the homogeneous Poisson link-clustering model.

    Args:
        num_topics: number of subtopics k.
        max_iter: EM iteration budget.
        tol: relative log-likelihood improvement below which EM stops.
        restarts: random restarts; the best-likelihood solution is kept.
        seed: RNG seed or generator.  Each restart draws its start from a
            seed spawned deterministically off this, so results do not
            depend on the worker count.
        workers: parallel workers for the restarts; None defers to the
            process default / ``REPRO_WORKERS`` (see :mod:`repro.parallel`).
        checkpoint: optional :class:`~repro.resilience.CheckpointWriter`;
            when given, restarts run serially (with the same spawned
            seeds as the parallel path, so results are bit-identical)
            and the fit state is persisted at the writer's cadence.
        resume: continue from the checkpoint file when it exists.
    """

    def __init__(self, num_topics: int, max_iter: int = 200,
                 tol: float = 1e-6, restarts: int = 1,
                 seed: RandomState = None,
                 workers: Optional[int] = None,
                 checkpoint: Optional[CheckpointWriter] = None,
                 resume: bool = False) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        if restarts < 1:
            raise ConfigurationError("restarts must be >= 1")
        self.num_topics = num_topics
        self.max_iter = max_iter
        self.tol = tol
        self.restarts = restarts
        self.workers = workers
        self.checkpoint = checkpoint
        self.resume = resume
        self._rng = ensure_rng(seed)
        self.model_: Optional[TermTopicModel] = None

    # ------------------------------------------------------------------- fit
    def fit(self, network: HeterogeneousNetwork,
            node_type: str = TERM_TYPE) -> TermTopicModel:
        """Fit the model to the ``node_type`` co-occurrence links."""
        names = network.node_names(node_type)
        num_nodes = len(names)
        if num_nodes == 0:
            raise ConfigurationError("network has no nodes to cluster")
        i_idx, j_idx, weights = network.link_arrays((node_type, node_type))
        if not len(weights):
            raise ConfigurationError("network has no links to cluster")

        with span("cathy.em.fit"):
            shared = (i_idx, j_idx, weights, num_nodes, self.num_topics,
                      self.max_iter, self.tol)
            seeds = spawn_seed_sequences(self._rng, self.restarts)
            if self.checkpoint is not None:
                runs = run_restarts_checkpointed(
                    self.checkpoint, self.resume, shared, seeds,
                    _restart_task)
            else:
                runs = pmap(_restart_task, seeds, workers=self.workers,
                            shared=shared, label="cathy.em.restarts")
            best: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
            for run in runs:
                if best is None or run[2] > best[2]:
                    best = run
        rho, phi, ll = best
        self.model_ = TermTopicModel(rho=rho, phi=phi,
                                     node_names=list(names),
                                     log_likelihood=ll)
        return self.model_

    # ------------------------------------------------------------ subnetwork
    def expected_link_arrays(self, network: HeterogeneousNetwork,
                             node_type: str = TERM_TYPE,
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Eq. 3.5 posterior split as ``(i_idx, j_idx, (k, E) expected)``.

        The sparse-array form of :meth:`expected_link_weights`: one
        vectorized pass over the network's CSR link arrays, no dict
        materialization.  Row z of the expected matrix is the e-hat
        weight of every link under subtopic z.  Links whose posterior
        degenerates (zero mixture score) are counted under the
        ``cathy.degenerate_links`` metric.
        """
        model = self._require_fitted()
        i_idx, j_idx, weights = network.link_arrays((node_type, node_type))
        expected = posterior_link_split(model.rho, model.phi,
                                        i_idx, j_idx, weights)
        return i_idx, j_idx, expected

    def expected_link_weights(self, network: HeterogeneousNetwork,
                              node_type: str = TERM_TYPE,
                              ) -> List[Dict[Tuple[int, int], float]]:
        """Expected per-subtopic link weights e-hat (posterior split).

        Returns one ``{(i, j): weight}`` mapping per subtopic — the
        dict-bucket rendering of :meth:`expected_link_arrays`, kept for
        inspection and compatibility; hot paths should use the array
        form.
        """
        i_idx, j_idx, expected = self.expected_link_arrays(
            network, node_type)
        if not len(i_idx):
            return [{} for _ in range(self._require_fitted().num_topics)]
        return sparse_topic_buckets(expected, i_idx, j_idx)

    def subnetworks(self, network: HeterogeneousNetwork,
                    node_type: str = TERM_TYPE,
                    min_weight: float = 1.0) -> List[HeterogeneousNetwork]:
        """Per-subtopic subnetworks, dropping links below ``min_weight``.

        This is the recursion step of CATHY: extract E^{t/z} =
        {e-hat >= 1} and cluster again (Section 3.1).  The split stays
        on arrays end to end: each subtopic's row of the (k, E) expected
        matrix feeds :meth:`HeterogeneousNetwork.subnetwork` directly as
        an ``(i_idx, j_idx, weights)`` triple.
        """
        i_idx, j_idx, expected = self.expected_link_arrays(
            network, node_type)
        return [network.subnetwork({(node_type, node_type):
                                    (i_idx, j_idx, expected[z])},
                                   min_weight=min_weight)
                for z in range(expected.shape[0])]

    def _require_fitted(self) -> TermTopicModel:
        if self.model_ is None:
            raise NotFittedError("call fit() before using the model")
        return self.model_
