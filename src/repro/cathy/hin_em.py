"""CATHYHIN: heterogeneous Poisson EM with background topic (Section 3.2).

The model generates every unit-weight link by (1) drawing a subtopic label
z in {0, 1, ..., k} from rho (0 is the background), (2) drawing the link
type from theta, and (3) drawing both end nodes from the subtopic's
per-type ranking distributions — or, for the background, the first end
node from phi_{t/0} and the second from the parent's distribution phi_t.
Inference is the EM of Eq. 3.24–3.29; link-type weights alpha are learned
with Eq. 3.37 (module :mod:`repro.cathy.link_weights`).

Undirected links are stored once; the paper's both-directions duplication
only matters for the asymmetric background component, which is handled by
averaging the two directions and crediting each endpoint its posterior
share of "being the background node".

The per-iteration scatter of expected link weights onto node
distributions runs as one :func:`numpy.bincount` per link direction over
a flattened ``(k * V)`` index space (precomputed once per fit), and
random restarts fan out over :func:`repro.parallel.pmap` with
deterministically spawned seeds, so any worker count reproduces the
serial result exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..fastpath import kernel_fallback
from ..network import HeterogeneousNetwork
from .em import (endpoint_one_hot, flat_scatter_index,
                 run_restarts_checkpointed)
from ..network.weighted import LinkType, canonical_link_type
from ..obs import inc, span, trace
from ..parallel import pmap, rng_from, spawn_seed_sequences
from ..resilience import CheckpointWriter
from ..utils import EPS, RandomState, ensure_rng

LinkKey = Tuple[int, int]


@dataclass
class _LinkData:
    """Dense arrays for one link type, extracted from the network."""

    link_type: LinkType
    i_idx: np.ndarray
    j_idx: np.ndarray
    weights: np.ndarray

    @property
    def num_links(self) -> int:
        """Number of stored links of this type."""
        return len(self.weights)




@dataclass
class HINTopicModel:
    """Fitted CATHYHIN parameters for one topic node.

    Attributes:
        rho: subtopic proportions, shape (k,); ``rho0`` is the background
            proportion; together they sum to one (Eq. 3.27).
        phi: per node type, subtopic ranking distributions (k, n_type).
        phi_background: per node type, the background distribution phi_{t/0}.
        phi_parent: per node type, the parent-topic distribution phi_t used
            by the background component.
        alpha: learned (or supplied) link-type weights.
        node_names: per node type, names aligned with phi columns.
        log_likelihood: scaled-weight observed-data log likelihood.
    """

    rho: np.ndarray
    rho0: float
    phi: Dict[str, np.ndarray]
    phi_background: Dict[str, np.ndarray]
    phi_parent: Dict[str, np.ndarray]
    alpha: Dict[LinkType, float]
    node_names: Dict[str, List[str]]
    log_likelihood: float
    num_free_parameters: int = 0

    @property
    def num_topics(self) -> int:
        """Number of subtopics k (excluding the background)."""
        return len(self.rho)

    def topic_distribution(self, node_type: str, z: int) -> Dict[str, float]:
        """phi^x_{t/z} as a name -> probability mapping."""
        dist = self.phi[node_type][z]
        return {name: float(p)
                for name, p in zip(self.node_names[node_type], dist)
                if p > 0}

    def top_nodes(self, node_type: str, z: int, k: int = 10) -> List[str]:
        """The k most probable type-x nodes in subtopic z."""
        dist = self.phi[node_type][z]
        order = np.argsort(-dist, kind="stable")
        return [self.node_names[node_type][i] for i in order[:k]]


class CathyHIN:
    """EM estimator for the heterogeneous link-clustering model.

    Args:
        num_topics: number of subtopics k (excluding the background).
        weight_mode: ``"equal"`` (all alpha = 1), ``"norm"`` (alpha =
            1 / total type weight, the heuristic baseline of Section 3.3.1),
            ``"learn"`` (Eq. 3.37), or a mapping of explicit weights.
        background: include the background topic t/0 (Section 3.2.1); the
            dissertation always uses it for heterogeneous networks.
        max_iter: EM iteration budget.
        weight_update_every: with ``weight_mode="learn"``, how many EM
            iterations between alpha updates.
        tol: relative log-likelihood improvement stopping threshold.
        restarts: random restarts keeping the best likelihood.
        rho_prior: Dirichlet pseudo-count on the subtopic proportions —
            the Bayesian extension sketched in Section 3.2.3 for
            controlling subtree balance (larger values push toward
            even-sized subtopics).
        phi_prior: Dirichlet pseudo-count on every ranking distribution
            (smooths away zero probabilities in small subnetworks).
        seed: RNG seed or generator.  Restart starting points are drawn
            from seeds spawned deterministically off this, so results do
            not depend on the worker count.
        workers: parallel workers for the restarts; None defers to the
            process default / ``REPRO_WORKERS`` (see :mod:`repro.parallel`).
        checkpoint: optional :class:`~repro.resilience.CheckpointWriter`;
            when given, restarts run serially (with the same spawned
            seeds as the parallel path, so results are bit-identical)
            and the fit state is persisted at the writer's cadence.
        resume: continue from the checkpoint file when it exists.
    """

    def __init__(self, num_topics: int,
                 weight_mode: object = "equal",
                 background: bool = True,
                 max_iter: int = 150,
                 weight_update_every: int = 10,
                 tol: float = 1e-6,
                 restarts: int = 1,
                 rho_prior: float = 0.0,
                 phi_prior: float = 0.0,
                 seed: RandomState = None,
                 workers: Optional[int] = None,
                 checkpoint: Optional[CheckpointWriter] = None,
                 resume: bool = False) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        if isinstance(weight_mode, str) and weight_mode not in (
                "equal", "norm", "learn"):
            raise ConfigurationError(
                "weight_mode must be 'equal', 'norm', 'learn', or a mapping")
        if rho_prior < 0 or phi_prior < 0:
            raise ConfigurationError("priors must be non-negative")
        self.num_topics = num_topics
        self.weight_mode = weight_mode
        self.background = background
        self.max_iter = max_iter
        self.weight_update_every = weight_update_every
        self.tol = tol
        self.restarts = restarts
        self.rho_prior = rho_prior
        self.phi_prior = phi_prior
        self.workers = workers
        self.checkpoint = checkpoint
        self.resume = resume
        self._rng = ensure_rng(seed)
        self.model_: Optional[HINTopicModel] = None
        self._link_data: List[_LinkData] = []
        self._network: Optional[HeterogeneousNetwork] = None
        self._scatter_idx: Dict[LinkType, Tuple[np.ndarray, np.ndarray]] = {}
        self._incidence: Dict[LinkType, Tuple[object, object]] = {}

    def _constructor_params(self) -> Dict[str, object]:
        """The constructor arguments needed to rebuild this estimator in a
        worker process (seed, workers, and checkpointing excluded on
        purpose)."""
        return {
            "num_topics": self.num_topics,
            "weight_mode": self.weight_mode,
            "background": self.background,
            "max_iter": self.max_iter,
            "weight_update_every": self.weight_update_every,
            "tol": self.tol,
            "rho_prior": self.rho_prior,
            "phi_prior": self.phi_prior,
        }

    # ------------------------------------------------------------------- fit
    def fit(self, network: HeterogeneousNetwork) -> HINTopicModel:
        """Fit the model to all links of ``network``."""
        self._network = network
        self._link_data = self._extract_links(network)
        self._scatter_idx = {}
        self._incidence = {}
        if not self._link_data:
            raise ConfigurationError("network has no links to cluster")
        node_names = {t: network.node_names(t) for t in network.node_types()
                      if network.node_count(t) > 0}

        alpha = self._initial_alpha()

        with span("cathy.hin_em.fit"):
            shared = (self._constructor_params(), self._link_data,
                      node_names, alpha)
            seeds = spawn_seed_sequences(self._rng, self.restarts)
            if self.checkpoint is not None:
                runs = run_restarts_checkpointed(
                    self.checkpoint, self.resume, shared, seeds,
                    _hin_restart_task)
            else:
                runs = pmap(_hin_restart_task, seeds, workers=self.workers,
                            shared=shared, label="cathy.hin_em.restarts")
            best: Optional[HINTopicModel] = None
            for model in runs:
                if best is None or model.log_likelihood > best.log_likelihood:
                    best = model
        self.model_ = best
        return best

    @staticmethod
    def _extract_links(network: HeterogeneousNetwork) -> List[_LinkData]:
        data = []
        for link_type in network.link_types():
            i_idx, j_idx, weights = network.link_arrays(link_type)
            if not len(weights):
                continue
            data.append(_LinkData(link_type=link_type, i_idx=i_idx,
                                  j_idx=j_idx, weights=weights))
        return data

    def _initial_alpha(self) -> Dict[LinkType, float]:
        if isinstance(self.weight_mode, Mapping):
            return {canonical_link_type(*lt): float(w)
                    for lt, w in self.weight_mode.items()}
        if self.weight_mode == "norm":
            # Force each link type's total scaled weight to be equal.
            alpha = {ld.link_type: 1.0 / max(ld.weights.sum(), EPS)
                     for ld in self._link_data}
            # Rescale so the geometric-mean constraint of Theorem 3.2 holds.
            return _normalize_alpha(alpha, self._link_data)
        return {ld.link_type: 1.0 for ld in self._link_data}

    def _parent_distributions(self, node_names: Dict[str, List[str]],
                              ) -> Dict[str, np.ndarray]:
        """phi_t per type: normalized weighted degree in the current network.

        The parent ranking distribution is what the background component
        samples its second end node from.  At the root we estimate it from
        the network itself, which is also how any parent topic's phi was
        estimated one level up.
        """
        degrees = {t: np.zeros(len(names)) + EPS
                   for t, names in node_names.items()}
        for ld in self._link_data:
            type_x, type_y = ld.link_type
            degrees[type_x] += np.bincount(ld.i_idx, weights=ld.weights,
                                           minlength=len(degrees[type_x]))
            degrees[type_y] += np.bincount(ld.j_idx, weights=ld.weights,
                                           minlength=len(degrees[type_y]))
        return {t: deg / deg.sum() for t, deg in degrees.items()}

    def _ensure_scatter_index(self,
                              node_names: Dict[str, List[str]]) -> None:
        """Precompute per-link-type scatter operators (once per fit).

        The fast path builds one (E, V) one-hot CSR matrix per link
        endpoint (:func:`repro.cathy.em.endpoint_one_hot`), turning the
        whole M-step scatter — topic expectations and background vectors
        alike — into sparse matrix products.  Without :mod:`scipy` the
        fit degrades to the flattened-bincount scatter and records the
        fallback under ``kernel.fallback.cathy.hin_m_step``.  Both
        operators depend only on the link arrays, node counts, and k —
        all fixed across EM iterations and restarts.
        """
        if self._scatter_idx or self._incidence:
            return
        k = self.num_topics
        for ld in self._link_data:
            type_x, type_y = ld.link_type
            inc_i = endpoint_one_hot(ld.i_idx, len(node_names[type_x]))
            inc_j = endpoint_one_hot(ld.j_idx, len(node_names[type_y]))
            if inc_i is not None and inc_j is not None:
                self._incidence[ld.link_type] = (inc_i, inc_j)
            else:
                kernel_fallback("cathy.hin_m_step",
                                "scipy.sparse unavailable")
                self._scatter_idx[ld.link_type] = (
                    flat_scatter_index(ld.i_idx, len(node_names[type_x]), k),
                    flat_scatter_index(ld.j_idx, len(node_names[type_y]), k))

    def _fit_once(self, node_names: Dict[str, List[str]],
                  alpha: Dict[LinkType, float],
                  rng: Optional[np.random.Generator] = None,
                  checkpoint=None,
                  state: Optional[Dict] = None) -> HINTopicModel:
        k = self.num_topics
        if rng is None:
            rng = self._rng
        self._ensure_scatter_index(node_names)
        phi_parent = self._parent_distributions(node_names)
        learn = self.weight_mode == "learn"

        if state is not None:
            # Resume: the RNG only seeds the initialization, so starting
            # from the snapshot replays the remaining EM bit-for-bit.
            rho = state["rho"]
            rho0 = state["rho0"]
            phi = state["phi"]
            phi0 = state["phi0"]
            alpha = dict(state["alpha"])
            prev_ll = state["prev_ll"]
            ll = state["ll"]
            start = int(state["iteration"]) + 1
            done = bool(state["done"])
        else:
            phi = {t: rng.dirichlet(np.ones(len(names)), size=k)
                   for t, names in node_names.items()}
            phi0 = {t: np.array(phi_parent[t]) for t in node_names}
            if self.background:
                rho = np.full(k, 1.0 / (k + 1))
                rho0 = 1.0 / (k + 1)
            else:
                rho = np.full(k, 1.0 / k)
                rho0 = 0.0
            prev_ll = -np.inf
            ll = prev_ll
            start = 0
            done = False

        if not done:
            tracer = trace(
                "cathy.hin_em", num_topics=k,
                num_links=sum(ld.num_links for ld in self._link_data),
                num_link_types=len(self._link_data),
                weight_mode=str(self.weight_mode))
            termination = "max_iter"
            for iteration in range(start, self.max_iter):
                with span("cathy.hin_em.em_step", iteration=iteration):
                    ll, rho, rho0, phi, phi0 = self._em_step(
                        alpha, rho, rho0, phi, phi0, phi_parent, node_names)
                if learn and (iteration + 1) % self.weight_update_every == 0:
                    with span("cathy.hin_em.alpha_update",
                              iteration=iteration):
                        alpha = self._update_alpha(rho, rho0, phi, phi0,
                                                   phi_parent)
                tracer.record(log_likelihood=ll)
                done = bool(
                    np.isfinite(prev_ll)
                    and ll - prev_ll < self.tol * max(abs(prev_ll), 1.0)
                    and not (learn and (iteration + 1)
                             <= self.weight_update_every))
                if done:
                    termination = "converged"
                else:
                    prev_ll = ll
                if checkpoint is not None:
                    state_fn = lambda: {  # noqa: E731
                        "iteration": iteration, "rho": rho, "rho0": rho0,
                        "phi": phi, "phi0": phi0, "alpha": dict(alpha),
                        "prev_ll": prev_ll, "ll": ll, "done": done}
                    if done:
                        checkpoint.save(iteration, state_fn())
                    else:
                        checkpoint.maybe_save(iteration, state_fn)
                if done:
                    break
            tracer.finish(termination)

        num_params = k * sum(len(n) for n in node_names.values())
        return HINTopicModel(
            rho=rho, rho0=rho0, phi=phi, phi_background=phi0,
            phi_parent=phi_parent, alpha=dict(alpha), node_names=node_names,
            log_likelihood=ll, num_free_parameters=num_params)

    # --------------------------------------------------------------- EM core
    def _link_scores(self, ld: _LinkData, rho: np.ndarray, rho0: float,
                     phi: Dict[str, np.ndarray], phi0: Dict[str, np.ndarray],
                     phi_parent: Dict[str, np.ndarray],
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mixture scores per link: (topic scores (k,E), bg dir-1, bg dir-2)."""
        type_x, type_y = ld.link_type
        scores = (rho[:, None] * phi[type_x][:, ld.i_idx]
                  * phi[type_y][:, ld.j_idx])
        if self.background and rho0 > 0:
            bg_a = rho0 * phi0[type_x][ld.i_idx] * phi_parent[type_y][ld.j_idx]
            bg_b = rho0 * phi0[type_y][ld.j_idx] * phi_parent[type_x][ld.i_idx]
            bg_a = bg_a * 0.5
            bg_b = bg_b * 0.5
        else:
            bg_a = np.zeros(ld.num_links)
            bg_b = np.zeros(ld.num_links)
        return scores, bg_a, bg_b

    def _em_step(self, alpha, rho, rho0, phi, phi0, phi_parent, node_names):
        k = self.num_topics
        new_rho = np.zeros(k)
        new_rho0 = 0.0
        new_phi = {t: np.zeros((k, len(names)))
                   for t, names in node_names.items()}
        new_phi0 = {t: np.zeros(len(names)) for t, names in node_names.items()}
        ll = 0.0
        total_weight = 0.0

        for ld in self._link_data:
            type_x, type_y = ld.link_type
            a = alpha.get(ld.link_type, 1.0)
            w = ld.weights * a
            scores, bg_a, bg_b = self._link_scores(
                ld, rho, rho0, phi, phi0, phi_parent)
            denom = scores.sum(axis=0) + bg_a + bg_b
            denom = np.maximum(denom, EPS)
            ll += float(np.dot(w, np.log(denom)))
            total_weight += w.sum()

            expected = scores / denom * w  # (k, E)
            new_rho += expected.sum(axis=1)
            incidence = self._incidence.get(ld.link_type)
            if incidence is not None:
                inc_i, inc_j = incidence
                new_phi[type_x] += np.asarray(expected @ inc_i)
                new_phi[type_y] += np.asarray(expected @ inc_j)
            else:
                flat_i, flat_j = self._scatter_idx[ld.link_type]
                contrib = expected.reshape(-1)
                num_x = new_phi[type_x].shape[1]
                num_y = new_phi[type_y].shape[1]
                new_phi[type_x] += np.bincount(
                    flat_i, weights=contrib,
                    minlength=k * num_x).reshape(k, num_x)
                new_phi[type_y] += np.bincount(
                    flat_j, weights=contrib,
                    minlength=k * num_y).reshape(k, num_y)
            if self.background:
                exp_bg_a = bg_a / denom * w
                exp_bg_b = bg_b / denom * w
                new_rho0 += float(exp_bg_a.sum() + exp_bg_b.sum())
                if incidence is not None:
                    new_phi0[type_x] += np.asarray(exp_bg_a @ inc_i).ravel()
                    new_phi0[type_y] += np.asarray(exp_bg_b @ inc_j).ravel()
                else:
                    np.add.at(new_phi0[type_x], ld.i_idx, exp_bg_a)
                    np.add.at(new_phi0[type_y], ld.j_idx, exp_bg_b)

        # MAP smoothing (Section 3.2.3's Bayesian extension): Dirichlet
        # pseudo-counts added to the expected-count statistics.
        if self.rho_prior > 0:
            new_rho = new_rho + self.rho_prior
            if self.background:
                new_rho0 = new_rho0 + self.rho_prior
        mass = new_rho.sum() + new_rho0
        mass = max(mass, EPS)
        rho = np.maximum(new_rho / mass, EPS)
        rho0 = max(new_rho0 / mass, EPS if self.background else 0.0)
        for t in new_phi:
            counts = new_phi[t] + self.phi_prior
            row_sums = np.maximum(counts.sum(axis=1, keepdims=True), EPS)
            phi[t] = counts / row_sums
            bg_counts = new_phi0[t] + self.phi_prior
            bg_sum = bg_counts.sum()
            if self.background and bg_sum > 0:
                phi0[t] = bg_counts / bg_sum
        return ll, rho, rho0, phi, phi0

    # -------------------------------------------------------- weight learning
    def _update_alpha(self, rho, rho0, phi, phi0, phi_parent,
                      ) -> Dict[LinkType, float]:
        """Closed-form alpha update (Eq. 3.37-3.38).

        sigma_xy measures, per link type, the average KL-style divergence
        of the observed link-weight distribution from the model's expected
        distribution; alpha is inversely proportional to sigma, normalized
        so the geometric-mean constraint of Theorem 3.2 holds.
        """
        sigmas: Dict[LinkType, float] = {}
        for ld in self._link_data:
            scores, bg_a, bg_b = self._link_scores(
                ld, rho, rho0, phi, phi0, phi_parent)
            s = np.maximum(scores.sum(axis=0) + bg_a + bg_b, EPS)
            m_xy = ld.weights.sum()
            divergence = float(np.dot(
                ld.weights, np.log(np.maximum(ld.weights, EPS) / (m_xy * s))))
            sigma = divergence / max(ld.num_links, 1)
            sigmas[ld.link_type] = max(sigma, EPS)
        alpha = {lt: 1.0 / sigma for lt, sigma in sigmas.items()}
        return _normalize_alpha(alpha, self._link_data)

    # ------------------------------------------------------------ subnetwork
    def expected_link_arrays(self, subtopic: int,
                             ) -> Dict[LinkType, Tuple[np.ndarray,
                                                       np.ndarray,
                                                       np.ndarray]]:
        """e-hat^{x,y,t/z} as ``(i_idx, j_idx, weights)`` per link type.

        The sparse-array form of Eq. 3.23's expected scaled link weight:
        one vectorized pass per link type over the network's CSR link
        arrays.  Links whose mixture score degenerates to zero cannot be
        attributed to any subtopic and are counted under the
        ``cathy.degenerate_links`` metric instead of being dropped
        silently.
        """
        model = self._require_fitted()
        if not 0 <= subtopic < model.num_topics:
            raise ConfigurationError(f"subtopic {subtopic} out of range")
        result: Dict[LinkType, Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]] = {}
        for ld in self._link_data:
            a = model.alpha.get(ld.link_type, 1.0)
            scores, bg_a, bg_b = self._link_scores(
                ld, model.rho, model.rho0, model.phi, model.phi_background,
                model.phi_parent)
            raw_denom = scores.sum(axis=0) + bg_a + bg_b
            num_degenerate = int(np.count_nonzero(raw_denom <= 0.0))
            if num_degenerate:
                inc("cathy.degenerate_links", num_degenerate)
            denom = np.maximum(raw_denom, EPS)
            expected = ld.weights * a * scores[subtopic] / denom
            result[ld.link_type] = (ld.i_idx, ld.j_idx, expected)
        return result

    def expected_link_weights(self, subtopic: int,
                              ) -> Dict[LinkType, Dict[LinkKey, float]]:
        """e-hat^{x,y,t/z} as ``{(i, j): weight}`` dict buckets.

        The inspection-friendly rendering of
        :meth:`expected_link_arrays`; hot paths (subnetwork recursion)
        use the array form directly.
        """
        result: Dict[LinkType, Dict[LinkKey, float]] = {}
        for link_type, (i_idx, j_idx, expected) in \
                self.expected_link_arrays(subtopic).items():
            nonzero = np.flatnonzero(expected > 0)
            result[link_type] = dict(zip(
                zip(i_idx[nonzero].tolist(), j_idx[nonzero].tolist()),
                expected[nonzero].tolist()))
        return result

    def subnetwork(self, subtopic: int,
                   min_weight: float = 1.0) -> HeterogeneousNetwork:
        """The child network G^{t/z} for recursion (Section 3.2.1)."""
        if self._network is None:
            raise NotFittedError("call fit() before extracting subnetworks")
        return self._network.subnetwork(self.expected_link_arrays(subtopic),
                                        min_weight=min_weight)

    def bic(self) -> float:
        """Bayesian information criterion of the fitted model (Section 3.2.3).

        Higher is worse; model selection picks the k minimizing this.
        """
        model = self._require_fitted()
        num_links = sum(ld.num_links for ld in self._link_data)
        return (-2.0 * model.log_likelihood
                + model.num_free_parameters * np.log(max(num_links, 2)))

    def _require_fitted(self) -> HINTopicModel:
        if self.model_ is None:
            raise NotFittedError("call fit() before using the model")
        return self.model_


def _hin_restart_task(shared, seed_seq, checkpoint=None,
                      state=None) -> HINTopicModel:
    """One random restart, runnable in a worker process.

    ``shared`` carries the constructor parameters, extracted link data,
    node names, and initial alpha — shipped once per worker.
    """
    params, link_data, node_names, alpha = shared
    estimator = CathyHIN(**params)
    estimator._link_data = link_data
    return estimator._fit_once(node_names, dict(alpha),
                               rng=rng_from(seed_seq),
                               checkpoint=checkpoint, state=state)


def _normalize_alpha(alpha: Dict[LinkType, float],
                     link_data: List[_LinkData]) -> Dict[LinkType, float]:
    """Rescale alpha so that prod alpha^{n_xy} = 1 (Theorem 3.2)."""
    counts = {ld.link_type: ld.num_links for ld in link_data}
    total = sum(counts.values())
    if total == 0:
        return dict(alpha)
    log_mean = sum(counts[lt] * np.log(max(alpha.get(lt, 1.0), EPS))
                   for lt in counts) / total
    scale = float(np.exp(-log_mean))
    return {lt: float(alpha.get(lt, 1.0) * scale) for lt in counts}
