"""Drift detection: when does the stream warrant a re-inference?

Re-running whitening + tensor power after every batch would make the
stream no cheaper than batch refits.  Instead the pipeline keeps a
**baseline snapshot** of the sketch at the last solve (its first
moment, vocab size, and document count) and compares the live sketch
against it after each batch with three configurable detectors:

* **moment delta** — relative L1 change of the first moment M1 (the
  word distribution), with the baseline padded to the grown vocabulary;
* **vocab growth** — fraction of words the baseline has never seen;
* **document count** — absolute number of documents since the solve.

Any detector crossing its threshold marks the batch as drifted; the
report carries every metric either way, so ``repro ingest`` can log
them and tests can pin the arithmetic.  No wall clock is involved —
drift is a function of data deltas, never of elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..strod import MomentSketch

__all__ = [
    "DriftConfig",
    "DriftReport",
    "baseline_from_sketch",
    "detect_drift",
]

_EPS = 1e-12


@dataclass
class DriftConfig:
    """Thresholds for the three drift detectors.

    A non-positive ``doc_count`` disables that detector; the two ratio
    detectors are always active (set them to ``float("inf")`` to
    effectively disable).
    """

    moment_delta: float = 0.05
    vocab_growth: float = 0.10
    doc_count: int = 0

    def __post_init__(self) -> None:
        if self.moment_delta < 0:
            raise ConfigurationError("moment_delta must be >= 0")
        if self.vocab_growth < 0:
            raise ConfigurationError("vocab_growth must be >= 0")

    def to_config(self) -> Dict[str, Any]:
        """Plain-data form for checkpoint fingerprinting."""
        return {"moment_delta": self.moment_delta,
                "vocab_growth": self.vocab_growth,
                "doc_count": self.doc_count}


@dataclass
class DriftReport:
    """Outcome of one detection pass.

    Attributes:
        triggered: True when any detector crossed its threshold.
        reasons: which detectors fired, human-readable.
        metrics: every detector's measured value (always populated).
    """

    triggered: bool
    reasons: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"triggered": self.triggered, "reasons": list(self.reasons),
                "metrics": dict(self.metrics)}


def baseline_from_sketch(sketch: MomentSketch) -> Dict[str, Any]:
    """Snapshot the sketch state the next detection compares against."""
    return {
        "m1": sketch.first_moment().tolist(),
        "vocab_size": sketch.vocab_size,
        "num_docs": sketch.num_docs,
    }


def detect_drift(baseline: Optional[Dict[str, Any]],
                 sketch: MomentSketch,
                 config: DriftConfig) -> DriftReport:
    """Compare the live sketch against the last-solve baseline.

    A missing baseline (no model solved yet) always triggers: the first
    batch must produce a model before drift is even definable.
    """
    if baseline is None:
        return DriftReport(triggered=True, reasons=["no baseline model"],
                           metrics={"moment_delta": float("inf"),
                                    "vocab_growth": float("inf"),
                                    "new_docs": float(sketch.num_docs)})
    old_m1 = np.asarray(baseline["m1"], dtype=float)
    new_m1 = sketch.first_moment()
    padded = np.zeros_like(new_m1)
    padded[:len(old_m1)] = old_m1
    moment_delta = float(np.abs(new_m1 - padded).sum()
                         / max(np.abs(padded).sum(), _EPS))
    old_vocab = int(baseline["vocab_size"])
    vocab_growth = float((sketch.vocab_size - old_vocab)
                         / max(old_vocab, 1))
    new_docs = sketch.num_docs - int(baseline["num_docs"])

    reasons = []
    if moment_delta >= config.moment_delta:
        reasons.append(f"moment delta {moment_delta:.4f} >= "
                       f"{config.moment_delta:.4f}")
    if vocab_growth >= config.vocab_growth:
        reasons.append(f"vocab growth {vocab_growth:.4f} >= "
                       f"{config.vocab_growth:.4f}")
    if config.doc_count > 0 and new_docs >= config.doc_count:
        reasons.append(f"{new_docs} new documents >= {config.doc_count}")
    return DriftReport(triggered=bool(reasons), reasons=reasons,
                       metrics={"moment_delta": moment_delta,
                                "vocab_growth": vocab_growth,
                                "new_docs": float(new_docs)})
