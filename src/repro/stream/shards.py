"""Append-only corpus shards with a versioned vocab-delta log.

The batch pipeline freezes a corpus into one JSON dataset; the streaming
pipeline instead treats the corpus as an immutable log:

* documents arrive in **batches**; each batch becomes one CRC-framed,
  atomically-written shard file (``shards/shard-000042``) holding the
  encoded documents, framed with the same magic+CRC32+length protocol as
  solver checkpoints (:func:`repro.resilience.save_framed`);
* the vocabulary only ever **appends**; each batch that introduces new
  words writes one vocab-delta file (``vocab/vocab-000007.json``)
  recording the contiguous id range it added, so any past vocab version
  can be reconstructed by replaying the deltas in order;
* ``MANIFEST.json`` is the **commit point**: it is rewritten atomically
  after the shard and delta files are on disk.  A crash mid-batch
  leaves orphan files past the manifest's shard count; re-ingesting the
  same batch deterministically rewrites them byte-for-byte, so a killed
  ingest resumes bit-identically.

Token ids are assigned in first-seen order across the whole log —
exactly the order :meth:`repro.corpus.Corpus.from_texts` would assign
over the concatenated batches — which is what makes a streamed corpus
interchangeable with its one-shot batch equivalent.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..contracts import SHARD_DIR_V1, SHARD_V1, VOCAB_DELTA_V1
from ..corpus import Corpus, Vocabulary
from ..corpus.tokenize import DEFAULT_STOPWORDS, tokenize_chunks
from ..errors import ConfigurationError, DataError
from ..obs import get_logger, inc, span
from ..resilience import atomic_write_json, load_framed, save_framed

__all__ = [
    "SHARD_DIR_SCHEMA",
    "SHARD_MAGIC",
    "SHARD_SCHEMA",
    "VOCAB_DELTA_SCHEMA",
    "ShardStore",
    "is_shard_dir",
]

SHARD_DIR_SCHEMA = SHARD_DIR_V1
SHARD_SCHEMA = SHARD_V1
VOCAB_DELTA_SCHEMA = VOCAB_DELTA_V1

#: Frame magic for shard files (same protocol as checkpoints, distinct
#: magic so a shard can never be mistaken for a solver checkpoint).
SHARD_MAGIC = b"REPROSHRD\x00\x01"

logger = get_logger("stream.shards")


def is_shard_dir(path: str) -> bool:
    """True when ``path`` is a stream shard directory (has a manifest)."""
    manifest_path = os.path.join(path, "MANIFEST.json")
    if not os.path.isfile(manifest_path):
        return False
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return False
    return (isinstance(data, dict)
            and str(data.get("schema", "")).startswith("repro.stream/"))


class ShardStore:
    """The append-only document log backing a streaming ingest.

    Args:
        directory: the shard directory; created (with its manifest) when
            it does not exist yet.

    Raw documents are dicts with either ``"text"`` (tokenized with the
    corpus tokenizer) or ``"chunks"`` (pre-chunked token strings), plus
    optional ``"entities"`` / ``"year"`` / ``"label"`` exactly as in the
    batch dataset format.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._shards_dir = os.path.join(directory, "shards")
        self._vocab_dir = os.path.join(directory, "vocab")
        os.makedirs(self._shards_dir, exist_ok=True)
        os.makedirs(self._vocab_dir, exist_ok=True)
        self._manifest_path = os.path.join(directory, "MANIFEST.json")
        if os.path.exists(self._manifest_path):
            self._manifest = self._read_manifest()
        else:
            self._manifest = {
                "schema": SHARD_DIR_SCHEMA,
                "num_shards": 0,
                "num_documents": 0,
                "vocab_version": 0,
                "vocab_size": 0,
                "batch_keys": [],
                "shard_documents": [],
            }
            atomic_write_json(self._manifest_path, self._manifest, indent=2)
        self.vocabulary = self._load_vocabulary()

    # ------------------------------------------------------------ manifest
    def _read_manifest(self) -> Dict[str, Any]:
        with open(self._manifest_path, encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise DataError(f"{self._manifest_path} is not valid "
                                f"JSON: {exc}") from exc
        if not isinstance(manifest, dict) \
                or manifest.get("schema") != SHARD_DIR_SCHEMA:
            raise DataError(
                f"{self._manifest_path} is not a stream shard manifest "
                f"(schema={manifest.get('schema') if isinstance(manifest, dict) else None!r})")
        return manifest

    @property
    def num_shards(self) -> int:
        return int(self._manifest["num_shards"])

    @property
    def num_documents(self) -> int:
        return int(self._manifest["num_documents"])

    @property
    def vocab_version(self) -> int:
        return int(self._manifest["vocab_version"])

    # ---------------------------------------------------------- vocabulary
    def _vocab_path(self, version: int) -> str:
        return os.path.join(self._vocab_dir, f"vocab-{version:06d}.json")

    def _load_vocabulary(self) -> Vocabulary:
        """Replay the delta log into the current vocabulary."""
        vocabulary = Vocabulary()
        for version in range(1, self.vocab_version + 1):
            path = self._vocab_path(version)
            with open(path, encoding="utf-8") as handle:
                try:
                    delta = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise DataError(f"{path} is not valid JSON: "
                                    f"{exc}") from exc
            if not isinstance(delta, dict) \
                    or delta.get("schema") != VOCAB_DELTA_SCHEMA:
                raise DataError(f"{path} is not a vocab-delta file")
            if delta["start_id"] != len(vocabulary):
                raise DataError(
                    f"{path}: vocab delta starts at id "
                    f"{delta['start_id']} but the replayed vocabulary "
                    f"has {len(vocabulary)} words (corrupt delta log)")
            for word in delta["words"]:
                vocabulary.add(word)
        if len(vocabulary) != int(self._manifest["vocab_size"]):
            raise DataError(
                f"{self.directory}: vocab delta log replays to "
                f"{len(vocabulary)} words but the manifest records "
                f"{self._manifest['vocab_size']}")
        return vocabulary

    # ------------------------------------------------------------- shards
    def _shard_path(self, shard_id: int) -> str:
        return os.path.join(self._shards_dir, f"shard-{shard_id:06d}")

    def _encode_document(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(raw, dict):
            raise DataError(f"stream document must be an object, "
                            f"got {type(raw).__name__}")
        if "text" in raw:
            token_chunks = tokenize_chunks(raw["text"],
                                           stopwords=DEFAULT_STOPWORDS)
        elif "chunks" in raw:
            token_chunks = [[str(tok) for tok in chunk]
                            for chunk in raw["chunks"]]
        else:
            raise DataError(
                "stream document needs a 'text' or 'chunks' field")
        id_chunks = [self.vocabulary.encode(chunk, add_missing=True)
                     for chunk in token_chunks]
        entities = raw.get("entities") or {}
        if not isinstance(entities, dict):
            raise DataError("stream document 'entities' must be an object")
        return {
            "chunks": id_chunks,
            "entities": {str(k): [str(n) for n in v]
                         for k, v in entities.items()},
            "year": raw.get("year"),
            "label": raw.get("label"),
        }

    def append_batch(self, documents: Sequence[Dict[str, Any]],
                     batch_key: Optional[str] = None) -> Dict[str, Any]:
        """Commit one batch of raw documents as the next shard.

        Write order is shard file, then vocab delta (when the batch
        introduced words), then the manifest — the manifest being the
        atomic commit point.  A crash before the manifest write leaves
        orphan files that the retried (identical) batch rewrites
        byte-for-byte.

        ``batch_key`` is an optional content fingerprint: when it
        matches an already-committed shard, the append is skipped and
        the existing record returned with ``already_committed=True`` —
        exactly-once commit semantics for retried batches.

        Returns the committed shard record (``shard_id``, document
        count, vocab version/size after).
        """
        if not documents:
            raise DataError("cannot append an empty batch")
        keys = self._manifest.get("batch_keys", [])
        if batch_key is not None and batch_key in keys:
            shard_id = keys.index(batch_key)
            logger.info("batch already committed as shard %d; skipping",
                        shard_id)
            return {
                "shard_id": shard_id,
                "num_documents":
                    self._manifest["shard_documents"][shard_id],
                "vocab_version": self.vocab_version,
                "vocab_size": len(self.vocabulary),
                "already_committed": True,
            }
        with span("stream.append_batch", num_documents=len(documents)):
            shard_id = self.num_shards
            old_vocab_size = len(self.vocabulary)
            encoded = [self._encode_document(raw) for raw in documents]
            new_words = [self.vocabulary.word_of(i)
                         for i in range(old_vocab_size,
                                        len(self.vocabulary))]
            vocab_version = self.vocab_version
            if new_words:
                vocab_version += 1
                atomic_write_json(self._vocab_path(vocab_version), {
                    "schema": VOCAB_DELTA_SCHEMA,
                    "version": vocab_version,
                    "shard_id": shard_id,
                    "start_id": old_vocab_size,
                    "words": new_words,
                }, indent=2)
            save_framed(self._shard_path(shard_id), {
                "schema": SHARD_SCHEMA,
                "shard_id": shard_id,
                "vocab_version": vocab_version,
                "vocab_size": len(self.vocabulary),
                "documents": encoded,
            }, magic=SHARD_MAGIC, metric="stream.shard_write")
            self._manifest = {
                "schema": SHARD_DIR_SCHEMA,
                "num_shards": shard_id + 1,
                "num_documents": self.num_documents + len(encoded),
                "vocab_version": vocab_version,
                "vocab_size": len(self.vocabulary),
                "batch_keys": list(keys) + [batch_key],
                "shard_documents":
                    list(self._manifest.get("shard_documents", []))
                    + [len(encoded)],
            }
            atomic_write_json(self._manifest_path, self._manifest,
                              indent=2)
        inc("stream.shards_written")
        inc("stream.docs_ingested", len(encoded))
        logger.info("committed shard %d (%d documents, vocab %d words, "
                    "delta v%d)", shard_id, len(encoded),
                    len(self.vocabulary), vocab_version)
        return {"shard_id": shard_id, "num_documents": len(encoded),
                "vocab_version": vocab_version,
                "vocab_size": len(self.vocabulary),
                "already_committed": False}

    def load_shard(self, shard_id: int) -> Dict[str, Any]:
        """Read one committed shard back (CRC-verified)."""
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard {shard_id} out of range (store has "
                f"{self.num_shards})")
        payload = load_framed(self._shard_path(shard_id),
                              magic=SHARD_MAGIC, kind="stream shard")
        if payload.get("schema") != SHARD_SCHEMA \
                or payload.get("shard_id") != shard_id:
            raise DataError(
                f"{self._shard_path(shard_id)} does not hold shard "
                f"{shard_id} (schema={payload.get('schema')!r}, "
                f"shard_id={payload.get('shard_id')!r})")
        return payload

    def iter_shards(self, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Committed shard payloads in log order, from ``start``."""
        for shard_id in range(start, self.num_shards):
            yield self.load_shard(shard_id)

    # -------------------------------------------------------------- corpus
    def load_corpus(self, num_shards: Optional[int] = None) -> Corpus:
        """Materialize the log (or its first ``num_shards``) as a corpus.

        The rebuilt corpus is document-for-document and id-for-id
        identical to a batch corpus built over the same documents in the
        same order.  A prefix load (``num_shards`` < committed count)
        gets the vocabulary **as of that prefix** — the shard files
        record their post-commit vocab size — so replaying history
        reproduces exactly the corpora past refits saw.
        """
        upto = self.num_shards if num_shards is None else num_shards
        if not 0 <= upto <= self.num_shards:
            raise ConfigurationError(
                f"num_shards {upto} out of range (store has "
                f"{self.num_shards})")
        payloads = []
        vocab_size = 0
        for payload in self.iter_shards():
            if payload["shard_id"] >= upto:
                break
            payloads.append(payload)
            vocab_size = int(payload.get("vocab_size",
                                         len(self.vocabulary)))
        if upto == self.num_shards:
            vocabulary = self.vocabulary
        else:
            words = list(self.vocabulary)[:vocab_size]
            vocabulary = Vocabulary(words)
        corpus = Corpus(vocabulary=vocabulary)
        for payload in payloads:
            for record in payload["documents"]:
                corpus.add_document(
                    chunks=[list(chunk) for chunk in record["chunks"]],
                    entities={k: list(v)
                              for k, v in record["entities"].items()},
                    year=record.get("year"),
                    label=record.get("label"))
        return corpus
