"""The streaming ingest loop: shard -> sketch -> drift -> refit -> export.

:class:`IngestPipeline` drives one batch end to end:

1. the raw documents are committed to the :class:`ShardStore` (shard
   file + vocab delta + manifest, atomically), keyed by a content hash
   so a retried batch is committed exactly once;
2. the committed shard is sketched (``pmap``) and merged into the
   running :class:`~repro.strod.MomentSketch` — an exactly-associative
   merge, so the running sketch equals a from-scratch sketch of the
   whole log;
3. the drift detectors compare the sketch against the last-solve
   baseline and, together with the ``refit_policy``
   (``drift`` / ``always`` / ``never``), decide whether to re-infer;
4. a triggered refit patches the dirty subtrees
   (:class:`~repro.stream.refit.StreamRefitter`), bumps the model
   version, and exports a fresh artifact for the servers to hot-swap;
5. the pipeline state (sketch, baseline, tree state, model version) is
   checkpointed under the fingerprint-guarded
   :class:`~repro.resilience.CheckpointWriter` protocol.

Crash safety: the shard commit and the checkpoint are both atomic, with
the checkpoint written *after* the commit.  A crash between the two
leaves the store ahead of the checkpoint; on restart the pipeline
**re-processes** the committed-but-unprocessed shards one by one —
sketch merge, drift detection, refit decision and all, against the
per-shard vocabulary recorded in the log — so a killed-and-resumed
ingest lands in exactly the state an uninterrupted run would have
reached.  That bit-identity is what the fault-injection suite pins.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError, DataError
from ..obs import get_logger, inc, set_gauge, span
from ..resilience import CheckpointWriter
from ..strod import MomentSketch
from ..strod.hierarchy import STRODTreeConfig
from .drift import DriftConfig, DriftReport, baseline_from_sketch, detect_drift
from .refit import StreamRefitter, entity_role_counts
from .shards import ShardStore
from .sketch import build_shard_sketches, sketch_fingerprint

__all__ = [
    "PIPELINE_SOLVER",
    "IngestConfig",
    "IngestPipeline",
    "IngestReport",
    "batch_key",
]

#: Solver name stamped into the pipeline checkpoint (RL006 guard).
PIPELINE_SOLVER = "stream.pipeline"

REFIT_POLICIES = ("drift", "always", "never")

logger = get_logger("stream.ingest")


def batch_key(documents: Sequence[Dict[str, Any]]) -> str:
    """Content fingerprint of a raw batch (exactly-once commit key)."""
    blob = json.dumps(list(documents), sort_keys=True,
                      separators=(",", ":"), default=str).encode("utf-8")
    return "sha256:" + hashlib.sha256(blob).hexdigest()


@dataclass
class IngestConfig:
    """Everything one ingest loop is parameterized by.

    Attributes:
        refit_policy: ``drift`` (detectors decide), ``always`` (every
            batch re-infers) or ``never`` (sketch-only ingestion).
        drift: detector thresholds.
        tree: hierarchy shape and solver budget.
        seed: refit seed (fresh generator per refit).
        dirty_threshold: fractional node-subset change at which a node
            re-solves (0.0 = full re-solve, exactly the batch build).
        min_length: shortest document the sketch keeps (>= 3).
        export_path: artifact path rewritten after every refit (None
            skips exporting).
        export_format: artifact format for the export (v1 / v2).
    """

    refit_policy: str = "drift"
    drift: DriftConfig = field(default_factory=DriftConfig)
    tree: STRODTreeConfig = field(default_factory=STRODTreeConfig)
    seed: int = 0
    dirty_threshold: float = 0.25
    min_length: int = 3
    export_path: Optional[str] = None
    export_format: str = "v2"

    def __post_init__(self) -> None:
        if self.refit_policy not in REFIT_POLICIES:
            raise ConfigurationError(
                f"unsupported refit policy {self.refit_policy!r} "
                f"(one of {REFIT_POLICIES})")

    def to_config(self) -> Dict[str, Any]:
        """Plain-data fingerprint (checkpoint ``config=`` guard).

        ``export_path`` is deliberately excluded: re-pointing the
        artifact does not change any computed state, so it must not
        invalidate a resume.
        """
        return {
            "refit_policy": self.refit_policy,
            "drift": self.drift.to_config(),
            "tree": {
                "num_children": self.tree.num_children,
                "max_depth": self.tree.max_depth,
                "min_documents": self.tree.min_documents,
                "alpha0": self.tree.alpha0,
                "num_restarts": self.tree.num_restarts,
                "num_iterations": self.tree.num_iterations,
            },
            "seed": self.seed,
            "dirty_threshold": self.dirty_threshold,
            "min_length": self.min_length,
        }


@dataclass
class IngestReport:
    """What one :meth:`IngestPipeline.ingest_batch` call did."""

    shard_id: int
    num_documents: int
    vocab_size: int
    drift: DriftReport
    refit_ran: bool
    model_version: int
    deduplicated: bool = False
    refit_stats: Optional[Dict[str, int]] = None
    export_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"shard_id": self.shard_id,
                "num_documents": self.num_documents,
                "vocab_size": self.vocab_size,
                "drift": self.drift.to_dict(),
                "refit_ran": self.refit_ran,
                "model_version": self.model_version,
                "deduplicated": self.deduplicated,
                "refit_stats": self.refit_stats,
                "export_path": self.export_path}


class IngestPipeline:
    """Stateful train-while-serving loop over one shard store.

    Args:
        store: the append-only document log.
        config: loop parameters.
        checkpoint_dir: directory for the pipeline checkpoint (None
            keeps the state in memory only).
        workers: worker count for the sketch ``pmap`` (None defers to
            the resolver chain).

    A fresh pipeline over a non-empty store — or one resumed from a
    checkpoint older than the store — re-processes the outstanding
    shards (sketch, drift, refit decision) before accepting new
    batches, so its state always describes the full committed log and
    matches what an uninterrupted run would hold.
    """

    def __init__(self, store: ShardStore,
                 config: Optional[IngestConfig] = None,
                 checkpoint_dir: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        self.store = store
        self.config = config or IngestConfig()
        self.workers = workers
        self._sketch: Optional[MomentSketch] = None
        self._baseline: Optional[Dict[str, Any]] = None
        self._tree_state: Optional[Dict[str, Any]] = None
        self._model_version = 0
        self._synced_shards = 0
        self._synced_vocab_version = 0
        self._writer: Optional[CheckpointWriter] = None
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
            self._writer = CheckpointWriter(
                os.path.join(checkpoint_dir, "stream-pipeline.ckpt"),
                PIPELINE_SOLVER, config=self.config.to_config())
            document = self._writer.load()
            if document is not None:
                self._restore(document["state"])
        behind = self.store.num_shards - self._synced_shards
        if behind > 0:
            logger.info("pipeline is %d shard(s) behind the store; "
                        "re-processing", behind)
            inc("stream.shards_replayed", behind)
            self._process_pending()

    # --------------------------------------------------------------- state
    @property
    def model_version(self) -> int:
        return self._model_version

    @property
    def sketch(self) -> Optional[MomentSketch]:
        return self._sketch

    @property
    def synced_shards(self) -> int:
        return self._synced_shards

    def _state(self) -> Dict[str, Any]:
        return {
            "sketch": (None if self._sketch is None
                       else self._sketch.to_state()),
            "baseline": self._baseline,
            "tree_state": self._tree_state,
            "model_version": self._model_version,
            "synced_shards": self._synced_shards,
            "synced_vocab_version": self._synced_vocab_version,
            "fingerprint": (None if self._sketch is None else
                            sketch_fingerprint(
                                self._sketch, self._synced_shards,
                                self._synced_vocab_version)),
        }

    def _restore(self, state: Dict[str, Any]) -> None:
        if state.get("sketch") is not None:
            self._sketch = MomentSketch.from_state(state["sketch"])
        self._baseline = state.get("baseline")
        self._tree_state = state.get("tree_state")
        self._model_version = int(state.get("model_version", 0))
        self._synced_shards = int(state.get("synced_shards", 0))
        self._synced_vocab_version = int(
            state.get("synced_vocab_version", 0))
        if self._synced_shards > self.store.num_shards:
            raise DataError(
                f"pipeline checkpoint is ahead of the shard store "
                f"({self._synced_shards} > {self.store.num_shards}); "
                f"the store and checkpoint do not belong together")

    def _checkpoint(self) -> None:
        if self._writer is not None:
            self._writer.save(self._synced_shards, self._state())

    # --------------------------------------------------------------- ingest
    def ingest_batch(self, documents: Sequence[Dict[str, Any]],
                     ) -> IngestReport:
        """Run one batch through the full loop; returns what happened.

        Committing is idempotent: a batch whose content hash matches an
        already-committed shard (a retry after a crash, or the same
        JSONL fed twice) is not appended again.
        """
        with span("stream.ingest_batch", num_documents=len(documents)):
            info = self.store.append_batch(documents,
                                           batch_key=batch_key(documents))
            if info["already_committed"]:
                inc("stream.batches_deduped")
            outcome = self._process_pending()
        if outcome is None:
            # Deduplicated batch whose shard was already processed too:
            # nothing changed, report the standing state.
            report = IngestReport(
                shard_id=info["shard_id"],
                num_documents=info["num_documents"],
                vocab_size=len(self.store.vocabulary),
                drift=DriftReport(triggered=False,
                                  reasons=["batch already committed "
                                           "and processed"]),
                refit_ran=False, model_version=self._model_version,
                deduplicated=True)
        else:
            report = IngestReport(
                shard_id=info["shard_id"],
                num_documents=info["num_documents"],
                vocab_size=len(self.store.vocabulary),
                drift=outcome["drift"],
                refit_ran=outcome["refit_ran"],
                model_version=self._model_version,
                deduplicated=info["already_committed"],
                refit_stats=outcome["refit_stats"],
                export_path=(self.config.export_path
                             if outcome["refit_ran"] else None))
        logger.info("batch -> shard %d: drift=%s refit=%s "
                    "model_version=%d", report.shard_id,
                    report.drift.triggered, report.refit_ran,
                    self._model_version)
        return report

    def _process_pending(self) -> Optional[Dict[str, Any]]:
        """Process every committed-but-unprocessed shard, in order.

        Returns the outcome of the last shard processed, or None when
        the pipeline was already in sync with the store.
        """
        outcome = None
        while self._synced_shards < self.store.num_shards:
            outcome = self._process_shard(self._synced_shards)
        return outcome

    def _process_shard(self, shard_id: int) -> Dict[str, Any]:
        """Sketch one shard, detect drift, maybe refit, checkpoint."""
        payload = self.store.load_shard(shard_id)
        docs = [[tok for chunk in record["chunks"] for tok in chunk]
                for record in payload["documents"]]
        # The vocab as of *this* shard's commit — not the store's
        # current one — so re-processing history after a crash walks
        # through the same intermediate states as the original run.
        vocab_size = int(payload.get("vocab_size",
                                     len(self.store.vocabulary)))
        shard_sketch = build_shard_sketches(
            [docs], vocab_size, min_length=self.config.min_length,
            workers=self.workers)[0]
        if self._sketch is None:
            self._sketch = shard_sketch
        else:
            self._sketch.expand_vocab(vocab_size)
            self._sketch = self._sketch.merge(shard_sketch)
        self._synced_shards = shard_id + 1
        self._synced_vocab_version = int(payload["vocab_version"])
        set_gauge("stream.sketch.num_docs", self._sketch.num_docs)
        set_gauge("stream.sketch.vocab_size", self._sketch.vocab_size)

        drift = detect_drift(self._baseline, self._sketch,
                             self.config.drift)
        for metric, value in drift.metrics.items():
            if value != float("inf"):
                set_gauge(f"stream.drift.{metric}", value)
        policy = self.config.refit_policy
        refit_ran = (policy == "always"
                     or (policy == "drift" and drift.triggered))
        refit_stats = None
        if refit_ran:
            refit_stats = self._refit()
        else:
            inc("stream.refit.skipped")
        self._checkpoint()
        return {"drift": drift, "refit_ran": refit_ran,
                "refit_stats": refit_stats}

    # ---------------------------------------------------------------- refit
    def _refit(self) -> Dict[str, int]:
        """Re-infer dirty subtrees, bump the version, export."""
        assert self._sketch is not None
        corpus = self.store.load_corpus(num_shards=self._synced_shards)
        refitter = StreamRefitter(self.config.tree, seed=self.config.seed,
                                  dirty_threshold=self.config.dirty_threshold)
        hierarchy, tree_state, doc_notations, stats = refitter.refit(
            corpus, self._tree_state)
        self._tree_state = tree_state
        self._baseline = baseline_from_sketch(self._sketch)
        self._model_version += 1
        inc("stream.refits")
        set_gauge("stream.model_version", self._model_version)
        if self.config.export_path is not None:
            self.export(hierarchy, doc_notations, corpus)
        return stats.to_dict()

    def export(self, hierarchy, doc_notations: List[str],
               corpus) -> Dict[str, Any]:
        """Write the artifact the servers hot-swap to (atomic)."""
        from ..serve.artifact import (build_document_from_parts,
                                      save_model_document)

        assert self.config.export_path is not None
        document = build_document_from_parts(
            vocabulary=list(corpus.vocabulary),
            hierarchy=hierarchy,
            entity_roles=entity_role_counts(corpus, doc_notations),
            num_documents=len(corpus),
            config=self.config.to_config(),
            extra_manifest={
                "model_version": self._model_version,
                "stream": sketch_fingerprint(self._sketch,
                                             self._synced_shards,
                                             self._synced_vocab_version),
            })
        manifest = save_model_document(document, self.config.export_path,
                                       format=self.config.export_format)
        inc("stream.exports")
        logger.info("exported model v%d (%d topics) -> %s",
                    self._model_version, manifest["num_topics"],
                    self.config.export_path)
        return manifest
