"""Streaming ingestion for the STROD pipeline.

``repro.stream`` turns the one-shot batch pipeline into a
train-while-serving loop:

* :class:`ShardStore` — an append-only corpus log: CRC-framed shard
  files plus a versioned vocab-delta log, committed atomically through
  the manifest;
* :func:`build_shard_sketches` / :class:`~repro.strod.MomentSketch` —
  per-shard moment sketches whose merge is exactly associative, so the
  running sketch always equals a one-pass sketch of the whole log;
* :func:`detect_drift` — configurable detectors (first-moment delta,
  vocab growth, document count) that decide when the stream has moved
  enough to warrant re-inference;
* :class:`StreamRefitter` — drift-triggered re-inference that re-solves
  only dirty subtrees of the recursive STROD hierarchy;
* :class:`IngestPipeline` — the loop that ties them together, with a
  fingerprint-guarded checkpoint and exactly-once batch commits, and
  exports fresh artifacts for the servers to hot-swap.

See DESIGN.md §5.6 for the formats and protocols, and
``repro ingest --help`` for the CLI front-end.
"""

from .drift import DriftConfig, DriftReport, baseline_from_sketch, detect_drift
from .ingest import (
    PIPELINE_SOLVER,
    REFIT_POLICIES,
    IngestConfig,
    IngestPipeline,
    IngestReport,
    batch_key,
)
from .refit import RefitStats, StreamRefitter, entity_role_counts
from .shards import (
    SHARD_DIR_SCHEMA,
    SHARD_MAGIC,
    SHARD_SCHEMA,
    VOCAB_DELTA_SCHEMA,
    ShardStore,
    is_shard_dir,
)
from .sketch import build_shard_sketches, merge_sketches, sketch_fingerprint

__all__ = [
    "SHARD_DIR_SCHEMA",
    "SHARD_MAGIC",
    "SHARD_SCHEMA",
    "VOCAB_DELTA_SCHEMA",
    "PIPELINE_SOLVER",
    "REFIT_POLICIES",
    "DriftConfig",
    "DriftReport",
    "IngestConfig",
    "IngestPipeline",
    "IngestReport",
    "RefitStats",
    "ShardStore",
    "StreamRefitter",
    "baseline_from_sketch",
    "batch_key",
    "build_shard_sketches",
    "detect_drift",
    "entity_role_counts",
    "is_shard_dir",
    "merge_sketches",
    "sketch_fingerprint",
]
