"""Per-shard moment sketches: parallel build, in-order merge.

Each shard's contribution to the STROD moments is captured by a
:class:`~repro.strod.MomentSketch` built over that shard's documents
alone.  Sketch construction is embarrassingly parallel and runs through
:func:`repro.parallel.pmap` (order-preserving, graceful serial
fallback), and because the sketch merge is **exactly associative**, the
in-order merge of per-shard sketches is bit-identical to a sketch built
over the whole log in one pass — for any worker count.

:func:`sketch_fingerprint` ties a sketch to the shard range and vocab
version it was built from, so a checkpointed sketch can never be
silently applied to a log it does not describe.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import DataError
from ..parallel import pmap
from ..strod import MomentSketch

__all__ = [
    "build_shard_sketches",
    "merge_sketches",
    "sketch_fingerprint",
]


def _sketch_shard(shared: Tuple[int, int],
                  docs: List[List[int]]) -> Dict[str, Any]:
    """pmap worker: sketch one shard's token-id documents."""
    vocab_size, min_length = shared
    return MomentSketch.from_docs(docs, vocab_size,
                                  min_length=min_length).to_state()


def build_shard_sketches(shard_docs: Sequence[List[List[int]]],
                         vocab_size: int, min_length: int = 3,
                         workers: Optional[int] = None,
                         ) -> List[MomentSketch]:
    """One :class:`MomentSketch` per shard, built in parallel.

    ``shard_docs`` is a list of shards, each a list of token-id
    documents.  Results come back in shard order regardless of worker
    scheduling.
    """
    states = pmap(_sketch_shard, list(shard_docs),
                  shared=(vocab_size, min_length), workers=workers,
                  label="stream.sketch")
    return [MomentSketch.from_state(state) for state in states]


def merge_sketches(sketches: Sequence[MomentSketch]) -> MomentSketch:
    """Fold per-shard sketches left-to-right (exactly associative).

    The result is bit-identical to a sketch built over the concatenated
    shards in one pass; grouping does not matter, only the shard order.
    """
    if not sketches:
        raise DataError("cannot merge an empty sketch list")
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = merged.merge(sketch)
    return merged


def sketch_fingerprint(sketch: MomentSketch, num_shards: int,
                       vocab_version: int) -> Dict[str, Any]:
    """Bind a sketch to the exact log prefix it summarizes.

    The returned record travels with every checkpoint and exported
    artifact; a consumer comparing it against a store's manifest can
    tell whether the sketch covers shards ``[0, num_shards)`` at
    ``vocab_version``.
    """
    return {
        "sketch": sketch.fingerprint(),
        "num_shards": int(num_shards),
        "vocab_version": int(vocab_version),
        "vocab_size": int(sketch.vocab_size),
        "num_docs": int(sketch.num_docs),
    }
