"""Drift-triggered re-inference that patches only dirty subtrees.

:class:`StreamRefitter` maintains the recursive STROD topic tree of
:class:`~repro.strod.STRODHierarchyBuilder` across stream updates.  Per
node it decides between:

* **solve** — re-run the full moment pipeline (whitening + tensor
  power + recovery) on the node's current document subset.  A node is
  solved when it has no previous model or its subset size changed by at
  least ``dirty_threshold`` (fractionally) since that model was fit;
* **reuse** — keep the previous model, zero-padding its topic-word
  rows to the grown vocabulary (unseen words simply cast no votes in
  the fold-in), and only re-assign documents to children.

With ``dirty_threshold=0.0`` every node with any change re-solves, and
because the refitter walks the tree in exactly the batch builder's
depth-first order with a fresh seeded generator per call, a full-solve
refit reproduces ``STRODHierarchyBuilder(config, seed).build(corpus)``
**bit for bit** — the equivalence the stream test suite pins.  With a
positive threshold the result is approximate on reused subtrees, by
design: that is where the incremental speedup comes from.

The per-node models live in a plain-data tree state (JSON/pickle safe)
so the ingest pipeline can checkpoint and resume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import ConfigurationError
from ..hierarchy import Topic, TopicalHierarchy
from ..obs import get_logger, inc, span
from ..strod import STROD
from ..strod.hierarchy import STRODTreeConfig
from ..strod.strod import STRODModel
from ..utils import ensure_rng

__all__ = [
    "RefitStats",
    "StreamRefitter",
    "entity_role_counts",
]

logger = get_logger("stream.refit")


@dataclass
class RefitStats:
    """What one refit pass actually did."""

    nodes_solved: int = 0
    nodes_reused: int = 0
    num_documents: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"nodes_solved": self.nodes_solved,
                "nodes_reused": self.nodes_reused,
                "num_documents": self.num_documents}


def _model_to_state(model: STRODModel, num_docs: int) -> Dict[str, Any]:
    return {
        "num_docs": int(num_docs),
        "vocab_size": int(model.phi.shape[1]),
        "alpha": model.alpha.tolist(),
        "phi": model.phi.tolist(),
        "alpha0": float(model.alpha0),
        "eigenvalues": model.eigenvalues.tolist(),
        "residual": float(model.residual),
    }


def _model_from_state(state: Dict[str, Any],
                      vocab_size: int) -> STRODModel:
    """Rebuild a node model, zero-padding phi to the grown vocabulary."""
    phi_old = np.asarray(state["phi"], dtype=float)
    if vocab_size < phi_old.shape[1]:
        raise ConfigurationError(
            f"cannot shrink a node model vocabulary "
            f"({phi_old.shape[1]} -> {vocab_size})")
    phi = np.zeros((phi_old.shape[0], vocab_size))
    phi[:, :phi_old.shape[1]] = phi_old
    return STRODModel(alpha=np.asarray(state["alpha"], dtype=float),
                      phi=phi, alpha0=float(state["alpha0"]),
                      eigenvalues=np.asarray(state["eigenvalues"],
                                             dtype=float),
                      residual=float(state["residual"]))


class StreamRefitter:
    """Incrementally maintained recursive STROD hierarchy.

    Args:
        config: the tree shape / solver budget (same knobs as the
            batch builder).
        seed: base seed; each :meth:`refit` call starts a fresh
            generator from it, so a full-solve refit is reproducible
            and equal to the batch build under the same seed.
        dirty_threshold: fractional subset-size change at which a node
            with a previous model re-solves (0.0 = always re-solve).
    """

    def __init__(self, config: Optional[STRODTreeConfig] = None,
                 seed: int = 0, dirty_threshold: float = 0.25) -> None:
        if dirty_threshold < 0:
            raise ConfigurationError("dirty_threshold must be >= 0")
        self.config = config or STRODTreeConfig()
        self.seed = seed
        self.dirty_threshold = dirty_threshold

    def refit(self, corpus: Corpus,
              previous: Optional[Dict[str, Any]] = None,
              ) -> Tuple[TopicalHierarchy, Dict[str, Any], List[str],
                         RefitStats]:
        """Rebuild / patch the hierarchy for the corpus as it stands.

        Args:
            corpus: the full materialized stream corpus.
            previous: the tree state a prior refit returned (None for a
                from-scratch build).

        Returns ``(hierarchy, tree_state, doc_notations, stats)`` where
        ``doc_notations[i]`` is the deepest topic document ``i`` was
        assigned to (``"o"`` when the tree has no children) and
        ``tree_state`` is the plain-data per-node model map to pass to
        the next refit.
        """
        prev_nodes = (previous or {}).get("nodes", {})
        stats = RefitStats(num_documents=len(corpus))
        hierarchy = TopicalHierarchy()
        docs = [doc.tokens for doc in corpus]
        doc_notations = ["o"] * len(docs)
        state: Dict[str, Any] = {"nodes": {}}
        rng = ensure_rng(self.seed)
        with span("stream.refit", num_documents=len(docs)):
            self._expand(hierarchy.root, corpus, docs,
                         list(range(len(docs))), 0, prev_nodes, state,
                         doc_notations, stats, rng)
        inc("stream.refit.nodes_solved", stats.nodes_solved)
        inc("stream.refit.nodes_reused", stats.nodes_reused)
        logger.info("refit over %d documents: %d nodes solved, "
                    "%d reused", len(docs), stats.nodes_solved,
                    stats.nodes_reused)
        return hierarchy, state, doc_notations, stats

    # ------------------------------------------------------------ internals
    def _expand(self, topic: Topic, corpus: Corpus,
                docs: List[List[int]], doc_ids: List[int], level: int,
                prev_nodes: Dict[str, Any], state: Dict[str, Any],
                doc_notations: List[str], stats: RefitStats,
                rng) -> None:
        """The batch builder's recursion, with a solve-or-reuse gate."""
        config = self.config
        if level >= config.max_depth:
            return
        subset = [docs[i] for i in doc_ids]
        long_enough = [d for d in subset if len(d) >= 3]
        if len(long_enough) < max(config.min_documents,
                                  config.num_children):
            return

        vocab_size = len(corpus.vocabulary)
        notation = topic.notation
        prev = prev_nodes.get(notation)
        estimator = STROD(num_topics=config.num_children,
                          alpha0=config.alpha0,
                          num_restarts=config.num_restarts,
                          num_iterations=config.num_iterations,
                          seed=rng)
        if prev is not None and not self._is_dirty(prev, len(subset)):
            estimator.model_ = _model_from_state(prev, vocab_size)
            model = estimator.model_
            stats.nodes_reused += 1
        else:
            model = estimator.fit(subset, vocab_size=vocab_size)
            stats.nodes_solved += 1
        state["nodes"][notation] = _model_to_state(model, len(subset))
        responsibilities = estimator.document_topics(subset)
        assignment = responsibilities.argmax(axis=1)

        vocabulary = corpus.vocabulary
        for z in range(config.num_children):
            phi_dict = {vocabulary.word_of(w): float(p)
                        for w, p in enumerate(model.phi[z]) if p > 1e-6}
            child = Topic(rho=float(model.alpha[z] / model.alpha.sum()),
                          phi={"term": phi_dict})
            topic.add_child(child)
            child_doc_ids = [doc_ids[i] for i in range(len(doc_ids))
                             if assignment[i] == z]
            for doc_id in child_doc_ids:
                doc_notations[doc_id] = child.notation
            self._expand(child, corpus, docs, child_doc_ids, level + 1,
                         prev_nodes, state, doc_notations, stats, rng)

    def _is_dirty(self, prev: Dict[str, Any], subset_size: int) -> bool:
        """Has the node's document subset changed enough to re-solve?"""
        prev_docs = int(prev["num_docs"])
        change = abs(subset_size - prev_docs) / max(prev_docs, 1)
        return change >= self.dirty_threshold


def entity_role_counts(corpus: Corpus, doc_notations: List[str],
                       ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Entity -> topic frequency tables from the stream assignment.

    Each document votes once for every ancestor of its assigned topic
    (root ``"o"`` included), for every entity linked to it — the same
    shape the batch role analyzer feeds the serve artifact
    (``{etype: {name: {notation: count}}}``), derived purely from the
    refit's document assignment so the streamed artifact needs no
    separate EM pass.
    """
    roles: Dict[str, Dict[str, Dict[str, float]]] = {}
    for doc, notation in zip(corpus, doc_notations):
        parts = notation.split("/")
        ancestors = ["/".join(parts[:i + 1]) for i in range(len(parts))]
        for etype, names in doc.entities.items():
            table = roles.setdefault(etype, {})
            for name in names:
                counts = table.setdefault(name, {})
                for ancestor in ancestors:
                    counts[ancestor] = counts.get(ancestor, 0.0) + 1.0
    return roles
