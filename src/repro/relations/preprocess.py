"""Stage 1 of TPFG: candidate generation and local likelihood (Section 6.1.3).

For each ordered coauthor pair (advisee candidate ``a_i``, advisor
candidate ``a_j``), the time-resolved Kulczynski correlation (Eq. 6.1) and
imbalance ratio (Eq. 6.2) are computed; heuristic rules R1–R4 prune
implausible pairs; the advising interval [st, ed] is estimated from the
shape of the Kulczynski curve; and the local likelihood combines the two
measures averaged over the interval (Eq. 6.3).  The surviving candidate
edges form a DAG because Assumption 6.2 orders authors by first
publication year.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConfigurationError
from ..utils import EPS
from .collab import CollaborationNetwork, YearSeries


@dataclass
class Candidate:
    """One candidate advising relation a_i -> a_j (j may advise i)."""

    advisee: str
    advisor: str
    start: int
    end: int
    likelihood: float


@dataclass
class CandidateGraph:
    """The DAG of candidate relations H' (plus the virtual root a0).

    ``candidates[advisee]`` lists that author's potential advisors with
    normalized local likelihoods (summing to one including the virtual
    no-advisor option keyed by ``ROOT``).
    """

    ROOT = ""

    candidates: Dict[str, List[Candidate]] = field(default_factory=dict)

    def advisors_of(self, advisee: str) -> List[Candidate]:
        """Candidate advisors of one author (including the root option)."""
        return self.candidates.get(advisee, [])

    def advisees_of(self, advisor: str) -> List[Candidate]:
        """All candidates naming this author as advisor."""
        return [c for cands in self.candidates.values() for c in cands
                if c.advisor == advisor]

    @property
    def authors(self) -> List[str]:
        """All authors with candidate lists, sorted."""
        return sorted(self.candidates)

    def num_edges(self) -> int:
        """Number of real (non-root) candidate relations."""
        return sum(len(c) for c in self.candidates.values()) \
            - len(self.candidates)  # exclude the virtual-root edges

    def is_acyclic(self) -> bool:
        """Verify the DAG property along non-root candidate edges."""
        color: Dict[str, int] = {}

        def visit(node: str) -> bool:
            color[node] = 1
            for cand in self.candidates.get(node, []):
                if cand.advisor == self.ROOT:
                    continue
                state = color.get(cand.advisor, 0)
                if state == 1:
                    return False
                if state == 0 and not visit(cand.advisor):
                    return False
            color[node] = 2
            return True

        return all(visit(node) for node in self.candidates
                   if color.get(node, 0) == 0)


def kulczynski(pair: YearSeries, series_i: YearSeries,
               series_j: YearSeries, year: int) -> float:
    """kulc^t_{ij} of Eq. 6.1 at ``year`` (cumulative counts)."""
    joint = pair.cumulative(year)
    if joint == 0:
        return 0.0
    n_i = max(series_i.cumulative(year), 1)
    n_j = max(series_j.cumulative(year), 1)
    return joint / 2.0 * (1.0 / n_i + 1.0 / n_j)


def imbalance_ratio(pair: YearSeries, series_i: YearSeries,
                    series_j: YearSeries, year: int) -> float:
    """IR^t_{ij} of Eq. 6.2 at ``year``: positive when j out-publishes i."""
    joint = pair.cumulative(year)
    n_i = series_i.cumulative(year)
    n_j = series_j.cumulative(year)
    denominator = n_i + n_j - joint
    if denominator <= 0:
        return 0.0
    return (n_j - n_i) / denominator


@dataclass
class PreprocessConfig:
    """Stage-1 knobs.

    Attributes:
        rules: subset of {"R1", "R2", "R3", "R4"} to apply (Section 6.1.3);
            R1 = drop pairs with negative IR during collaboration,
            R2 = drop pairs whose Kulczynski curve never increases,
            R3 = drop single-year collaborations,
            R4 = drop pairs where j's career predates the collaboration by
                 less than two years (py^1_j + 2 > py^1_ij).
        end_year_method: "YEAR1" (first Kulczynski decrease), "YEAR2"
            (largest before/after Kulczynski difference), or "YEAR" (the
            earlier of the two).
        likelihood: "kulc", "ir", or "avg" (Eq. 6.3).
        root_likelihood: unnormalized weight of the no-advisor option.
    """

    rules: FrozenSet[str] = frozenset({"R1", "R2", "R3", "R4"})
    end_year_method: str = "YEAR"
    likelihood: str = "avg"
    root_likelihood: float = 0.15

    def __post_init__(self) -> None:
        unknown = set(self.rules) - {"R1", "R2", "R3", "R4"}
        if unknown:
            raise ConfigurationError(f"unknown rules: {sorted(unknown)}")
        if self.end_year_method not in ("YEAR", "YEAR1", "YEAR2"):
            raise ConfigurationError(
                "end_year_method must be YEAR, YEAR1 or YEAR2")
        if self.likelihood not in ("kulc", "ir", "avg"):
            raise ConfigurationError("likelihood must be kulc, ir or avg")


def build_candidate_graph(network: CollaborationNetwork,
                          config: Optional[PreprocessConfig] = None,
                          ) -> CandidateGraph:
    """Run Stage 1: filter pairs, estimate intervals, score likelihoods."""
    config = config or PreprocessConfig()
    graph = CandidateGraph()

    for advisee in network.authors:
        series_i = network.series_of(advisee)
        raw: List[Candidate] = []
        for advisor in network.coauthors(advisee):
            candidate = _evaluate_pair(network, advisee, advisor, config)
            if candidate is not None:
                raw.append(candidate)
        # Virtual root option: "no advisor in the data".
        raw.append(Candidate(advisee=advisee, advisor=CandidateGraph.ROOT,
                             start=series_i.first_year or 0,
                             end=series_i.last_year or 0,
                             likelihood=config.root_likelihood))
        total = sum(c.likelihood for c in raw)
        if total > 0:
            for c in raw:
                c.likelihood = c.likelihood / total
        graph.candidates[advisee] = raw
    return graph


def _evaluate_pair(network: CollaborationNetwork, advisee: str,
                   advisor: str,
                   config: PreprocessConfig) -> Optional[Candidate]:
    series_i = network.series_of(advisee)
    series_j = network.series_of(advisor)
    pair = network.pair(advisee, advisor)
    if pair is None or not pair.counts:
        return None

    # Assumption 6.2: the advisor publishes strictly earlier.
    if series_j.first_year is None or series_i.first_year is None or \
            series_j.first_year >= series_i.first_year:
        return None

    collab_years = pair.years()
    kulc_curve = [kulczynski(pair, series_i, series_j, y)
                  for y in collab_years]
    ir_curve = [imbalance_ratio(pair, series_i, series_j, y)
                for y in collab_years]

    if "R1" in config.rules and any(v < 0 for v in ir_curve):
        return None
    if "R2" in config.rules and len(kulc_curve) > 1 and all(
            kulc_curve[idx + 1] <= kulc_curve[idx]
            for idx in range(len(kulc_curve) - 1)):
        return None
    if "R3" in config.rules and len(collab_years) <= 1:
        return None
    if "R4" in config.rules and series_j.first_year + 2 > collab_years[0]:
        return None

    start = collab_years[0]
    end = _estimate_end_year(collab_years, kulc_curve, config.end_year_method)

    window = [idx for idx, y in enumerate(collab_years) if start <= y <= end]
    if not window:
        window = list(range(len(collab_years)))
    kulc_avg = sum(kulc_curve[idx] for idx in window) / len(window)
    ir_avg = sum(ir_curve[idx] for idx in window) / len(window)
    if config.likelihood == "kulc":
        likelihood = kulc_avg
    elif config.likelihood == "ir":
        likelihood = ir_avg
    else:
        likelihood = (kulc_avg + ir_avg) / 2.0
    likelihood = max(likelihood, EPS)
    return Candidate(advisee=advisee, advisor=advisor, start=start, end=end,
                     likelihood=likelihood)


def _estimate_end_year(years: List[int], kulc_curve: List[float],
                       method: str) -> int:
    """Estimate ed_ij from the Kulczynski curve (Section 6.1.3)."""
    if len(years) == 1:
        return years[0]

    def year1() -> int:
        for idx in range(1, len(kulc_curve)):
            if kulc_curve[idx] < kulc_curve[idx - 1]:
                return years[idx - 1]
        return years[-1]

    def year2() -> int:
        best_idx, best_gap = len(years) - 1, float("-inf")
        for idx in range(len(years)):
            before = sum(kulc_curve[:idx + 1]) / (idx + 1)
            after_count = len(kulc_curve) - idx - 1
            after = (sum(kulc_curve[idx + 1:]) / after_count
                     if after_count else 0.0)
            gap = before - after
            if gap > best_gap:
                best_idx, best_gap = idx, gap
        return years[best_idx]

    if method == "YEAR1":
        return year1()
    if method == "YEAR2":
        return year2()
    return min(year1(), year2())
