"""Chronological advising genealogy (the visualization of Figure 6.2).

Given TPFG's predictions, the advisor choices form a forest; each edge
carries the estimated advising interval.  This module materializes that
forest and renders it as an ASCII genealogy — the "visualized
chronological hierarchies" output of the advisor-mining system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DataError
from .preprocess import CandidateGraph
from .tpfg import ROOT, TPFGResult


@dataclass
class AdvisingEdge:
    """One predicted advising relation with its interval and score."""

    advisee: str
    advisor: str
    start: int
    end: int
    score: float


@dataclass
class AdvisingForest:
    """The predicted advisor forest.

    Attributes:
        children: advisor -> advising edges to their predicted students,
            sorted by advising start year.
        roots: authors with no predicted advisor, sorted by name.
    """

    children: Dict[str, List[AdvisingEdge]] = field(default_factory=dict)
    roots: List[str] = field(default_factory=list)

    def descendants(self, author: str) -> List[str]:
        """All academic descendants of ``author`` (pre-order)."""
        result: List[str] = []
        stack = [author]
        while stack:
            node = stack.pop()
            for edge in self.children.get(node, []):
                result.append(edge.advisee)
                stack.append(edge.advisee)
        return result

    def generation_of(self, author: str) -> int:
        """Distance from the author's forest root (roots are 0)."""
        depth = 0
        node = author
        seen = set()
        while True:
            parent = self._parent_of(node)
            if parent is None:
                return depth
            if parent in seen:
                raise DataError("advising forest contains a cycle")
            seen.add(parent)
            node = parent
            depth += 1

    def _parent_of(self, author: str) -> Optional[str]:
        for advisor, edges in self.children.items():
            if any(edge.advisee == author for edge in edges):
                return advisor
        return None


def build_advising_forest(result: TPFGResult,
                          graph: CandidateGraph,
                          top_k: int = 1,
                          theta: float = 0.5) -> AdvisingForest:
    """Materialize the predicted advisor forest from TPFG's ranking.

    Predictions use the same P@(k, theta) rule as evaluation; the
    interval attached to each edge is the candidate's estimated
    [st, ed] from Stage-1 preprocessing.
    """
    forest = AdvisingForest()
    predicted: Dict[str, Optional[str]] = result.predictions(
        top_k=top_k, theta=theta)
    for advisee in graph.authors:
        advisor = predicted.get(advisee)
        if advisor is None or advisor == ROOT:
            forest.roots.append(advisee)
            continue
        candidate = next(
            (c for c in graph.advisors_of(advisee)
             if c.advisor == advisor), None)
        if candidate is None:
            forest.roots.append(advisee)
            continue
        forest.children.setdefault(advisor, []).append(AdvisingEdge(
            advisee=advisee, advisor=advisor,
            start=candidate.start, end=candidate.end,
            score=result.score(advisee, advisor)))
    for edges in forest.children.values():
        edges.sort(key=lambda e: (e.start, e.advisee))
    forest.roots.sort()
    # Advisors that are themselves advised should not appear as roots.
    advised = {edge.advisee for edges in forest.children.values()
               for edge in edges}
    forest.roots = [name for name in forest.roots
                    if name not in advised]
    return forest


def render_genealogy(forest: AdvisingForest,
                     root: Optional[str] = None,
                     max_depth: int = 10) -> str:
    """ASCII rendering of (part of) the advising genealogy.

    Args:
        forest: the predicted forest.
        root: render only this author's subtree; default renders every
            root that has at least one student.
        max_depth: generation cut-off.
    """
    lines: List[str] = []

    def visit(author: str, depth: int) -> None:
        if depth > max_depth:
            return
        for edge in forest.children.get(author, []):
            lines.append("  " * depth
                         + f"+- {edge.advisee} "
                         f"[{edge.start}-{edge.end}] "
                         f"({edge.score:.2f})")
            visit(edge.advisee, depth + 1)

    if root is not None:
        lines.append(root)
        visit(root, 1)
    else:
        for name in forest.roots:
            if forest.children.get(name):
                lines.append(name)
                visit(name, 1)
    return "\n".join(lines)
