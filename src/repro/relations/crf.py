"""Supervised hierarchical-relation CRF (Section 6.2).

The conditional random field places a feature-linear potential on every
candidate relation and keeps TPFG's time-constraint factors.  Following
the paper's decomposition, learning maximizes the conditional likelihood
of each labeled author's advisor choice given its candidate set (the
constraint factors carry no parameters, so they drop out of the
gradient); inference plugs the learned potentials into the same
constrained max-sum machinery as the unsupervised model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import NotFittedError
from ..utils import EPS, RandomState, ensure_rng
from .collab import CollaborationNetwork
from .features import FeatureScaler, pair_features
from .preprocess import Candidate, CandidateGraph
from .tpfg import ROOT, TPFG, TPFGResult


class HierarchicalRelationCRF:
    """CRF over the candidate DAG with learned potential functions.

    Args:
        learning_rate / epochs / l2: batch gradient ascent knobs for the
            per-node softmax conditional likelihood.
        message_iterations / penalty: forwarded to the constrained
            max-sum inference (:class:`~repro.relations.tpfg.TPFG`).
        seed: RNG seed or generator.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300,
                 l2: float = 1e-3, message_iterations: int = 25,
                 penalty: float = 50.0, seed: RandomState = None) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.message_iterations = message_iterations
        self.penalty = penalty
        self._rng = ensure_rng(seed)
        self.weights_: Optional[np.ndarray] = None
        self.scaler_ = FeatureScaler()

    # ------------------------------------------------------------------- fit
    def fit(self, network: CollaborationNetwork, graph: CandidateGraph,
            labeled_advisees: Dict[str, Optional[str]],
            ) -> "HierarchicalRelationCRF":
        """Learn the potential weights from labeled advisor choices.

        ``labeled_advisees[x]`` is x's true advisor (or None, mapped to
        the virtual-root option).  Authors whose true advisor is not in
        their candidate set train toward the root option, teaching the
        model an honest no-advisor prior.
        """
        nodes: List[List[np.ndarray]] = []
        gold: List[int] = []
        all_rows: List[np.ndarray] = []
        for advisee, true_advisor in labeled_advisees.items():
            candidates = graph.advisors_of(advisee)
            if not candidates:
                continue
            rows = [pair_features(network, c) for c in candidates]
            names = [c.advisor for c in candidates]
            target = true_advisor if true_advisor in names else ROOT
            nodes.append(rows)
            gold.append(names.index(target))
            all_rows.extend(rows)
        if not nodes:
            raise NotFittedError("no trainable labeled advisees")

        self.scaler_.fit(np.array(all_rows))
        scaled_nodes = [self.scaler_.transform(np.array(rows))
                        for rows in nodes]

        num_features = scaled_nodes[0].shape[1]
        weights = np.zeros(num_features)
        for _ in range(self.epochs):
            gradient = -self.l2 * weights
            for rows, target in zip(scaled_nodes, gold):
                logits = rows @ weights
                logits -= logits.max()
                probs = np.exp(logits)
                probs /= max(probs.sum(), EPS)
                gradient += rows[target] - probs @ rows
            weights += self.learning_rate * gradient / len(scaled_nodes)
        self.weights_ = weights
        return self

    # --------------------------------------------------------------- predict
    def predict(self, network: CollaborationNetwork,
                graph: CandidateGraph) -> TPFGResult:
        """Constrained MAP inference with the learned potentials.

        Builds a candidate graph whose local likelihoods are the softmax
        of the learned potentials, then reuses TPFG's constrained
        max-sum — the CRF and TPFG share inference by design.
        """
        if self.weights_ is None:
            raise NotFittedError("call fit() first")
        scored = CandidateGraph()
        for author in graph.authors:
            candidates = graph.advisors_of(author)
            rows = self.scaler_.transform(
                np.array([pair_features(network, c) for c in candidates]))
            logits = rows @ self.weights_
            logits -= logits.max()
            probs = np.exp(logits)
            probs /= max(probs.sum(), EPS)
            scored.candidates[author] = [
                Candidate(advisee=c.advisee, advisor=c.advisor,
                          start=c.start, end=c.end, likelihood=float(p))
                for c, p in zip(candidates, probs)]
        inference = TPFG(max_iter=self.message_iterations,
                         penalty=self.penalty)
        return inference.fit(scored)
