"""Mining hierarchical relations: TPFG and the supervised CRF (Chapter 6)."""

from .baselines import IndMaxBaseline, RuleBaseline, SupervisedPairClassifier
from .collab import CollaborationNetwork, YearSeries
from .crf import HierarchicalRelationCRF
from .genealogy import (AdvisingEdge, AdvisingForest,
                        build_advising_forest, render_genealogy)
from .features import FEATURE_NAMES, FeatureScaler, pair_features
from .metrics import RelationAccuracy, evaluate_predictions, precision_at
from .preprocess import (Candidate, CandidateGraph, PreprocessConfig,
                         build_candidate_graph, imbalance_ratio, kulczynski)
from .tpfg import ROOT, TPFG, TPFGResult

__all__ = [
    "CollaborationNetwork",
    "YearSeries",
    "Candidate",
    "CandidateGraph",
    "PreprocessConfig",
    "build_candidate_graph",
    "kulczynski",
    "imbalance_ratio",
    "TPFG",
    "TPFGResult",
    "ROOT",
    "RuleBaseline",
    "IndMaxBaseline",
    "SupervisedPairClassifier",
    "HierarchicalRelationCRF",
    "FEATURE_NAMES",
    "FeatureScaler",
    "pair_features",
    "RelationAccuracy",
    "evaluate_predictions",
    "precision_at",
    "AdvisingEdge",
    "AdvisingForest",
    "build_advising_forest",
    "render_genealogy",
]
