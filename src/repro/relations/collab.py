"""Temporal collaboration network (Section 6.1.1).

The input to advisor–advisee mining is a time-dependent collaboration
network: papers linked to authors with publication years.  This module
transforms it into the homogeneous author network G with, per author and
per coauthor pair, the publication-year vector ``py`` and publication
count vector ``pn`` of the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..corpus import Corpus
from ..errors import DataError

Pair = Tuple[str, str]


@dataclass
class YearSeries:
    """Sparse count-per-year series (py / pn vectors)."""

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, year: int, count: int = 1) -> None:
        """Add ``count`` publications in ``year``."""
        self.counts[year] = self.counts.get(year, 0) + count

    @property
    def first_year(self) -> Optional[int]:
        """py^1: the first year with a publication (None when empty)."""
        return min(self.counts) if self.counts else None

    @property
    def last_year(self) -> Optional[int]:
        """The last year with a publication (None when empty)."""
        return max(self.counts) if self.counts else None

    def total(self) -> int:
        """Total publication count across all years."""
        return sum(self.counts.values())

    def cumulative(self, year: int) -> int:
        """Number of publications up to and including ``year``."""
        return sum(c for y, c in self.counts.items() if y <= year)

    def years(self) -> List[int]:
        """All years with publications, sorted."""
        return sorted(self.counts)

    def __len__(self) -> int:
        return len(self.counts)


class CollaborationNetwork:
    """Author network with per-author and per-pair time series.

    Author pairs are stored unordered (canonical name ordering);
    :meth:`pair_series` accepts either order.
    """

    def __init__(self) -> None:
        self.author_series: Dict[str, YearSeries] = {}
        self.pair_series: Dict[Pair, YearSeries] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def from_papers(cls, papers: Iterable[Tuple[Sequence[str], int]],
                    ) -> "CollaborationNetwork":
        """Build from (author list, year) records."""
        network = cls()
        for authors, year in papers:
            network.add_paper(authors, year)
        return network

    @classmethod
    def from_corpus(cls, corpus: Corpus,
                    author_type: str = "author") -> "CollaborationNetwork":
        """Build from a corpus whose documents carry authors and years."""
        network = cls()
        for doc in corpus:
            if doc.year is None:
                raise DataError(
                    f"document {doc.doc_id} has no year; relation mining "
                    "requires timestamps")
            network.add_paper(doc.entity_list(author_type), doc.year)
        return network

    def add_paper(self, authors: Sequence[str], year: int) -> None:
        """Record one paper: updates author and pair series."""
        unique = sorted(set(authors))
        for author in unique:
            self.author_series.setdefault(author, YearSeries()).add(year)
        for a, b in combinations(unique, 2):
            self.pair_series.setdefault((a, b), YearSeries()).add(year)

    # ------------------------------------------------------------------ views
    @property
    def authors(self) -> List[str]:
        """All author names, sorted."""
        return sorted(self.author_series)

    def series_of(self, author: str) -> YearSeries:
        """The publication series of one author."""
        try:
            return self.author_series[author]
        except KeyError:
            raise DataError(f"unknown author: {author!r}") from None

    def pair(self, a: str, b: str) -> Optional[YearSeries]:
        """The joint publication series of two authors (None if never)."""
        key = (a, b) if a <= b else (b, a)
        return self.pair_series.get(key)

    def coauthors(self, author: str) -> List[str]:
        """All collaborators of ``author``."""
        result = []
        for (a, b) in self.pair_series:
            if a == author:
                result.append(b)
            elif b == author:
                result.append(a)
        return sorted(result)

    def __repr__(self) -> str:
        return (f"CollaborationNetwork(authors={len(self.author_series)}, "
                f"pairs={len(self.pair_series)})")
