"""Stage 2 of advisor–advisee mining: the TPFG model (Section 6.1.4–6.1.5).

The joint probability over all advisor variables ``y_i`` is the product
of local feature functions ``f_i`` (Eq. 6.7): each combines the local
likelihood ``g(y_i) = l_{i, y_i}`` with the time-constraint indicators of
Eq. 6.9 — if x is advised by i, then i's own advised period must end
before i starts advising x (Assumption 6.1).

Inference maximizes the joint likelihood by max-sum message passing on
the factor graph.  Because constraint factors couple exactly two
variables (y_x and y_i), the factor graph reduces to a pairwise MRF whose
messages cost O(|Y_x| + |Y_i|) each; the candidate graph is a DAG, so a
small number of flooding iterations converges in practice.  The ranking
score ``r_ij`` (Eq. 6.10) is the normalized max-marginal belief.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import span, timed_function, trace
from ..utils import EPS
from .preprocess import Candidate, CandidateGraph

ROOT = CandidateGraph.ROOT


@dataclass
class TPFGResult:
    """Ranked advisor candidates per author.

    ``ranking[author]`` is a list of (advisor name, score) pairs sorted by
    descending score; scores are normalized beliefs summing to one, so
    they are directly comparable to the prediction threshold theta.
    """

    ranking: Dict[str, List[Tuple[str, float]]]

    def score(self, advisee: str, advisor: str) -> float:
        """r_ij for one candidate pair (0 when not a candidate)."""
        for name, score in self.ranking.get(advisee, []):
            if name == advisor:
                return score
        return 0.0

    def predicted_advisor(self, advisee: str, top_k: int = 1,
                          theta: float = 0.5) -> Optional[str]:
        """P@(k, theta) prediction rule (Section 6.1.1).

        Returns the best-ranked real advisor within the top-k real
        candidates whose score exceeds the virtual-root score or
        ``theta`` — or None when the author is predicted to have no
        advisor in the data.
        """
        ranked = [(name, score)
                  for name, score in self.ranking.get(advisee, [])
                  if name != ROOT]
        root_score = self.score(advisee, ROOT)
        for name, score in ranked[:top_k]:
            if score > root_score or score > theta:
                return name
        return None

    def predictions(self, top_k: int = 1,
                    theta: float = 0.5) -> Dict[str, Optional[str]]:
        """Predicted advisor (or None) for every author."""
        return {author: self.predicted_advisor(author, top_k, theta)
                for author in self.ranking}


class TPFG:
    """Max-sum inference over the time-constrained factor graph.

    Args:
        max_iter: flooding message-passing iterations.
        penalty: log-domain penalty standing in for the hard constraint
            (a soft -infinity keeps beliefs finite under loopy passing).
        damping: message damping factor in [0, 1); 0 disables damping.
    """

    def __init__(self, max_iter: int = 25, penalty: float = 50.0,
                 damping: float = 0.0) -> None:
        if not 0 <= damping < 1:
            raise ConfigurationError("damping must be in [0, 1)")
        self.max_iter = max_iter
        self.penalty = penalty
        self.damping = damping

    @timed_function("tpfg.fit")
    def fit(self, graph: CandidateGraph, checkpoint=None,
            resume: bool = False) -> TPFGResult:
        """Run inference and return the advisor rankings.

        Args:
            graph: the candidate graph from stage 1.
            checkpoint: optional
                :class:`~repro.resilience.CheckpointWriter`; the message
                table is persisted at the writer's cadence, and a
                resumed fit replays the remaining flooding iterations
                bit for bit (message passing is deterministic).
            resume: continue from the checkpoint file when it exists.
        """
        authors = graph.authors
        domain: Dict[str, List[Candidate]] = {
            a: graph.advisors_of(a) for a in authors}
        unary: Dict[str, np.ndarray] = {
            a: np.log(np.maximum(
                np.array([c.likelihood for c in domain[a]]), EPS))
            for a in authors}
        index_in_domain: Dict[str, Dict[str, int]] = {
            a: {c.advisor: idx for idx, c in enumerate(domain[a])}
            for a in authors}

        # Factor edges: (advisee x, advisor i) for every real candidate of
        # x whose advisor node exists in the graph.
        edges: List[Tuple[str, str]] = []
        for x in authors:
            for cand in domain[x]:
                if cand.advisor != ROOT and cand.advisor in domain:
                    edges.append((x, cand.advisor))

        # allowed[x, i][j-index of i's domain]: True when i choosing its
        # j-th advisor does not conflict with advising x.
        allowed: Dict[Tuple[str, str], np.ndarray] = {}
        start_of: Dict[Tuple[str, str], int] = {}
        for x, i in edges:
            st_xi = domain[x][index_in_domain[x][i]].start
            start_of[(x, i)] = st_xi
            mask = np.array([
                c.advisor == ROOT or c.end < st_xi for c in domain[i]],
                dtype=bool)
            allowed[(x, i)] = mask

        messages: Dict[Tuple[str, str, str], np.ndarray] = {}
        for x, i in edges:
            messages[("down", x, i)] = np.zeros(len(domain[i]))
            messages[("up", i, x)] = np.zeros(len(domain[x]))

        start_iter = 0
        if checkpoint is not None and resume:
            document = checkpoint.load()
            if document is not None:
                saved = document["state"]
                messages.update(saved["messages"])
                start_iter = int(saved["iteration"]) + 1

        neighbors_down: Dict[str, List[str]] = {a: [] for a in authors}
        neighbors_up: Dict[str, List[str]] = {a: [] for a in authors}
        for x, i in edges:
            neighbors_down[x].append(i)   # x sends "down" messages to i
            neighbors_up[i].append(x)     # i sends "up" messages to x

        def node_belief(a: str, exclude: Optional[Tuple[str, str]] = None,
                        ) -> np.ndarray:
            belief = np.array(unary[a])
            for i in neighbors_down[a]:
                if exclude != ("up", i):
                    belief = belief + messages[("up", i, a)]
            for x in neighbors_up[a]:
                if exclude != ("down", x):
                    belief = belief + messages[("down", x, a)]
            return belief

        tracer = trace("tpfg.message_passing", num_authors=len(authors),
                       num_edges=len(edges), max_iter=self.max_iter,
                       damping=self.damping)
        for iteration in range(start_iter, self.max_iter):
            new_messages: Dict[Tuple[str, str, str], np.ndarray] = {}
            with span("tpfg.message_round", iteration=iteration):
                for x, i in edges:
                    # Message from advisee x to advisor i over y_i.
                    base = node_belief(x, exclude=("up", i))
                    xi = index_in_domain[x][i]
                    others = np.delete(base, xi)
                    best_other = others.max() if len(others) else -np.inf
                    s_choose_i = base[xi]
                    mask = allowed[(x, i)]
                    msg = np.where(
                        mask,
                        np.maximum(best_other, s_choose_i),
                        np.maximum(best_other, s_choose_i - self.penalty))
                    msg = msg - msg.max()
                    new_messages[("down", x, i)] = msg

                    # Message from advisor i to advisee x over y_x.
                    base_i = node_belief(i, exclude=("down", x))
                    best_all = base_i.max()
                    allowed_scores = base_i[mask]
                    best_allowed = (allowed_scores.max()
                                    if len(allowed_scores) else
                                    best_all - self.penalty)
                    msg_up = np.full(len(domain[x]), best_all)
                    msg_up[xi] = max(best_allowed, best_all - self.penalty)
                    msg_up = msg_up - msg_up.max()
                    new_messages[("up", i, x)] = msg_up

            if tracer.active:
                # Max message change — the flooding-schedule residual.
                delta = 0.0
                for key, value in new_messages.items():
                    old = messages[key]
                    if old.size:
                        step = float(np.max(np.abs(value - old)))
                        if step > delta:
                            delta = step
                tracer.record(residual=delta)
            else:
                tracer.record()

            if self.damping > 0:
                for key, value in new_messages.items():
                    messages[key] = (self.damping * messages[key]
                                     + (1 - self.damping) * value)
            else:
                messages.update(new_messages)
            if checkpoint is not None:
                checkpoint.maybe_save(iteration, lambda: {  # noqa: E731
                    "iteration": iteration, "messages": dict(messages)})
        tracer.finish("max_iter")

        ranking: Dict[str, List[Tuple[str, float]]] = {}
        for a in authors:
            belief = node_belief(a)
            belief = belief - belief.max()
            probs = np.exp(belief)
            probs = probs / max(probs.sum(), EPS)
            pairs = sorted(
                ((c.advisor, float(p)) for c, p in zip(domain[a], probs)),
                key=lambda pair: (-pair[1], pair[0]))
            ranking[a] = pairs
        return TPFGResult(ranking=ranking)
