"""Pair features for supervised hierarchical relation learning (Section 6.2.2).

Each candidate (advisee x, advisor i) pair is described by semantic
signals computed from the temporal collaboration network — the same
quantities TPFG's preprocessing uses, exposed individually so a learned
model can weight them (the unified potential-function design of the
supervised setting).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .collab import CollaborationNetwork
from .preprocess import Candidate, imbalance_ratio, kulczynski

#: Human-readable names, aligned with the vector from pair_features.
FEATURE_NAMES: List[str] = [
    "local_likelihood",
    "kulczynski_avg",
    "imbalance_avg",
    "joint_papers",
    "collaboration_years",
    "seniority_gap",
    "advisee_career_at_start",
    "joint_fraction_of_advisee",
    "is_virtual_root",
]


def pair_features(network: CollaborationNetwork,
                  candidate: Candidate) -> np.ndarray:
    """Feature vector for one candidate relation.

    The virtual-root option gets a dedicated indicator and zeros
    elsewhere, letting the model learn the no-advisor prior.
    """
    if candidate.advisor == "":
        features = np.zeros(len(FEATURE_NAMES))
        features[-1] = 1.0
        return features

    series_x = network.series_of(candidate.advisee)
    series_i = network.series_of(candidate.advisor)
    pair = network.pair(candidate.advisee, candidate.advisor)
    years = pair.years() if pair is not None else []
    window = [y for y in years if candidate.start <= y <= candidate.end] \
        or years

    if pair is not None and window:
        kulc_avg = float(np.mean([
            kulczynski(pair, series_x, series_i, y) for y in window]))
        ir_avg = float(np.mean([
            imbalance_ratio(pair, series_x, series_i, y) for y in window]))
        joint = pair.total()
    else:
        kulc_avg, ir_avg, joint = 0.0, 0.0, 0

    first_x = series_x.first_year or 0
    first_i = series_i.first_year or 0
    advisee_papers_in_window = sum(
        c for y, c in series_x.counts.items()
        if candidate.start <= y <= candidate.end)
    joint_in_window = sum(
        c for y, c in (pair.counts.items() if pair else [])
        if candidate.start <= y <= candidate.end)
    joint_fraction = (joint_in_window / advisee_papers_in_window
                      if advisee_papers_in_window else 0.0)

    return np.array([
        candidate.likelihood,
        kulc_avg,
        ir_avg,
        float(joint),
        float(len(years)),
        float(first_x - first_i),
        float(candidate.start - first_x),
        joint_fraction,
        0.0,
    ])


class FeatureScaler:
    """Per-feature standardization fitted on training pairs."""

    def __init__(self) -> None:
        self.mean_: np.ndarray = np.zeros(len(FEATURE_NAMES))
        self.std_: np.ndarray = np.ones(len(FEATURE_NAMES))

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Estimate per-feature mean and standard deviation."""
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardize ``features`` with the fitted statistics."""
        return (features - self.mean_) / self.std_
