"""Baselines for advisor–advisee mining (Section 6.1.6).

* :class:`RuleBaseline` — the heuristic RULE method: among earlier-starting
  coauthors, pick the one with the most joint papers in the advisee's
  early career.
* :class:`IndMaxBaseline` — independent local optimum: every author picks
  the candidate with maximal local likelihood, ignoring the structural
  time constraints (this is exactly TPFG without message passing).
* :class:`SupervisedPairClassifier` — a feature-based discriminative
  classifier (logistic regression trained from scratch), the stand-in for
  the SVM baseline of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..utils import EPS, RandomState, ensure_rng
from .collab import CollaborationNetwork
from .features import FeatureScaler, pair_features
from .preprocess import CandidateGraph
from .tpfg import ROOT, TPFGResult


class RuleBaseline:
    """Heuristic advisor choice from early-career collaboration volume.

    Args:
        early_years: how many years of the advisee's career count as
            "early"; the coauthor (with a strictly earlier first
            publication) with the most joint papers in that window wins.
    """

    def __init__(self, early_years: int = 3) -> None:
        self.early_years = early_years

    def predict(self, network: CollaborationNetwork,
                ) -> Dict[str, Optional[str]]:
        """Predicted advisor (or ranking) per author."""
        predictions: Dict[str, Optional[str]] = {}
        for author in network.authors:
            first = network.series_of(author).first_year
            if first is None:
                predictions[author] = None
                continue
            cutoff = first + self.early_years - 1
            best_name, best_count = None, 0
            for coauthor in network.coauthors(author):
                other_first = network.series_of(coauthor).first_year
                if other_first is None or other_first >= first:
                    continue
                pair = network.pair(author, coauthor)
                early = sum(c for y, c in pair.counts.items() if y <= cutoff)
                if early > best_count:
                    best_name, best_count = coauthor, early
            predictions[author] = best_name
        return predictions


class IndMaxBaseline:
    """Independently pick each author's max-likelihood candidate."""

    def predict(self, graph: CandidateGraph) -> TPFGResult:
        """Predicted advisor (or ranking) per author."""
        ranking: Dict[str, List[Tuple[str, float]]] = {}
        for author in graph.authors:
            pairs = sorted(
                ((c.advisor, c.likelihood) for c in graph.advisors_of(author)),
                key=lambda pair: (-pair[1], pair[0]))
            ranking[author] = pairs
        return TPFGResult(ranking=ranking)


@dataclass
class _TrainingSet:
    features: np.ndarray
    labels: np.ndarray


class SupervisedPairClassifier:
    """Logistic regression over candidate-pair features.

    Trained on labeled pairs (positive: the true advisor; negative: the
    other candidates of the same advisee), predicts per-author by taking
    the highest-probability candidate above ``threshold``.

    Args:
        learning_rate / epochs / l2: plain batch gradient descent knobs.
        threshold: minimum positive-class probability to predict a real
            advisor at all.
    """

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300,
                 l2: float = 1e-3, threshold: float = 0.5,
                 seed: RandomState = None) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.threshold = threshold
        self._rng = ensure_rng(seed)
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self.scaler_ = FeatureScaler()

    def fit(self, network: CollaborationNetwork, graph: CandidateGraph,
            labeled_advisees: Dict[str, Optional[str]],
            ) -> "SupervisedPairClassifier":
        """Train on the candidates of ``labeled_advisees``.

        ``labeled_advisees[x]`` is x's true advisor name or None.
        """
        rows, labels = [], []
        for advisee, true_advisor in labeled_advisees.items():
            for candidate in graph.advisors_of(advisee):
                if candidate.advisor == ROOT:
                    continue
                rows.append(pair_features(network, candidate))
                labels.append(1.0 if candidate.advisor == true_advisor
                              else 0.0)
        if not rows:
            self.weights_ = np.zeros(len(pair_features(
                network, graph.advisors_of(graph.authors[0])[0])))
            return self
        features = np.array(rows)
        target = np.array(labels)
        self.scaler_.fit(features)
        scaled = self.scaler_.transform(features)

        weights = np.zeros(scaled.shape[1])
        bias = 0.0
        for _ in range(self.epochs):
            logits = scaled @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            gradient_w = scaled.T @ (probs - target) / len(target) \
                + self.l2 * weights
            gradient_b = float((probs - target).mean())
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
        self.weights_ = weights
        self.bias_ = bias
        return self

    def predict(self, network: CollaborationNetwork,
                graph: CandidateGraph) -> TPFGResult:
        """Score every candidate and rank per author."""
        ranking: Dict[str, List[Tuple[str, float]]] = {}
        for author in graph.authors:
            pairs: List[Tuple[str, float]] = []
            for candidate in graph.advisors_of(author):
                if candidate.advisor == ROOT:
                    pairs.append((ROOT, self.threshold))
                    continue
                scaled = self.scaler_.transform(
                    pair_features(network, candidate)[None, :])
                logit = float((scaled @ self.weights_)[0] + self.bias_)
                prob = 1.0 / (1.0 + np.exp(-logit))
                pairs.append((candidate.advisor, prob))
            total = sum(p for _, p in pairs)
            pairs = [(name, p / max(total, EPS)) for name, p in pairs]
            pairs.sort(key=lambda pair: (-pair[1], pair[0]))
            ranking[author] = pairs
        return TPFGResult(ranking=ranking)
