"""Evaluation metrics for hierarchical relation mining (Section 6.1.6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .tpfg import TPFGResult


@dataclass
class RelationAccuracy:
    """Accuracy breakdown for advisor predictions.

    Attributes:
        accuracy: overall fraction of authors predicted correctly
            (matching advisor, or correctly predicted to have none).
        advisee_accuracy: accuracy restricted to authors that truly have
            an advisor in the data — the headline number of Section 6.1.6.
        num_advisees / num_roots: evaluation set sizes.
    """

    accuracy: float
    advisee_accuracy: float
    root_accuracy: float
    num_advisees: int
    num_roots: int


def evaluate_predictions(predictions: Mapping[str, Optional[str]],
                         truth: Mapping[str, Optional[str]],
                         ) -> RelationAccuracy:
    """Compare predicted advisors against ground truth.

    ``truth`` maps every evaluated author to their advisor name or None
    (forest roots).  Authors absent from ``predictions`` count as a None
    prediction.
    """
    advisee_total = advisee_correct = 0
    root_total = root_correct = 0
    for author, true_advisor in truth.items():
        predicted = predictions.get(author)
        if true_advisor is None:
            root_total += 1
            if predicted is None:
                root_correct += 1
        else:
            advisee_total += 1
            if predicted == true_advisor:
                advisee_correct += 1
    total = advisee_total + root_total
    correct = advisee_correct + root_correct
    return RelationAccuracy(
        accuracy=correct / total if total else 0.0,
        advisee_accuracy=advisee_correct / advisee_total
        if advisee_total else 0.0,
        root_accuracy=root_correct / root_total if root_total else 0.0,
        num_advisees=advisee_total,
        num_roots=root_total)


def precision_at(result: TPFGResult,
                 truth: Mapping[str, Optional[str]],
                 top_k: int = 1,
                 theta: float = 0.5) -> RelationAccuracy:
    """P@(k, theta) of Section 6.1.1 against the ground truth.

    A true advisor counts as found when it appears in the top-k ranked
    candidates with score above the root score or ``theta``.
    """
    predictions: Dict[str, Optional[str]] = {}
    for author in truth:
        predicted = result.predicted_advisor(author, top_k=top_k,
                                             theta=theta)
        true_advisor = truth[author]
        if true_advisor is not None and predicted != true_advisor:
            # Within top-k semantics: the relation is found if the true
            # advisor is anywhere in the top-k above the acceptance bar.
            ranked = result.ranking.get(author, [])[:top_k]
            root_score = result.score(author, "")
            for name, score in ranked:
                if name == true_advisor and (score > root_score
                                             or score > theta):
                    predicted = true_advisor
                    break
        predictions[author] = predicted
    return evaluate_predictions(predictions, truth)
