"""Phrase and entity decoration of a topical hierarchy (Chapters 3-4).

After CATHY/CATHYHIN builds a hierarchy, each topic is visualized with a
ranked phrase list.  Topical frequency flows down the tree by Definition 3
and Eq. 4.3: a phrase's frequency at a topic splits among the children in
proportion to ``rho_z * prod_v phi_z(v)``.  Within each topic, phrases are
ranked by pointwise KL popularity x purity against the parent (Eq. 4.9),
after a completeness filter (Eq. 4.2).

:func:`compute_topic_phrase_frequencies` exposes the per-topic frequency
tables directly; entity role analysis (Chapter 5) builds on them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..corpus import Corpus
from ..hierarchy import Topic, TopicalHierarchy
from ..network import TERM_TYPE
from ..obs import timed
from ..utils import EPS
from .frequent import Phrase, PhraseCounts, mine_frequent_phrases
from .kert import completeness_scores
from .ranking import render_phrase

TopicPhraseFrequencies = Dict[str, Dict[Phrase, float]]


def compute_topic_phrase_frequencies(hierarchy: TopicalHierarchy,
                                     corpus: Corpus,
                                     counts: Optional[PhraseCounts] = None,
                                     min_support: int = 5,
                                     max_phrase_length: int = 6,
                                     min_topical_frequency: float = 2.0,
                                     gamma: float = 0.5,
                                     max_phrase_tokens: Optional[int] = None,
                                     ) -> Tuple[TopicPhraseFrequencies,
                                                PhraseCounts]:
    """f_t(P) for every topic of the hierarchy (Definition 3 / Eq. 4.3).

    Returns (frequencies keyed by topic notation, the phrase counts used).
    Phrases failing the completeness filter (Eq. 4.2, threshold ``gamma``)
    are excluded at the root and therefore everywhere.
    """
    if counts is None:
        counts = mine_frequent_phrases(corpus, min_support=min_support,
                                       max_length=max_phrase_length)
    complete = completeness_scores(counts)
    root_freq: Dict[Phrase, float] = {
        p: float(c) for p, c in counts.counts.items()
        if complete.get(p, 1.0) > gamma
        and (max_phrase_tokens is None or len(p) <= max_phrase_tokens)}

    table: TopicPhraseFrequencies = {}

    def descend(topic: Topic, freq: Dict[Phrase, float]) -> None:
        table[topic.notation] = freq
        if not topic.children:
            return
        child_freqs = split_frequencies(topic, freq, corpus)
        for child, child_freq in zip(topic.children, child_freqs):
            kept = {p: f for p, f in child_freq.items()
                    if f >= min_topical_frequency}
            descend(child, kept)

    descend(hierarchy.root, root_freq)
    return table, counts


def split_frequencies(topic: Topic, freq: Dict[Phrase, float],
                      corpus: Corpus) -> List[Dict[Phrase, float]]:
    """Eq. 4.3: split each phrase's topic-t frequency among the children."""
    children = topic.children
    rhos = np.array([max(child.rho, EPS) for child in children])
    child_freqs: List[Dict[Phrase, float]] = [{} for _ in children]
    for phrase, f in freq.items():
        words = [corpus.vocabulary.word_of(w) for w in phrase]
        log_scores = np.log(rhos)
        for word in words:
            probs = np.array([
                child.phi.get(TERM_TYPE, {}).get(word, EPS)
                for child in children])
            log_scores = log_scores + np.log(np.maximum(probs, EPS))
        log_scores -= log_scores.max()
        scores = np.exp(log_scores)
        total = scores.sum()
        if total <= 0:
            continue
        shares = f * scores / total
        for z, share in enumerate(shares):
            if share > 0:
                child_freqs[z][phrase] = float(share)
    return child_freqs


def phrase_rank_score(phrase_freq: float, topic_total: float,
                      parent_freq: float, parent_total: float) -> float:
    """r_t(P) of Eq. 4.9: pointwise KL of p(P|t) against p(P|parent)."""
    p_t = phrase_freq / max(topic_total, EPS)
    p_parent = parent_freq / max(parent_total, EPS)
    return p_t * float(np.log(max(p_t, EPS) / max(p_parent, EPS)))


def attach_phrases(hierarchy: TopicalHierarchy,
                   corpus: Corpus,
                   counts: Optional[PhraseCounts] = None,
                   min_support: int = 5,
                   max_phrase_length: int = 6,
                   min_topical_frequency: float = 2.0,
                   gamma: float = 0.5,
                   top_k: int = 20,
                   max_phrase_tokens: Optional[int] = None) -> PhraseCounts:
    """Populate ``topic.phrases`` for every topic of ``hierarchy``.

    Args:
        counts: pre-mined frequent phrases (mined here when omitted).
        min_topical_frequency: phrases whose estimated frequency at a
            topic falls below this are dropped from that subtree.
        gamma: completeness filter threshold (Eq. 4.6).
        max_phrase_tokens: restrict phrase length (1 reproduces the
            unigram-only CATHY1/CATHYHIN1 variants of Table 3.5).

    Returns:
        The phrase counts used (for reuse by role analysis).
    """
    with timed("phrases.topical_frequency"):
        table, counts = compute_topic_phrase_frequencies(
            hierarchy, corpus, counts=counts, min_support=min_support,
            max_phrase_length=max_phrase_length,
            min_topical_frequency=min_topical_frequency, gamma=gamma,
            max_phrase_tokens=max_phrase_tokens)

    with timed("phrases.ranking"):
        _rank_topics(hierarchy, corpus, table, top_k)
    return counts


def _rank_topics(hierarchy: TopicalHierarchy, corpus: Corpus,
                 table: TopicPhraseFrequencies, top_k: int) -> None:
    for topic in hierarchy.topics():
        freq = table.get(topic.notation, {})
        total = max(sum(freq.values()), EPS)
        scored: List[Tuple[Phrase, float]] = []
        if topic.path == ():
            # Root: rank by popularity alone (no contrastive parent).
            scored = [(p, f / total) for p, f in freq.items()]
        else:
            parent_notation = hierarchy.parent_of(topic).notation
            parent_freq = table.get(parent_notation, {})
            parent_total = max(sum(parent_freq.values()), EPS)
            for phrase, f in freq.items():
                score = phrase_rank_score(f, total,
                                          parent_freq.get(phrase, 0.0),
                                          parent_total)
                if score > 0:
                    scored.append((phrase, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        topic.phrases = [(render_phrase(p, corpus.vocabulary), s)
                         for p, s in scored[:top_k]]


def attach_entity_rankings(hierarchy: TopicalHierarchy,
                           entity_types: Optional[List[str]] = None,
                           top_k: int = 20) -> None:
    """Populate ``topic.entity_ranks`` from the fitted phi distributions.

    CATHYHIN already ranks every node type per topic (Section 3.2.1);
    this just materializes ordered lists for the requested entity types.
    """
    for topic in hierarchy.topics():
        types = entity_types
        if types is None:
            types = [t for t in topic.phi if t != TERM_TYPE]
        for etype in types:
            dist = topic.phi.get(etype, {})
            ranked = sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))
            topic.entity_ranks[etype] = [(name, float(p))
                                         for name, p in ranked[:top_k]]
