"""Topical phrase mining: KERT and ToPMine (Chapter 4)."""

from .frequent import (Phrase, PhraseCounts, mine_frequent_phrases,
                       mine_frequent_phrases_from_chunks)
from .hierarchy_ranking import (attach_entity_rankings, attach_phrases,
                                compute_topic_phrase_frequencies,
                                phrase_rank_score, split_frequencies)
from .itemsets import (canonical_orders, itemsets_as_phrase_counts,
                       mine_frequent_itemsets)
from .kert import KERT, KERTConfig, TopicalPhraseScores, completeness_scores
from .ranking import (FlatTopicModel, document_phrase_instances,
                      phrase_topic_posterior, render_phrase,
                      term_model_from_hin, topical_frequencies)
from .segmentation import (partition_is_valid, segment_chunk,
                           segment_corpus, segment_document)
from .significance import (MergeScorer, make_merge_scorer,
                           merge_significance, phrase_significance)
from .topmine import ToPMine, ToPMineConfig, ToPMineResult

__all__ = [
    "Phrase",
    "PhraseCounts",
    "mine_frequent_phrases",
    "mine_frequent_phrases_from_chunks",
    "mine_frequent_itemsets",
    "itemsets_as_phrase_counts",
    "canonical_orders",
    "KERT",
    "KERTConfig",
    "TopicalPhraseScores",
    "completeness_scores",
    "ToPMine",
    "ToPMineConfig",
    "ToPMineResult",
    "FlatTopicModel",
    "term_model_from_hin",
    "topical_frequencies",
    "phrase_topic_posterior",
    "document_phrase_instances",
    "render_phrase",
    "segment_chunk",
    "segment_document",
    "segment_corpus",
    "partition_is_valid",
    "MergeScorer",
    "make_merge_scorer",
    "merge_significance",
    "phrase_significance",
    "attach_phrases",
    "attach_entity_rankings",
    "compute_topic_phrase_frequencies",
    "phrase_rank_score",
    "split_frequencies",
]
