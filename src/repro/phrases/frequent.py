"""Frequent contiguous phrase mining (Algorithm 1, Section 4.3.1).

Collects aggregate counts of all contiguous token sequences that meet a
minimum support threshold, using two prunings:

* *position-based Apriori* (downward closure): a position stays active at
  length n only if the length-(n-1) phrase starting there is frequent;
* *data antimonotonicity*: a chunk with no active positions is dropped
  from further consideration.

Chunks (text between phrase-invariant punctuation) are processed
independently, so phrases never cross punctuation, and the worst case per
chunk is quadratic in the (small) chunk length — linear overall.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..corpus import Corpus
from ..errors import ConfigurationError
from ..obs import inc, timed

Phrase = Tuple[int, ...]

#: Default capacity of the per-instance merge-significance LRU cache.
MERGE_CACHE_CAPACITY = 1 << 18


class PhraseCounts:
    """Frequent-phrase counts plus the corpus constants rankers need.

    Attributes:
        counts: mapping from phrase (tuple of token ids) to its frequency;
            contains every phrase of length >= 1 meeting ``min_support``.
        min_support: the threshold used while mining.
        num_documents: N, the number of documents in the corpus.
        num_tokens: L, the total token count of the corpus.
        merge_cache: LRU memo for :func:`~repro.phrases.significance.
            merge_significance` — adjacent phrase pairs repeat heavily
            across a corpus, so segmentation hits it constantly.  It is
            derived state: dropped when pickling (cheap worker shipping)
            and rebuilt lazily in each process.
    """

    def __init__(self, counts: Dict[Phrase, int], min_support: int,
                 num_documents: int, num_tokens: int,
                 merge_cache_capacity: int = MERGE_CACHE_CAPACITY) -> None:
        self.counts = counts
        self.min_support = min_support
        self.num_documents = num_documents
        self.num_tokens = num_tokens
        self.merge_cache_capacity = merge_cache_capacity
        self.merge_cache: "OrderedDict[Tuple[Phrase, Phrase], float]" = \
            OrderedDict()

    def __getstate__(self) -> dict:
        """Pickle without the (re-derivable) significance cache."""
        state = self.__dict__.copy()
        state["merge_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.merge_cache = OrderedDict()

    def frequency(self, phrase: Sequence[int]) -> int:
        """f(P): the mined count of ``phrase`` (0 when infrequent)."""
        return self.counts.get(tuple(phrase), 0)

    def phrases(self, min_length: int = 1,
                max_length: int = 10**9) -> List[Phrase]:
        """All frequent phrases with length in [min_length, max_length]."""
        return [p for p in self.counts
                if min_length <= len(p) <= max_length]

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, phrase: Sequence[int]) -> bool:
        return tuple(phrase) in self.counts


def mine_frequent_phrases(corpus: Corpus,
                          min_support: int = 5,
                          max_length: int = 6,
                          merge_cache_capacity: int = MERGE_CACHE_CAPACITY,
                          ) -> PhraseCounts:
    """Run Algorithm 1 over ``corpus``.

    Args:
        corpus: tokenized corpus; each document's chunks are mined
            independently, counts aggregate corpus-wide.
        min_support: mu, the minimum frequency for a phrase to be kept.
        max_length: safety cap on phrase length (the algorithm terminates
            naturally well before this on real text).
        merge_cache_capacity: LRU bound of the merge-significance memo
            carried by the returned counts.
    """
    if min_support < 1:
        raise ConfigurationError("min_support must be >= 1")
    chunks: List[List[int]] = [list(chunk) for doc in corpus
                               for chunk in doc.chunks if chunk]
    return mine_frequent_phrases_from_chunks(
        chunks, min_support=min_support, max_length=max_length,
        num_documents=len(corpus), num_tokens=corpus.num_tokens,
        merge_cache_capacity=merge_cache_capacity)


def mine_frequent_phrases_from_chunks(chunks: Sequence[Sequence[int]],
                                      min_support: int,
                                      max_length: int = 6,
                                      num_documents: int = 0,
                                      num_tokens: int = 0,
                                      merge_cache_capacity: int =
                                      MERGE_CACHE_CAPACITY) -> PhraseCounts:
    """Algorithm 1 on raw token-id chunks (corpus-free entry point)."""
    with timed("topmine.frequent_mining"):
        counts = _mine_chunks(chunks, min_support, max_length)
    inc("topmine.frequent_phrases", len(counts))
    return PhraseCounts(counts=counts, min_support=min_support,
                        num_documents=num_documents, num_tokens=num_tokens,
                        merge_cache_capacity=merge_cache_capacity)


def _mine_chunks(chunks: Sequence[Sequence[int]], min_support: int,
                 max_length: int) -> Dict[Phrase, int]:
    counts: Dict[Phrase, int] = {}

    # Length-1 counts.
    for chunk in chunks:
        for tok in chunk:
            key = (tok,)
            counts[key] = counts.get(key, 0) + 1
    counts = {p: c for p, c in counts.items() if c >= min_support}

    # Active indices per chunk: positions whose length-(n-1) phrase is
    # frequent.  Start with positions whose unigram is frequent.
    active: List[Tuple[Sequence[int], List[int]]] = []
    for chunk in chunks:
        indices = [i for i, tok in enumerate(chunk) if (tok,) in counts]
        if indices:
            active.append((chunk, indices))

    length = 2
    while active and length <= max_length:
        new_counts: Dict[Phrase, int] = {}
        still_active: List[Tuple[Sequence[int], List[int]]] = []
        for chunk, indices in active:
            # Keep positions whose length-(n-1) phrase is frequent.
            kept = [i for i in indices
                    if i + length - 1 <= len(chunk)
                    and tuple(chunk[i:i + length - 1]) in counts]
            # The last kept position cannot start a length-n phrase.
            kept = [i for i in kept if i + length <= len(chunk)]
            if not kept:
                continue  # data antimonotonicity: drop this chunk
            kept_set = set(kept)
            counted = []
            for i in kept:
                # Count w_i..w_{i+n-1} only when the suffix start i+1 was
                # also viable (Apriori on both the prefix and the suffix).
                if i + 1 in kept_set or tuple(
                        chunk[i + 1:i + length]) in counts:
                    phrase = tuple(chunk[i:i + length])
                    new_counts[phrase] = new_counts.get(phrase, 0) + 1
                    counted.append(i)
            if counted:
                still_active.append((chunk, counted))
        frequent = {p: c for p, c in new_counts.items() if c >= min_support}
        if not frequent:
            break
        counts.update(frequent)
        # Restrict active positions to those whose length-n phrase is
        # frequent, for the next round.
        active = []
        for chunk, indices in still_active:
            kept = [i for i in indices
                    if tuple(chunk[i:i + length]) in frequent]
            if kept:
                active.append((chunk, kept))
        length += 1

    return counts
