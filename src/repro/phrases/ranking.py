"""Topical frequency estimation shared by KERT and ToPMine.

Definition 3 splits a phrase's frequency among subtopics; Eq. 4.3 / 4.8
estimate the split from a fitted topic model: the share of subtopic z is
proportional to ``rho_z * prod_i phi_z(v_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..corpus import Corpus, Vocabulary
from ..errors import ConfigurationError
from ..utils import EPS
from .frequent import Phrase, PhraseCounts


@dataclass
class FlatTopicModel:
    """A flat topic model in array form: shared currency across methods.

    Attributes:
        rho: topic proportions, shape (k,).
        phi: topic-word distributions, shape (k, V); rows sum to one.
    """

    rho: np.ndarray
    phi: np.ndarray

    def __post_init__(self) -> None:
        self.rho = np.asarray(self.rho, dtype=float)
        self.phi = np.asarray(self.phi, dtype=float)
        if self.phi.ndim != 2 or len(self.rho) != self.phi.shape[0]:
            raise ConfigurationError("rho length must match phi rows")

    @property
    def num_topics(self) -> int:
        """Number of topics k."""
        return self.phi.shape[0]

    @property
    def vocab_size(self) -> int:
        """Vocabulary size V."""
        return self.phi.shape[1]


def term_model_from_hin(hin_model, vocabulary: Vocabulary,
                        node_type: str = "term") -> FlatTopicModel:
    """Convert a fitted CATHYHIN model's term distributions to array form.

    Words absent from the network (filtered by min_count or isolated)
    receive probability ~0.
    """
    k = hin_model.num_topics
    phi = np.full((k, len(vocabulary)), EPS)
    names = hin_model.node_names.get(node_type, [])
    for idx, name in enumerate(names):
        if name in vocabulary:
            word_id = vocabulary.id_of(name)
            phi[:, word_id] = np.maximum(hin_model.phi[node_type][:, idx], EPS)
    phi /= phi.sum(axis=1, keepdims=True)
    rho = np.asarray(hin_model.rho, dtype=float)
    rho = rho / max(rho.sum(), EPS)
    return FlatTopicModel(rho=rho, phi=phi)


def phrase_topic_posterior(phrase: Sequence[int],
                           model: FlatTopicModel) -> np.ndarray:
    """p(t | P): the subtopic split weights of Eq. 4.3, normalized."""
    phrase = tuple(phrase)
    log_scores = np.log(np.maximum(model.rho, EPS))
    for word in phrase:
        log_scores = log_scores + np.log(np.maximum(model.phi[:, word], EPS))
    log_scores -= log_scores.max()
    scores = np.exp(log_scores)
    total = scores.sum()
    if total <= 0:
        return np.full(model.num_topics, 1.0 / model.num_topics)
    return scores / total


def topical_frequencies(counts: PhraseCounts,
                        model: FlatTopicModel,
                        ) -> Dict[Phrase, np.ndarray]:
    """f_t(P) for every frequent phrase: total frequency split by Eq. 4.3."""
    result: Dict[Phrase, np.ndarray] = {}
    for phrase, frequency in counts.counts.items():
        result[phrase] = frequency * phrase_topic_posterior(phrase, model)
    return result


def document_phrase_instances(corpus: Corpus, counts: PhraseCounts,
                              max_length: int = 6,
                              ) -> List[List[Phrase]]:
    """Per document, all frequent-phrase instances (overlapping allowed).

    Used to decide which documents "contain at least one frequent topic-t
    phrase" for the N_t normalizer of Eq. 4.4.
    """
    instances: List[List[Phrase]] = []
    for doc in corpus:
        found: List[Phrase] = []
        for chunk in doc.chunks:
            n = len(chunk)
            for start in range(n):
                for stop in range(start + 1, min(start + max_length, n) + 1):
                    phrase = tuple(chunk[start:stop])
                    if phrase in counts:
                        found.append(phrase)
        instances.append(found)
    return instances


def render_phrase(phrase: Iterable[int], vocabulary: Vocabulary) -> str:
    """Token ids -> space-joined phrase string."""
    return " ".join(vocabulary.decode(list(phrase)))
