"""Bottom-up phrase construction / document segmentation (Algorithm 2).

Each document chunk starts as a sequence of single-token phrase
instances.  The pair of *adjacent* instances whose merge has the highest
significance (Eq. 4.7) is merged, repeatedly, until no candidate merge
reaches the threshold ``alpha``.  The surviving instances form a partition
of the document — its "bag of phrases" — which implicitly filters the
quadratic candidate set down to at most a linear number of true phrases.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..corpus import Corpus, Document
from ..obs import inc, timed
from ..parallel import pmap
from .frequent import PhraseCounts
from .significance import NEVER, MergeScorer, make_merge_scorer

Phrase = Tuple[int, ...]


def segment_chunk(chunk: Sequence[int],
                  counts: PhraseCounts,
                  alpha: float = 2.0,
                  scorer: Optional[MergeScorer] = None) -> List[Phrase]:
    """Partition one token chunk into phrases (Algorithm 2).

    Uses a max-heap of candidate adjacent merges keyed by significance;
    stale entries are skipped via a version counter per slot, giving the
    O(n log n)-per-chunk behaviour described in the paper.  Pass a
    pre-bound ``scorer`` (:func:`~repro.phrases.significance.
    make_merge_scorer`) to amortize its binding cost and metric flushes
    across many chunks; without one, a chunk-local scorer is created and
    flushed before returning.
    """
    phrases: List[Phrase] = [(tok,) for tok in chunk]
    if len(phrases) < 2:
        return phrases
    local_scorer = scorer is None
    if scorer is None:
        scorer = make_merge_scorer(counts)

    # Doubly linked list over slots; merging into the left slot.
    next_slot = list(range(1, len(phrases))) + [-1]
    prev_slot = [-1] + list(range(len(phrases) - 1))
    alive = [True] * len(phrases)
    version = [0] * len(phrases)

    heap: List[Tuple[float, int, int]] = []

    def push(slot: int) -> None:
        nslot = next_slot[slot]
        if nslot == -1:
            return
        sig = scorer(phrases[slot], phrases[nslot])
        if sig > NEVER:
            heapq.heappush(heap, (-sig, slot, version[slot]))

    for slot in range(len(phrases) - 1):
        push(slot)

    while heap:
        neg_sig, slot, ver = heapq.heappop(heap)
        if not alive[slot] or version[slot] != ver:
            continue
        if -neg_sig < alpha:
            break
        nslot = next_slot[slot]
        if nslot == -1 or not alive[nslot]:
            continue
        # Merge slot and nslot into slot.
        phrases[slot] = phrases[slot] + phrases[nslot]
        alive[nslot] = False
        next_slot[slot] = next_slot[nslot]
        if next_slot[slot] != -1:
            prev_slot[next_slot[slot]] = slot
        version[slot] += 1
        push(slot)
        pslot = prev_slot[slot]
        if pslot != -1 and alive[pslot]:
            version[pslot] += 1
            push(pslot)

    if local_scorer:
        scorer.flush()
    return [phrases[i] for i in range(len(phrases)) if alive[i]]


def segment_document(doc: Document,
                     counts: PhraseCounts,
                     alpha: float = 2.0,
                     scorer: Optional[MergeScorer] = None) -> List[Phrase]:
    """Segment every chunk of ``doc`` and concatenate the partitions."""
    local_scorer = scorer is None
    if scorer is None:
        scorer = make_merge_scorer(counts)
    result: List[Phrase] = []
    for chunk in doc.chunks:
        result.extend(segment_chunk(chunk, counts, alpha=alpha,
                                    scorer=scorer))
    if local_scorer:
        scorer.flush()
    return result


def _segment_task(shared, doc: Document) -> List[Phrase]:
    """Segment one document in a worker; ``shared`` is (counts, alpha)."""
    counts, alpha = shared
    return segment_document(doc, counts, alpha=alpha)


def segment_corpus(corpus: Corpus,
                   counts: PhraseCounts,
                   alpha: float = 2.0,
                   workers: Optional[int] = None) -> List[List[Phrase]]:
    """Bag-of-phrases partition for every document of ``corpus``.

    Documents are independent, so the corpus fans out in batches over
    :func:`repro.parallel.pmap`; ``counts`` ships once per worker (its
    significance cache is dropped on pickling and rebuilt locally).
    Segmentation is deterministic, so any worker count yields the exact
    serial partitions.
    """
    with timed("topmine.segmentation"):
        partitions = pmap(_segment_task, list(corpus), workers=workers,
                          shared=(counts, alpha),
                          label="topmine.segmentation")
    inc("topmine.segmented_documents", len(partitions))
    inc("topmine.phrase_instances",
        sum(len(partition) for partition in partitions))
    return partitions


def partition_is_valid(doc: Document, partition: List[Phrase]) -> bool:
    """Check the partition property: concatenation reproduces the document.

    This is Definition 4's invariant and is exercised by the property
    tests.
    """
    flattened = [tok for phrase in partition for tok in phrase]
    return flattened == doc.tokens
