"""ToPMine: phrase mining + segmentation + topical ranking (Section 4.3).

The three stages:

1. frequent contiguous phrase mining (Algorithm 1),
2. significance-guided bottom-up segmentation of every document into a
   bag of phrases (Algorithm 2),
3. phrase-constrained LDA over the bags, then topical phrase ranking by
   pointwise KL popularity x purity (Eq. 4.9) mixed with the phrase
   significance term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import ConfigurationError
from ..obs import span
from ..utils import EPS, RandomState, ensure_rng
from .frequent import (MERGE_CACHE_CAPACITY, Phrase, PhraseCounts,
                       mine_frequent_phrases)
from .ranking import FlatTopicModel, render_phrase
from .segmentation import segment_corpus
from .significance import make_merge_scorer, phrase_significance


@dataclass
class ToPMineConfig:
    """Knobs for :class:`ToPMine`.

    Attributes:
        num_topics: k for the phrase-constrained topic model.
        min_support: mu for frequent phrase mining.
        max_phrase_length: cap on mined phrase length.
        merge_threshold: alpha, the minimum merge significance
            (Algorithm 2 stops below it).
        omega: weight of the significance term in the final ranking
            ``(1-omega) * r_t(P) + omega * p(P|t) * log sig(P)``.
        lda_alpha / lda_beta / lda_iterations: PhraseLDA hyperparameters.
        merge_cache_capacity: LRU bound of the merge-significance memo
            (``topmine.merge_cache.{hits,misses}`` metrics track its
            effectiveness; run reports derive the hit ratio).
        workers: parallel workers for document segmentation; None defers
            to the process default / ``REPRO_WORKERS``
            (see :mod:`repro.parallel`).
    """

    num_topics: int = 5
    min_support: int = 5
    max_phrase_length: int = 6
    merge_threshold: float = 2.0
    omega: float = 0.5
    lda_alpha: float = 0.1
    lda_beta: float = 0.01
    lda_iterations: int = 100
    merge_cache_capacity: int = MERGE_CACHE_CAPACITY
    workers: Optional[int] = None


@dataclass
class ToPMineResult:
    """Everything ToPMine produces.

    Attributes:
        counts: mined frequent phrases.
        partitions: bag-of-phrases partition per document.
        model: the fitted phrase-constrained LDA in flat-array form.
        doc_topics: per-document topic mixture (D, k).
        rankings: per topic, ranked (phrase, score) pairs.
        phrase_topic_counts: c_P(t): per phrase, its topical count vector.
    """

    counts: PhraseCounts
    partitions: List[List[Phrase]]
    model: FlatTopicModel
    doc_topics: np.ndarray
    rankings: List[List[Tuple[Phrase, float]]] = field(default_factory=list)
    phrase_topic_counts: Dict[Phrase, np.ndarray] = field(default_factory=dict)

    def top_phrases(self, topic: int, k: int = 10,
                    corpus: Optional[Corpus] = None) -> List[str]:
        """Top-k phrases of a topic, rendered as strings when possible."""
        ranked = self.rankings[topic][:k]
        if corpus is None:
            return [" ".join(map(str, p)) for p, _ in ranked]
        return [render_phrase(p, corpus.vocabulary) for p, _ in ranked]


class ToPMine:
    """The full ToPMine pipeline."""

    def __init__(self, config: Optional[ToPMineConfig] = None,
                 seed: RandomState = None) -> None:
        self.config = config or ToPMineConfig()
        if self.config.num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        self._rng = ensure_rng(seed)

    def mine(self, corpus: Corpus) -> Tuple[PhraseCounts, List[List[Phrase]]]:
        """Stages 1-2 only: frequent phrases and document partitions."""
        counts = mine_frequent_phrases(
            corpus, min_support=self.config.min_support,
            max_length=self.config.max_phrase_length,
            merge_cache_capacity=self.config.merge_cache_capacity)
        partitions = segment_corpus(
            corpus, counts, alpha=self.config.merge_threshold,
            workers=self.config.workers)
        return counts, partitions

    def fit(self, corpus: Corpus, checkpoint_dir: Optional[str] = None,
            resume: bool = False) -> ToPMineResult:
        """Run all three stages.

        Args:
            corpus: the tokenized corpus.
            checkpoint_dir: when given, the Gibbs sampler persists its
                chain state there (mining and segmentation are
                deterministic re-runs, so only the sampler needs
                checkpoints); a resumed fit reproduces the uninterrupted
                one bit for bit.
            resume: continue from an existing sampler checkpoint.
        """
        from ..baselines.lda_gibbs import LDAGibbs
        from ..resilience import checkpoint_in

        config = self.config
        counts, partitions = self.mine(corpus)

        writer = checkpoint_in(
            checkpoint_dir, "lda_gibbs", "lda.gibbs",
            config={"num_topics": config.num_topics,
                    "alpha": config.lda_alpha, "beta": config.lda_beta,
                    "iterations": config.lda_iterations})
        sampler = LDAGibbs(num_topics=config.num_topics,
                           alpha=config.lda_alpha, beta=config.lda_beta,
                           iterations=config.lda_iterations, seed=self._rng,
                           checkpoint=writer, resume=resume)
        docs = [doc.tokens for doc in corpus]
        with span("topmine.lda"):
            lda = sampler.fit(docs, vocab_size=len(corpus.vocabulary),
                              partitions=partitions)
        model = lda.to_flat()

        with span("topmine.ranking"):
            phrase_topic_counts = self._phrase_topic_counts(
                partitions, model, lda.theta)
            rankings = self._rank(phrase_topic_counts, counts, model)
        return ToPMineResult(counts=counts, partitions=partitions,
                             model=model, doc_topics=lda.theta,
                             rankings=rankings,
                             phrase_topic_counts=phrase_topic_counts)

    # ------------------------------------------------------------- internals
    @staticmethod
    def _phrase_topic_counts(partitions: List[List[Phrase]],
                             model: FlatTopicModel,
                             theta: np.ndarray) -> Dict[Phrase, np.ndarray]:
        """c_P(t): topical count of each phrase instance (Eq. 4.8).

        Each instance contributes its posterior topic distribution
        p(t | P, d) proportional to theta[d, t] * prod_w phi[t, w] —
        smoother than raw single-sample Gibbs assignments.
        """
        counts: Dict[Phrase, np.ndarray] = {}
        log_phi = np.log(np.maximum(model.phi, EPS))
        log_theta = np.log(np.maximum(theta, EPS))
        for d, doc_partition in enumerate(partitions):
            for phrase in doc_partition:
                log_post = log_theta[d] + log_phi[:, list(phrase)].sum(axis=1)
                log_post -= log_post.max()
                post = np.exp(log_post)
                post /= max(post.sum(), EPS)
                vec = counts.get(phrase)
                if vec is None:
                    vec = np.zeros(model.num_topics)
                    counts[phrase] = vec
                vec += post
        return counts

    def _rank(self, phrase_topic_counts: Dict[Phrase, np.ndarray],
              counts: PhraseCounts,
              model: FlatTopicModel) -> List[List[Tuple[Phrase, float]]]:
        """Eq. 4.9 ranking with the significance mixing term.

        For flat topics the parent is the root, so the purity contrast
        p(P | pi_t) is the phrase's overall relative frequency.
        """
        config = self.config
        k = model.num_topics
        column_totals = np.zeros(k)
        overall_total = 0.0
        for vec in phrase_topic_counts.values():
            column_totals += vec
            overall_total += vec.sum()
        column_totals = np.maximum(column_totals, EPS)
        overall_total = max(overall_total, EPS)

        scorer = make_merge_scorer(counts)
        rankings: List[List[Tuple[Phrase, float]]] = []
        for t in range(k):
            scored = []
            for phrase, vec in phrase_topic_counts.items():
                if vec[t] < 1:
                    continue
                p_t = vec[t] / column_totals[t]
                p_parent = vec.sum() / overall_total
                r = p_t * float(np.log(max(p_t, EPS) / max(p_parent, EPS)))
                sig = phrase_significance(counts, phrase, scorer=scorer)
                sig_term = p_t * float(np.log(max(sig, 1.0)))
                score = (1 - config.omega) * r + config.omega * sig_term
                if score > 0:
                    scored.append((phrase, score))
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            rankings.append(scored)
        scorer.flush()
        return rankings
