"""Merging significance score (Eq. 4.7, Section 4.3.2).

Under the null hypothesis that the corpus is a stream of independent
Bernoulli trials, the count of the concatenation P1 (+) P2 is
approximately normal with mean ``L * p(P1) * p(P2)``; the significance of
a merge is the number of (sample-estimated) standard deviations the
observed count sits above that mean.  Treating each already-merged phrase
as a single constituent is what defuses the "free-rider" problem.
"""

from __future__ import annotations

from math import sqrt
from typing import Sequence, Tuple

from ..obs import inc
from .frequent import Phrase, PhraseCounts

#: Significance assigned to merges whose result was never frequent.
NEVER = float("-inf")


class MergeScorer:
    """Bound fast path for scoring many merges against one ``counts``.

    :func:`merge_significance` pays per call for attribute lookups and
    two metric increments; the segmentation inner loop scores thousands
    of candidate merges per document, where those constants dominate.  A
    scorer binds the count dict, token total, and LRU cache into locals,
    tallies hits/misses in plain ints, and publishes them to the
    ``topmine.merge_cache.{hits,misses}`` metrics in one :func:`inc`
    pair on :meth:`flush`.  It shares the same cache (and therefore the
    same results) as the un-bound function.
    """

    __slots__ = ("_freq", "_num_tokens", "_cache", "_capacity",
                 "hits", "misses")

    def __init__(self, counts: PhraseCounts) -> None:
        self._freq = counts.counts
        self._num_tokens = max(counts.num_tokens, 1)
        self._cache = counts.merge_cache
        self._capacity = counts.merge_cache_capacity
        self.hits = 0
        self.misses = 0

    def __call__(self, left: Phrase, right: Phrase) -> float:
        """sig(P1, P2) of Eq. 4.7; ``left``/``right`` must be tuples."""
        key = (left, right)
        cache = self._cache
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        freq = self._freq
        observed = freq.get(left + right, 0)
        if observed <= 0:
            significance = NEVER
        else:
            # Bit-identical arithmetic to merge_significance (shared
            # cache entries must not depend on which path filled them).
            total_tokens = self._num_tokens
            p_left = freq.get(left, 0) / total_tokens
            p_right = freq.get(right, 0) / total_tokens
            expected = total_tokens * p_left * p_right
            significance = (observed - expected) / sqrt(observed)
        if cache is not None:
            cache[key] = significance
            if len(cache) > self._capacity:
                cache.popitem(last=False)
        return significance

    def flush(self) -> None:
        """Publish accumulated hit/miss tallies to the metric registry."""
        if self.hits:
            inc("topmine.merge_cache.hits", self.hits)
        if self.misses:
            inc("topmine.merge_cache.misses", self.misses)
        self.hits = 0
        self.misses = 0


def make_merge_scorer(counts: PhraseCounts) -> MergeScorer:
    """A :class:`MergeScorer` bound to ``counts`` (call ``flush()`` when
    done)."""
    return MergeScorer(counts)


def merge_significance(counts: PhraseCounts,
                       left: Sequence[int],
                       right: Sequence[int]) -> float:
    """sig(P1, P2) of Eq. 4.7 for merging ``left`` and ``right``.

    Returns ``-inf`` when the concatenation is not a frequent phrase (its
    true count is below the mining support, so merging is never
    justified).

    The score depends only on the (left, right) pair, and adjacent
    unigram pairs repeat heavily across a corpus, so results are
    memoized in ``counts.merge_cache`` (LRU, bounded by
    ``counts.merge_cache_capacity``); hit/miss counts are exposed as
    the ``topmine.merge_cache.hits`` / ``.misses`` metrics.
    """
    key = (tuple(left), tuple(right))
    cache = counts.merge_cache
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            inc("topmine.merge_cache.hits")
            return cached
        inc("topmine.merge_cache.misses")
    merged = key[0] + key[1]
    observed = counts.frequency(merged)
    if observed <= 0:
        significance = NEVER
    else:
        total_tokens = max(counts.num_tokens, 1)
        p_left = counts.frequency(left) / total_tokens
        p_right = counts.frequency(right) / total_tokens
        expected = total_tokens * p_left * p_right
        significance = (observed - expected) / sqrt(observed)
    if cache is not None:
        cache[key] = significance
        if len(cache) > counts.merge_cache_capacity:
            cache.popitem(last=False)
    return significance


def phrase_significance(counts: PhraseCounts,
                        phrase: Sequence[int],
                        scorer: "MergeScorer | None" = None) -> float:
    """Significance of a whole phrase: its best binary split.

    Used by the final ToPMine ranking term ``p(P|t) * log sig(P)``
    (Section 4.3.3).  Unigrams have no split; they get significance 1 so
    ``log sig`` contributes zero.  Pass a pre-bound ``scorer`` when
    calling in a loop (the caller then owns its ``flush()``).
    """
    phrase = tuple(phrase)
    if len(phrase) < 2:
        return 1.0
    best = NEVER
    for cut in range(1, len(phrase)):
        if scorer is not None:
            score = scorer(phrase[:cut], phrase[cut:])
        else:
            score = merge_significance(counts, phrase[:cut], phrase[cut:])
        if score > best:
            best = score
    return best
