"""Frequent word-set (itemset) mining for short documents.

The original KERT formulation (Section 4.2) mines frequent *patterns* —
unordered word sets — from short, content-representative texts such as
paper titles, where word order carries little information.  This module
implements Apriori-style itemset mining over document word sets, an
alternative candidate source for KERT next to the contiguous phrase
miner of Algorithm 1.

Mined itemsets are canonicalized by each set's most frequent surface
order in the corpus, so downstream ranking and rendering can treat them
exactly like contiguous phrases.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Tuple

from ..corpus import Corpus
from ..errors import ConfigurationError
from .frequent import Phrase, PhraseCounts

Itemset = FrozenSet[int]


def mine_frequent_itemsets(corpus: Corpus,
                           min_support: int = 5,
                           max_size: int = 4) -> Dict[Itemset, int]:
    """Apriori over document word sets.

    Args:
        corpus: tokenized corpus; each document contributes its word
            *set* once (titles rarely repeat words).
        min_support: minimum number of documents containing the set.
        max_size: largest itemset size mined.

    Returns:
        Mapping from frozenset of word ids to document frequency, for
        all itemsets of size >= 1 meeting the support threshold.
    """
    if min_support < 1:
        raise ConfigurationError("min_support must be >= 1")
    doc_sets: List[FrozenSet[int]] = [frozenset(doc.tokens)
                                      for doc in corpus]

    counts: Dict[Itemset, int] = {}
    for words in doc_sets:
        for word in words:
            key = frozenset((word,))
            counts[key] = counts.get(key, 0) + 1
    counts = {s: c for s, c in counts.items() if c >= min_support}
    result = dict(counts)

    current = set(counts)
    size = 2
    while current and size <= max_size:
        # Candidate generation: join frequent (size-1)-sets sharing a
        # (size-2)-prefix is overkill for small sizes; count directly
        # from documents restricted to frequent singletons.
        frequent_words = {next(iter(s)) for s in current} \
            if size == 2 else None
        new_counts: Dict[Itemset, int] = {}
        for words in doc_sets:
            if size == 2:
                eligible = sorted(w for w in words
                                  if w in frequent_words)
                candidates = combinations(eligible, 2)
            else:
                eligible = sorted(words)
                candidates = (
                    c for c in combinations(eligible, size)
                    if all(frozenset(sub) in current
                           for sub in combinations(c, size - 1)))
            for candidate in candidates:
                key = frozenset(candidate)
                new_counts[key] = new_counts.get(key, 0) + 1
        current = {s for s, c in new_counts.items()
                   if c >= min_support}
        result.update({s: new_counts[s] for s in current})
        size += 1
    return result


def canonical_orders(corpus: Corpus,
                     itemsets: Dict[Itemset, int]) -> Dict[Itemset, Phrase]:
    """Most frequent surface order of each itemset's words.

    For each document containing all of an itemset's words, the words'
    relative order of first occurrence votes; ties break lexically.
    """
    votes: Dict[Itemset, Dict[Phrase, int]] = {s: {} for s in itemsets
                                               if len(s) >= 2}
    multi = [s for s in itemsets if len(s) >= 2]
    for doc in corpus:
        positions: Dict[int, int] = {}
        for index, tok in enumerate(doc.tokens):
            positions.setdefault(tok, index)
        present = set(positions)
        for itemset in multi:
            if itemset <= present:
                order = tuple(sorted(itemset,
                                     key=lambda w: positions[w]))
                bucket = votes[itemset]
                bucket[order] = bucket.get(order, 0) + 1
    result: Dict[Itemset, Phrase] = {}
    for itemset in itemsets:
        if len(itemset) == 1:
            result[itemset] = (next(iter(itemset)),)
        else:
            bucket = votes.get(itemset, {})
            if bucket:
                result[itemset] = max(sorted(bucket),
                                      key=lambda o: bucket[o])
            else:
                result[itemset] = tuple(sorted(itemset))
    return result


def itemsets_as_phrase_counts(corpus: Corpus,
                              min_support: int = 5,
                              max_size: int = 4) -> PhraseCounts:
    """Mine itemsets and expose them through the PhraseCounts interface.

    This is the adapter that lets :class:`~repro.phrases.kert.KERT` rank
    unordered patterns exactly like contiguous phrases — the short-text
    setting of the original KERT evaluation.
    """
    itemsets = mine_frequent_itemsets(corpus, min_support=min_support,
                                      max_size=max_size)
    orders = canonical_orders(corpus, itemsets)
    counts: Dict[Phrase, int] = {}
    for itemset, frequency in itemsets.items():
        phrase = orders[itemset]
        existing = counts.get(phrase)
        if existing is None or frequency > existing:
            counts[phrase] = frequency
    return PhraseCounts(counts=counts, min_support=min_support,
                        num_documents=len(corpus),
                        num_tokens=corpus.num_tokens)
