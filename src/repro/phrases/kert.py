"""KERT: topical keyphrase extraction and ranking (Section 4.2).

KERT scores each frequent phrase per topic with four criteria —
popularity (Eq. 4.4), purity (Eq. 4.5), concordance (Eq. 4.1) and
completeness (Eq. 4.2) — combined as the pointwise-KL quality function of
Eq. 4.6.  Any criterion can be switched off, reproducing the ablation
variants KERT−pop / −pur / −con / −com of Section 4.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import ConfigurationError
from ..utils import EPS
from .frequent import Phrase, PhraseCounts, mine_frequent_phrases
from .ranking import (FlatTopicModel, document_phrase_instances,
                      render_phrase, topical_frequencies)


@dataclass
class KERTConfig:
    """Knobs for :class:`KERT`.

    Attributes:
        min_support: mu, the frequent-phrase mining threshold; also the
            topical-frequency threshold in the N_t normalizer.
        gamma: completeness filter strength in [0, 1]; 0 keeps all closed
            phrases, values near 1 keep only maximal phrases.
        omega: purity/concordance mixing weight in [0, 1]; the quality is
            ``pop * ((1-omega) * pur + omega * con)``.
        use_popularity: disable for the KERT−pop ablation (quality becomes
            the bare criterion mix).
        use_purity: disable for KERT−pur (equivalent to omega = 1).
        use_concordance: disable for KERT−con (equivalent to omega = 0).
        use_completeness: disable for KERT−com (equivalent to gamma = 0).
        max_phrase_length: restrict candidate phrase length; 1 reproduces
            the unigram-only variants (CATHY1 etc.).
    """

    min_support: int = 5
    gamma: float = 0.5
    omega: float = 0.5
    use_popularity: bool = True
    use_purity: bool = True
    use_concordance: bool = True
    use_completeness: bool = True
    max_phrase_length: int = 6

    def __post_init__(self) -> None:
        if not 0 <= self.gamma <= 1:
            raise ConfigurationError("gamma must be in [0, 1]")
        if not 0 <= self.omega <= 1:
            raise ConfigurationError("omega must be in [0, 1]")


@dataclass
class TopicalPhraseScores:
    """Scored phrases for one topic, sorted best-first."""

    ranked: List[Tuple[Phrase, float]]

    def top(self, k: int) -> List[Phrase]:
        """The k best phrases (tuples of token ids)."""
        return [phrase for phrase, _ in self.ranked[:k]]


class KERT:
    """Rank frequent phrases per topic of a flat topic model."""

    def __init__(self, config: Optional[KERTConfig] = None) -> None:
        self.config = config or KERTConfig()

    # ------------------------------------------------------------------ rank
    def rank(self, corpus: Corpus, model: FlatTopicModel,
             counts: Optional[PhraseCounts] = None,
             ) -> List[TopicalPhraseScores]:
        """Score and rank phrases for every topic of ``model``."""
        config = self.config
        if counts is None:
            counts = mine_frequent_phrases(
                corpus, min_support=config.min_support,
                max_length=config.max_phrase_length)
        freqs = topical_frequencies(counts, model)
        candidates = [p for p in counts.counts
                      if len(p) <= config.max_phrase_length]

        doc_counts = self._topic_document_counts(corpus, counts, freqs,
                                                 model.num_topics)
        completeness = completeness_scores(counts)
        results: List[TopicalPhraseScores] = []
        for t in range(model.num_topics):
            scored = []
            for phrase in candidates:
                score = self._quality(phrase, t, counts, freqs, doc_counts,
                                      completeness)
                if score > 0:
                    scored.append((phrase, score))
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            results.append(TopicalPhraseScores(ranked=scored))
        return results

    def rank_strings(self, corpus: Corpus, model: FlatTopicModel,
                     counts: Optional[PhraseCounts] = None,
                     top_k: int = 20) -> List[List[Tuple[str, float]]]:
        """Like :meth:`rank` but rendering phrases as strings."""
        results = self.rank(corpus, model, counts=counts)
        return [[(render_phrase(p, corpus.vocabulary), s)
                 for p, s in topic.ranked[:top_k]]
                for topic in results]

    # ------------------------------------------------------------- criteria
    def _topic_document_counts(self, corpus: Corpus, counts: PhraseCounts,
                               freqs: Dict[Phrase, np.ndarray],
                               num_topics: int) -> Dict[str, object]:
        """N_t and N_{t,t'} of Eq. 4.4-4.5 from frequent phrase instances."""
        mu = counts.min_support
        doc_sets: List[set] = [set() for _ in range(num_topics)]
        instances = document_phrase_instances(
            corpus, counts, max_length=self.config.max_phrase_length)
        for doc_id, phrases in enumerate(instances):
            for phrase in set(phrases):
                topic_freq = freqs.get(phrase)
                if topic_freq is None:
                    continue
                for t in range(num_topics):
                    if topic_freq[t] >= mu:
                        doc_sets[t].add(doc_id)
        n_t = np.array([max(len(s), 1) for s in doc_sets], dtype=float)
        n_tt = np.ones((num_topics, num_topics))
        for t in range(num_topics):
            for u in range(num_topics):
                if t != u:
                    n_tt[t, u] = max(len(doc_sets[t] | doc_sets[u]), 1)
        return {"n_t": n_t, "n_tt": n_tt, "n_docs": max(len(corpus), 1)}

    def _quality(self, phrase: Phrase, t: int, counts: PhraseCounts,
                 freqs: Dict[Phrase, np.ndarray],
                 doc_counts: Dict[str, object],
                 completeness: Dict[Phrase, float]) -> float:
        config = self.config
        topic_freq = freqs[phrase]
        f_t = float(topic_freq[t])
        if f_t < counts.min_support:
            return 0.0

        if config.use_completeness and \
                completeness.get(phrase, 1.0) <= config.gamma:
            return 0.0

        n_t = doc_counts["n_t"]
        n_tt = doc_counts["n_tt"]
        popularity = f_t / n_t[t]

        purity = 0.0
        if config.use_purity:
            contrast = -np.inf
            for u in range(len(n_t)):
                if u == t:
                    continue
                mixed = (f_t + float(topic_freq[u])) / n_tt[t, u]
                contrast = max(contrast, mixed)
            if np.isfinite(contrast):
                purity = float(np.log(max(popularity, EPS))
                               - np.log(max(contrast, EPS)))

        concordance = 0.0
        if config.use_concordance:
            concordance = self._concordance(phrase, counts)

        if config.use_purity and config.use_concordance:
            mix = (1 - config.omega) * purity + config.omega * concordance
        elif config.use_purity:
            mix = purity
        elif config.use_concordance:
            mix = concordance
        else:
            mix = 1.0

        if config.use_popularity:
            return popularity * mix
        return mix

    @staticmethod
    def _concordance(phrase: Phrase, counts: PhraseCounts) -> float:
        """kappa_con of Eq. 4.1: log p(P) - sum log p(v)."""
        n_docs = max(counts.num_documents, 1)
        score = float(np.log(max(counts.frequency(phrase), EPS) / n_docs))
        for word in phrase:
            score -= float(np.log(max(counts.frequency((word,)), EPS)
                                  / n_docs))
        return score


def completeness_scores(counts: PhraseCounts) -> Dict[Phrase, float]:
    """kappa_com of Eq. 4.2 for every frequent phrase, in one pass.

    Both right extensions (P (+) v) and left extensions (v (+) P) are
    considered, because "vector machines" is incomplete on the left.
    Phrases with no frequent extension are fully complete (score 1).
    """
    best_extension: Dict[Phrase, int] = {}
    for candidate, count in counts.counts.items():
        if len(candidate) < 2:
            continue
        for sub in (candidate[:-1], candidate[1:]):
            if count > best_extension.get(sub, 0):
                best_extension[sub] = count
    scores: Dict[Phrase, float] = {}
    for phrase, frequency in counts.counts.items():
        if frequency <= 0:
            scores[phrase] = 0.0
        else:
            scores[phrase] = 1.0 - best_extension.get(phrase, 0) / frequency
    return scores
