"""Convergence tracing for iterative solvers.

Every iterative loop in the library opens a trace with :func:`trace`,
calls ``tracer.record(...)`` once per iteration with whatever scalar
diagnostics it already computes (log-likelihood, residual, perplexity),
and closes with ``tracer.finish(reason)`` where ``reason`` states *why*
the loop terminated (``"converged"`` vs ``"max_iter"`` vs
``"completed"`` for fixed-budget loops).

Finished traces accumulate in a process-wide list (harvested by run
reports) and, when a trace path is configured, stream to a JSON-lines
file with one line per iteration plus one ``end`` line per trace.

While observability is disabled, :func:`trace` returns a shared no-op
tracer, so instrumented loops pay one method call per iteration and
allocate nothing beyond the call's (empty) kwargs.  Loops that would
need *extra work* to produce a diagnostic (e.g. an otherwise-skipped
likelihood evaluation) should guard it with ``tracer.active``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .registry import is_enabled

__all__ = [
    "ConvergenceTrace",
    "clear_traces",
    "get_trace_path",
    "get_traces",
    "register_trace",
    "set_trace_path",
    "trace",
]

#: Termination reasons used by the library's own solvers.
TERMINATION_CONVERGED = "converged"
TERMINATION_MAX_ITER = "max_iter"
TERMINATION_COMPLETED = "completed"

_TRACES: List["ConvergenceTrace"] = []
_TRACE_PATH: Optional[str] = None


@dataclass
class ConvergenceTrace:
    """One finished per-iteration trace of an iterative solver.

    Attributes:
        name: solver identifier (e.g. ``"cathy.em"``).
        context: static facts about the run (num_topics, sizes, ...).
        iterations: one record per iteration; every record carries
            ``iteration`` (0-based) and ``time_s`` (wall-time of that
            iteration) plus the solver's diagnostics.
        termination: why the loop stopped.
        total_time_s: wall-time from trace open to finish.
    """

    name: str
    context: Dict[str, Any] = field(default_factory=dict)
    iterations: List[Dict[str, Any]] = field(default_factory=list)
    termination: str = "unknown"
    total_time_s: float = 0.0

    @property
    def num_iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.iterations)

    def series(self, key: str) -> List[float]:
        """The per-iteration sequence of diagnostic ``key`` (gaps skipped)."""
        return [rec[key] for rec in self.iterations if key in rec]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form used by run reports."""
        return {
            "name": self.name,
            "context": dict(self.context),
            "termination": self.termination,
            "num_iterations": self.num_iterations,
            "total_time_s": self.total_time_s,
            "iterations": [dict(rec) for rec in self.iterations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConvergenceTrace":
        """Rebuild a trace from :meth:`to_dict` output (worker shipping)."""
        return cls(
            name=str(data["name"]),
            context=dict(data.get("context", {})),
            iterations=[dict(rec) for rec in data.get("iterations", [])],
            termination=str(data.get("termination", "unknown")),
            total_time_s=float(data.get("total_time_s", 0.0)),
        )


class Tracer:
    """Interface returned by :func:`trace` (live or no-op).

    The shared base gives strictly typed call sites one nominal type;
    the class itself is the do-nothing tracer of the disabled path.
    """

    __slots__ = ()

    #: Costly diagnostics may be computed only when this is True.
    active = False

    def record(self, **values: float) -> None:
        """Append one iteration record (no-op while disabled)."""

    def finish(self, termination: str = TERMINATION_COMPLETED,
               ) -> Optional[ConvergenceTrace]:
        """Close the trace (no-op while disabled)."""
        return None


class _LiveTracer(Tracer):
    """Collecting tracer returned while observability is enabled."""

    __slots__ = ("_name", "_context", "_records", "_start", "_last",
                 "_finished")

    active = True

    def __init__(self, name: str, context: Dict[str, Any]) -> None:
        self._name = name
        self._context = context
        self._records: List[Dict[str, Any]] = []
        self._start = time.perf_counter()
        self._last = self._start
        self._finished = False

    def record(self, **values: float) -> None:
        """Append one iteration record; stamps index and iteration time."""
        now = time.perf_counter()
        rec: Dict[str, Any] = {"iteration": len(self._records),
                               "time_s": now - self._last}
        rec.update(values)
        self._records.append(rec)
        self._last = now

    def finish(self, termination: str = TERMINATION_COMPLETED,
               ) -> Optional[ConvergenceTrace]:
        """Close the trace, register it globally, and stream it if set."""
        if self._finished:
            return None
        self._finished = True
        result = ConvergenceTrace(
            name=self._name, context=self._context,
            iterations=self._records, termination=termination,
            total_time_s=time.perf_counter() - self._start)
        _TRACES.append(result)
        if _TRACE_PATH is not None:
            _write_jsonl(result, _TRACE_PATH)
        return result


#: Shared do-nothing tracer for the disabled fast path.
_NULL_TRACER = Tracer()


def trace(name: str, **context: Any) -> Tracer:
    """Open a convergence trace for one iterative-solver run.

    Returns the shared no-op tracer while observability is disabled.
    """
    if not is_enabled():
        return _NULL_TRACER
    return _LiveTracer(name, context)


def get_traces(name: Optional[str] = None) -> List[ConvergenceTrace]:
    """All finished traces (optionally filtered by solver name)."""
    if name is None:
        return list(_TRACES)
    return [t for t in _TRACES if t.name == name]


def clear_traces() -> None:
    """Forget every finished trace."""
    del _TRACES[:]


def register_trace(result: ConvergenceTrace) -> None:
    """Add an externally built trace to the collected list and stream it.

    Used by :mod:`repro.obs.propagate` when a worker ships its finished
    traces back: the parent registers them once, so run reports see
    worker-side convergence data exactly as if the loop ran in-process.
    """
    _TRACES.append(result)
    if _TRACE_PATH is not None:
        _write_jsonl(result, _TRACE_PATH)


def set_trace_path(path: Optional[str]) -> None:
    """Stream finished traces to ``path`` as JSON lines (None disables)."""
    global _TRACE_PATH
    _TRACE_PATH = path


def get_trace_path() -> Optional[str]:
    """The configured JSON-lines trace path, if any."""
    return _TRACE_PATH


def _write_jsonl(result: ConvergenceTrace, path: str) -> None:
    lines = []
    for rec in result.iterations:
        event = {"trace": result.name, "event": "iteration"}
        event.update(rec)
        lines.append(json.dumps(event))
    lines.append(json.dumps({
        "trace": result.name,
        "event": "end",
        "termination": result.termination,
        "num_iterations": result.num_iterations,
        "total_time_s": result.total_time_s,
        "context": result.context,
    }, default=repr))
    # repro: noqa-RL003  append-only JSONL stream: each trace is one
    # appended line; atomic replace would rewrite prior history on
    # every event and lose it on interleaved writers.
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")
