"""``python -m repro.obs REPORT.json [...]`` — validate run reports."""

from __future__ import annotations

from .report import _main

if __name__ == "__main__":
    raise SystemExit(_main())
