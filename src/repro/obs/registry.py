"""Process-wide metrics registry: counters, gauges, and histogram timers.

The registry is the accumulation point for everything the instrumented
solvers emit.  Instrumentation is free when observability is disabled
(the default): :func:`timed` returns a shared no-op context manager and
:func:`inc` / :func:`set_gauge` return immediately, so hot loops carry no
more than a module-global check per call and allocate nothing.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Optional

__all__ = [
    "MetricsRegistry",
    "TimerStats",
    "get_registry",
    "inc",
    "is_enabled",
    "observe",
    "reset_metrics",
    "set_enabled",
    "set_gauge",
    "timed",
    "timed_function",
]

#: Module-global enable flag; flipped by :func:`repro.obs.configure`.
_ENABLED = False


def is_enabled() -> bool:
    """True when metric and trace collection is active."""
    return _ENABLED


def set_enabled(enabled: bool) -> None:
    """Turn metric and trace collection on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(enabled)


class TimerStats:
    """Aggregate statistics of one named timer (a tiny histogram).

    Attributes:
        count: number of observations.
        total: summed duration in seconds.
        min / max: extreme observations in seconds.
        last: the most recent observation in seconds.
    """

    __slots__ = ("count", "total", "min", "max", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.last = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one duration into the aggregate."""
        self.count += 1
        self.total += seconds
        self.last = seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Average observed duration in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-data form used by run reports."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "last_s": self.last,
        }


class MetricsRegistry:
    """Thread-safe container of named counters, gauges, and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    # ------------------------------------------------------------ mutation
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.observe(seconds)

    def reset(self) -> None:
        """Drop every collected metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # ------------------------------------------------------------- queries
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        """Latest value of gauge ``name`` (None when never set)."""
        with self._lock:
            return self._gauges.get(name)

    def timer(self, name: str) -> Optional[TimerStats]:
        """Aggregate stats of timer ``name`` (None when never observed)."""
        with self._lock:
            return self._timers.get(name)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-data snapshot of every metric (run-report currency)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {name: stats.to_dict()
                           for name, stats in self._timers.items()},
            }


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (always available, even when disabled)."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry."""
    _REGISTRY.reset()


# ------------------------------------------------------------------ timing
class Timer:
    """Context-manager interface returned by :func:`timed`.

    The shared base exists so strictly typed call sites see one nominal
    type whether they got the live timer or the disabled-path no-op.
    """

    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        return False


class _Timer(Timer):
    """Context manager recording its block's duration into the registry."""

    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        _REGISTRY.observe(self._name, time.perf_counter() - self._start)
        return False


#: Shared do-nothing context manager for the disabled fast path.
_NULL_TIMER = Timer()


def timed(name: str) -> Timer:
    """Context manager timing a block under ``name``.

    When observability is disabled this returns a shared no-op object, so
    instrumented call sites allocate nothing and pay only the flag check.
    """
    if not _ENABLED:
        return _NULL_TIMER
    return _Timer(name)


def timed_function(name: str) -> Callable[[Callable[..., Any]],
                                          Callable[..., Any]]:
    """Decorator form of :func:`timed`; the flag is checked per call."""
    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with timed(name):
                return func(*args, **kwargs)
        return wrapper
    return decorate


# ------------------------------------------------- module-level convenience
def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a duration; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.observe(name, seconds)
