"""Process-wide metrics registry: counters, gauges, and histogram timers.

The registry is the accumulation point for everything the instrumented
solvers emit.  Instrumentation is free when observability is disabled
(the default): :func:`timed` returns a shared no-op context manager and
:func:`inc` / :func:`set_gauge` return immediately, so hot loops carry no
more than a module-global check per call and allocate nothing.

Every :class:`TimerStats` carries a :class:`QuantileSketch` — a
fixed-memory log-bucketed histogram exposing p50/p90/p99 — and both are
**mergeable**: :meth:`MetricsRegistry.merge_snapshot` folds a snapshot
taken in another process into this registry (the worker-telemetry path
of :mod:`repro.parallel`), with counter addition and bucket-count
addition, so merged totals are exact and merge order never matters.
"""

from __future__ import annotations

import functools
import math
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "QuantileSketch",
    "TimerStats",
    "get_registry",
    "inc",
    "is_enabled",
    "observe",
    "reset_metrics",
    "set_enabled",
    "set_gauge",
    "timed",
    "timed_function",
]

#: Module-global enable flag; flipped by :func:`repro.obs.configure`.
_ENABLED = False


def is_enabled() -> bool:
    """True when metric and trace collection is active."""
    return _ENABLED


def set_enabled(enabled: bool) -> None:
    """Turn metric and trace collection on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(enabled)


class QuantileSketch:
    """Fixed-memory streaming quantile estimate over positive values.

    A log-bucketed histogram: bucket ``b`` covers
    ``[MIN_VALUE * GROWTH**b, MIN_VALUE * GROWTH**(b+1))``, so relative
    quantile error is bounded by the bucket width (~9% at the default
    growth factor) while memory stays bounded by :data:`NUM_BUCKETS`
    integers regardless of observation count.  Buckets are stored
    sparsely (``index -> count``), which keeps snapshots tiny for the
    typical timer that spans a few decades.

    Merging two sketches adds their bucket counts — integer addition, so
    the merge is exact, commutative, and associative: folding worker
    sketches into the parent registry gives the same p50/p99 regardless
    of worker count or merge order.
    """

    #: Lower edge of bucket 0 (100 ns — below any duration we time).
    MIN_VALUE = 1e-7
    #: Geometric bucket growth; 2**(1/4) gives 4 buckets per octave.
    GROWTH = 2.0 ** 0.25
    #: Bucket count; covers 1e-7 s .. ~3.6e4 s (10 hours) at GROWTH.
    NUM_BUCKETS = 160

    __slots__ = ("_buckets",)

    _LOG_GROWTH = math.log(GROWTH)

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}

    def _bucket_of(self, value: float) -> int:
        if value <= self.MIN_VALUE:
            return 0
        index = int(math.log(value / self.MIN_VALUE) / self._LOG_GROWTH)
        return min(index, self.NUM_BUCKETS - 1)

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        index = self._bucket_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        """Total number of observations folded in."""
        return sum(self._buckets.values())

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1; 0.0 when empty).

        Returns the geometric midpoint of the bucket holding the
        rank-``ceil(q * count)`` observation.
        """
        total = self.count
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                lower = self.MIN_VALUE * self.GROWTH ** index
                return lower * math.sqrt(self.GROWTH)
        return self.MIN_VALUE * self.GROWTH ** self.NUM_BUCKETS

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s buckets into this sketch (exact addition)."""
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    def to_dict(self) -> Dict[str, int]:
        """Sparse bucket map with string keys (JSON/snapshot currency)."""
        return {str(index): count
                for index, count in sorted(self._buckets.items())}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls()
        for key, count in data.items():
            index = min(max(int(key), 0), cls.NUM_BUCKETS - 1)
            sketch._buckets[index] = sketch._buckets.get(index, 0) \
                + int(count)
        return sketch


class TimerStats:
    """Aggregate statistics of one named timer (a tiny histogram).

    Attributes:
        count: number of observations.
        total: summed duration in seconds.
        min / max: extreme observations in seconds.
        last: the most recent observation in seconds.
        sketch: fixed-memory quantile sketch over the observations.
    """

    __slots__ = ("count", "total", "min", "max", "last", "sketch")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.last = 0.0
        self.sketch = QuantileSketch()

    def observe(self, seconds: float) -> None:
        """Fold one duration into the aggregate."""
        self.count += 1
        self.total += seconds
        self.last = seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.sketch.add(seconds)

    @property
    def mean(self) -> float:
        """Average observed duration in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the observed durations."""
        return self.sketch.quantile(q)

    def merge(self, other: "TimerStats") -> None:
        """Fold another timer's aggregate into this one (cross-process)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.last = other.last
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.sketch.merge(other.sketch)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form used by run reports and snapshot merging."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "last_s": self.last,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
            "sketch": self.sketch.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimerStats":
        """Rebuild timer stats from :meth:`to_dict` output.

        Tolerates sketch-less dicts (pre-quantile snapshots): the sketch
        then starts empty and quantiles read as 0 until new observations
        arrive.
        """
        stats = cls()
        stats.count = int(data.get("count", 0))
        stats.total = float(data.get("total_s", 0.0))
        stats.min = float(data.get("min_s", 0.0)) if stats.count \
            else float("inf")
        stats.max = float(data.get("max_s", 0.0))
        stats.last = float(data.get("last_s", 0.0))
        sketch = data.get("sketch")
        if isinstance(sketch, Mapping):
            stats.sketch = QuantileSketch.from_dict(sketch)
        return stats


class MetricsRegistry:
    """Thread-safe container of named counters, gauges, and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    # ------------------------------------------------------------ mutation
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.observe(seconds)

    def reset(self) -> None:
        """Drop every collected metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # ------------------------------------------------------------- queries
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        """Latest value of gauge ``name`` (None when never set)."""
        with self._lock:
            return self._gauges.get(name)

    def timer(self, name: str) -> Optional[TimerStats]:
        """Aggregate stats of timer ``name`` (None when never observed)."""
        with self._lock:
            return self._timers.get(name)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-data snapshot of every metric (run-report currency)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {name: stats.to_dict()
                           for name, stats in self._timers.items()},
            }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Counters add, gauges take the incoming value (last write wins, as
        for a local ``set_gauge``), and timers merge count/sum/extremes
        plus their quantile sketches.  Counter and sketch merging are
        exact integer/float addition, so folding N worker snapshots gives
        the same totals as running the same work in-process.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        timers = snapshot.get("timers", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) \
                    + float(value)
            for name, value in gauges.items():
                self._gauges[name] = float(value)
            for name, data in timers.items():
                stats = self._timers.get(name)
                if stats is None:
                    stats = self._timers[name] = TimerStats()
                stats.merge(TimerStats.from_dict(data))


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (always available, even when disabled)."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry."""
    _REGISTRY.reset()


# ------------------------------------------------------------------ timing
class Timer:
    """Context-manager interface returned by :func:`timed`.

    The shared base exists so strictly typed call sites see one nominal
    type whether they got the live timer or the disabled-path no-op.
    """

    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        return False


class _Timer(Timer):
    """Context manager recording its block's duration into the registry."""

    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        _REGISTRY.observe(self._name, time.perf_counter() - self._start)
        return False


#: Shared do-nothing context manager for the disabled fast path.
_NULL_TIMER = Timer()


def timed(name: str) -> Timer:
    """Context manager timing a block under ``name``.

    When observability is disabled this returns a shared no-op object, so
    instrumented call sites allocate nothing and pay only the flag check.
    """
    if not _ENABLED:
        return _NULL_TIMER
    return _Timer(name)


def timed_function(name: str) -> Callable[[Callable[..., Any]],
                                          Callable[..., Any]]:
    """Decorator form of :func:`timed`; the flag is checked per call."""
    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with timed(name):
                return func(*args, **kwargs)
        return wrapper
    return decorate


# ------------------------------------------------- module-level convenience
def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a duration; no-op while disabled."""
    if _ENABLED:
        _REGISTRY.observe(name, seconds)
