"""Nested span tracing with cross-process merge and Chrome export.

A *span* is one timed region of the pipeline — a solver phase, one
E-step, one Gibbs sweep, one HTTP request — carrying wall-clock start
and end, CPU time, a stable span ID, a parent link, and the trace ID of
the run it belongs to.  Spans nest: :func:`span` consults a thread-local
stack, so the E-step span opened inside ``cathy.em.fit`` automatically
records that span as its parent, and the finished records form a
well-formed tree (child intervals inside parent intervals).

Three activity tiers keep the hot path free:

* spans enabled (:func:`set_spans_enabled`) — full record, plus the
  span's duration is folded into the metrics registry under the span
  name, so every ``span("x")`` is also a ``timed("x")``;
* only metrics enabled — :func:`span` degrades to a timer-observing
  handle, identical in cost to :func:`repro.obs.timed`;
* both disabled — a shared no-op singleton; zero allocations.

Wall-clock timestamps come from a per-process anchor
(``time.time() - time.perf_counter()`` sampled at import) plus
``perf_counter`` offsets, so sibling and nested spans within a process
are perfectly ordered even when the system clock steps.  Worker
processes ship their finished spans back through
:mod:`repro.obs.propagate`; :func:`merge_spans` re-parents each worker's
root spans under the parent-side ``parallel.*`` span and rewrites trace
IDs, so one run yields one connected tree across every process.

Finished spans stream to the configured trace path (one
``{"event": "span", ...}`` JSON line each) and export to Chrome
``trace_event`` JSON via :func:`to_chrome_trace` /
``repro trace-export`` for chrome://tracing flamegraph viewing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .registry import get_registry, is_enabled
from .tracer import get_trace_path

__all__ = [
    "SpanHandle",
    "clear_spans",
    "current_span_id",
    "current_trace_id",
    "from_chrome_trace",
    "get_spans",
    "merge_spans",
    "reset_spans",
    "self_times",
    "set_profile_hooks",
    "set_spans_enabled",
    "set_trace_id",
    "span",
    "spans_enabled",
    "to_chrome_trace",
    "top_spans",
]

#: Per-process wall-clock anchor: span start = anchor + perf_counter().
#: Sampling the pair once keeps all spans of a process on one monotonic
#: axis, so child intervals always sit inside their parents.
_ANCHOR_UNIX = time.time() - time.perf_counter()

_SPANS_ENABLED = False
_FINISHED: List[Dict[str, Any]] = []
_FINISHED_LOCK = threading.Lock()
_LOCAL = threading.local()

_ID_LOCK = threading.Lock()
_NEXT_ID = 0

#: Trace ID shared by every span of this process unless a thread
#: overrides it (e.g. one ID per HTTP request).  Derived from pid and
#: the anchor, so forked workers inherit a distinct-enough default that
#: :func:`merge_spans` then rewrites to the parent's.
_PROCESS_TRACE_ID = f"{os.getpid():x}-{int(_ANCHOR_UNIX * 1e6):x}"

#: Optional profiling hooks installed by :mod:`repro.obs.profile`
#: (kept as injected callables to avoid an import cycle).  The start
#: hook returns an opaque token; the end hook turns it into extra
#: fields merged into the finished span record.
_PROFILE_START: Optional[Callable[[], Any]] = None
_PROFILE_END: Optional[Callable[[Any], Dict[str, Any]]] = None


def spans_enabled() -> bool:
    """True when span collection is active in this process."""
    return _SPANS_ENABLED


def set_spans_enabled(enabled: bool) -> None:
    """Turn span collection on or off process-wide."""
    global _SPANS_ENABLED
    _SPANS_ENABLED = bool(enabled)


def set_profile_hooks(start: Optional[Callable[[], Any]],
                      end: Optional[Callable[[Any], Dict[str, Any]]],
                      ) -> None:
    """Install (or clear) the per-span profiling hooks."""
    global _PROFILE_START, _PROFILE_END
    _PROFILE_START = start
    _PROFILE_END = end


def _next_span_id() -> str:
    global _NEXT_ID
    with _ID_LOCK:
        _NEXT_ID += 1
        serial = _NEXT_ID
    return f"{os.getpid():x}.{serial:x}"


def _stack() -> List["_LiveSpan"]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span_id() -> Optional[str]:
    """Span ID of the innermost live span on this thread, if any."""
    stack = _stack()
    return stack[-1].span_id if stack else None


def current_trace_id() -> str:
    """Trace ID new spans on this thread will carry."""
    override = getattr(_LOCAL, "trace_id", None)
    return override if override is not None else _PROCESS_TRACE_ID


def set_trace_id(trace_id: Optional[str]) -> None:
    """Override the trace ID for this thread (None restores the default).

    The serving layer assigns one trace ID per HTTP request this way, so
    every span opened while handling the request shares its ID.
    """
    _LOCAL.trace_id = trace_id


class SpanHandle:
    """Context-manager interface returned by :func:`span`.

    The shared base gives strictly typed call sites one nominal type
    whether they received the live span, the metrics-only degradation,
    or the disabled-path no-op (which this class itself is).
    """

    __slots__ = ()

    #: Costly attributes may be computed only when this is True.
    active = False
    #: Stable span ID; None on the no-op and metrics-only tiers.
    span_id: Optional[str] = None

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (no-op unless live)."""


class _MetricSpan(SpanHandle):
    """Metrics-only tier: records the duration as a registry timer."""

    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_MetricSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        get_registry().observe(self._name,
                               time.perf_counter() - self._start)
        return False


class _LiveSpan(SpanHandle):
    """Full span: tree-linked record plus the registry timer."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "attrs",
                 "_start_perf", "_start_cpu", "_profile_token")

    active = True

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = _next_span_id()
        self.parent_id = current_span_id()
        self.trace_id = current_trace_id()
        self.attrs = attrs
        self._start_perf = 0.0
        self._start_cpu = 0.0
        self._profile_token: Any = None

    def __enter__(self) -> "_LiveSpan":
        _stack().append(self)
        if _PROFILE_START is not None:
            self._profile_token = _PROFILE_START()
        self._start_cpu = time.process_time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[type],
                 exc: Optional[BaseException], tb: object) -> bool:
        end_perf = time.perf_counter()
        cpu_s = time.process_time() - self._start_cpu
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "start_unix": _ANCHOR_UNIX + self._start_perf,
            "end_unix": _ANCHOR_UNIX + end_perf,
            "dur_s": end_perf - self._start_perf,
            "cpu_s": cpu_s,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        if _PROFILE_END is not None:
            record.update(_PROFILE_END(self._profile_token))
        _record_finished([record])
        if is_enabled():
            get_registry().observe(self.name, record["dur_s"])
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes carried into the finished record."""
        self.attrs.update(attrs)


#: Shared do-nothing span for the fully disabled fast path.
_NULL_SPAN = SpanHandle()


def span(name: str, **attrs: Any) -> SpanHandle:
    """Open a span named ``name`` around a ``with`` block.

    Tier selection happens per call: live span while span tracing is
    on, plain registry timer while only metrics are on, shared no-op
    singleton otherwise.
    """
    if _SPANS_ENABLED:
        return _LiveSpan(name, attrs)
    if is_enabled():
        return _MetricSpan(name)
    return _NULL_SPAN


def _record_finished(records: List[Dict[str, Any]]) -> None:
    """Register finished records and stream them to the trace path."""
    with _FINISHED_LOCK:
        _FINISHED.extend(records)
    path = get_trace_path()
    if path is not None:
        lines = []
        for record in records:
            event = {"event": "span"}
            event.update(record)
            lines.append(json.dumps(event, default=repr))
        # repro: noqa-RL003  append-only JSONL stream shared with the
        # convergence tracer: each finished span is one appended line.
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")


def get_spans(name: Optional[str] = None) -> List[Dict[str, Any]]:
    """All finished span records (optionally filtered by span name)."""
    with _FINISHED_LOCK:
        records = list(_FINISHED)
    if name is None:
        return records
    return [r for r in records if r["name"] == name]


def clear_spans() -> None:
    """Forget every finished span record."""
    with _FINISHED_LOCK:
        del _FINISHED[:]


def reset_spans() -> None:
    """Disable span tracing and drop all span state (test helper)."""
    set_spans_enabled(False)
    clear_spans()
    set_trace_id(None)
    _LOCAL.stack = []


def merge_spans(records: Iterable[Dict[str, Any]],
                parent_id: Optional[str] = None,
                trace_id: Optional[str] = None) -> int:
    """Fold span records shipped from another process into this one.

    Records whose parent is not among the shipped records (the worker's
    roots) are re-parented under ``parent_id``, and every record's trace
    ID is rewritten to ``trace_id`` (both default to the caller's
    current span/trace), so worker spans graft into the parent tree
    instead of forming orphan forests.  Returns the number of records
    merged.
    """
    batch = [dict(r) for r in records]
    if not batch:
        return 0
    if parent_id is None:
        parent_id = current_span_id()
    if trace_id is None:
        trace_id = current_trace_id()
    shipped_ids = {r["span_id"] for r in batch}
    for record in batch:
        if record.get("parent_id") not in shipped_ids:
            record["parent_id"] = parent_id
        record["trace_id"] = trace_id
    _record_finished(batch)
    return len(batch)


# ------------------------------------------------------------ span analysis
def self_times(records: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Self-time (duration minus direct children) per span ID."""
    batch = list(records)
    child_total: Dict[Optional[str], float] = {}
    for record in batch:
        parent = record.get("parent_id")
        child_total[parent] = child_total.get(parent, 0.0) \
            + float(record["dur_s"])
    return {record["span_id"]:
            max(0.0, float(record["dur_s"])
                - child_total.get(record["span_id"], 0.0))
            for record in batch}


def top_spans(records: Iterable[Dict[str, Any]],
              limit: int = 10) -> List[Dict[str, Any]]:
    """Per-name aggregates ranked by total self-time (descending).

    Each row carries ``name``, ``count``, ``total_s``, ``self_s``,
    ``cpu_s``, and — when profiling populated them — the maximum
    ``rss_peak_bytes`` and summed ``alloc_bytes`` over the name's spans.
    """
    batch = list(records)
    per_span_self = self_times(batch)
    rows: Dict[str, Dict[str, Any]] = {}
    for record in batch:
        row = rows.get(record["name"])
        if row is None:
            row = rows[record["name"]] = {
                "name": record["name"], "count": 0, "total_s": 0.0,
                "self_s": 0.0, "cpu_s": 0.0}
        row["count"] += 1
        row["total_s"] += float(record["dur_s"])
        row["self_s"] += per_span_self[record["span_id"]]
        row["cpu_s"] += float(record.get("cpu_s", 0.0))
        if "rss_peak_bytes" in record:
            row["rss_peak_bytes"] = max(row.get("rss_peak_bytes", 0),
                                        int(record["rss_peak_bytes"]))
        if "alloc_bytes" in record:
            row["alloc_bytes"] = row.get("alloc_bytes", 0) \
                + int(record["alloc_bytes"])
    ranked = sorted(rows.values(),
                    key=lambda row: (-row["self_s"], row["name"]))
    return ranked[:limit]


# ------------------------------------------------------------ Chrome export
#: Fields lifted to Chrome top-level; everything else rides in ``args``
#: so :func:`from_chrome_trace` can reconstruct records losslessly.
_CHROME_TOP = ("name", "pid", "tid")


def to_chrome_trace(records: Iterable[Dict[str, Any]],
                    ) -> Dict[str, Any]:
    """Render span records as a Chrome ``trace_event`` JSON document.

    Complete events (``"ph": "X"``) with microsecond timestamps; the
    exact original floats and IDs travel in each event's ``args``, so
    the export round-trips through :func:`from_chrome_trace`.
    """
    events = []
    for record in sorted(list(records),
                         key=lambda r: float(r["start_unix"])):
        args = {key: value for key, value in record.items()
                if key not in _CHROME_TOP}
        events.append({
            "ph": "X",
            "name": record["name"],
            "cat": "repro",
            "ts": float(record["start_unix"]) * 1e6,
            "dur": float(record["dur_s"]) * 1e6,
            "pid": record["pid"],
            "tid": record["tid"],
            "args": args,
        })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def from_chrome_trace(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Reconstruct span records from :func:`to_chrome_trace` output."""
    records = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        record: Dict[str, Any] = dict(event.get("args", {}))
        record["name"] = event["name"]
        record["pid"] = event["pid"]
        record["tid"] = event["tid"]
        records.append(record)
    return records


def spans_from_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read the ``event: span`` lines of a trace JSONL file as records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("event") != "span":
                continue
            record = dict(event)
            record.pop("event")
            records.append(record)
    return records


def span_totals(records: Iterable[Dict[str, Any]],
                ) -> Tuple[float, float]:
    """(root wall-time, total CPU time) over a batch of records.

    Root wall-time sums only spans without an in-batch parent, so
    nested spans are not double counted — the denominator for the
    "span tree covers N% of wall time" acceptance check.
    """
    batch = list(records)
    ids = {record["span_id"] for record in batch}
    wall = sum(float(record["dur_s"]) for record in batch
               if record.get("parent_id") not in ids)
    cpu = sum(float(record.get("cpu_s", 0.0)) for record in batch)
    return wall, cpu
