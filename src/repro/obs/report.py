"""Run reports: one JSON document aggregating a pipeline run.

A run report bundles the metrics snapshot (counters, gauges, per-phase
timers), every finished convergence trace, and the run's configuration
under a versioned schema, so ``BENCH_*.json`` perf entries and CI smoke
checks consume measured numbers instead of nothing.

Schema (``repro.obs/run-report/v2``)::

    {
      "schema": "repro.obs/run-report/v2",
      "generated_unix": 1722945600.0,
      "config": {...},                      # sanitized, run-specific
      "metrics": {"counters": {}, "gauges": {}, "timers": {}},
      "phases": {"miner.hierarchy": {"count": 1, "total_s": ...}, ...},
      "cache_ratios": {"topmine.merge_cache": {"hits": ..., "misses": ...,
                       "hit_ratio": ...}, ...},
      "resources": {"peak_rss_bytes": ..., "cpu_time_s": ...},
      "top_spans": [{"name": ..., "count": ..., "total_s": ...,
                     "self_s": ..., "cpu_s": ...}, ...],   # top 10
      "traces": [{"name": "cathy.hin_em", "termination": "converged",
                  "num_iterations": 12, "total_time_s": ...,
                  "iterations": [{"iteration": 0, "time_s": ...,
                                  "log_likelihood": ...}, ...]}, ...]
    }

``phases`` mirrors ``metrics.timers`` (one entry per :func:`~repro.obs.timed`
name) and exists so report consumers need no knowledge of the registry.
``cache_ratios`` is derived: every counter pair ``<name>.hits`` /
``<name>.misses`` becomes one entry with its hit ratio, so any cache
that follows the naming convention (the ToPMine merge-significance LRU,
serving query caches) reports effectiveness without report-layer code
knowing it exists.
v2 added ``resources`` and ``top_spans``; v1 reports (without them) are
still accepted by :func:`validate_report` and upgraded in place by
:func:`upgrade_report`, so stored ``BENCH_*.json`` history keeps loading.

Run ``python -m repro.obs.report <path>`` to validate a report file.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from ..contracts import RUN_REPORT_V1, RUN_REPORT_V2
from ..errors import DataError
from .registry import get_registry
from .tracer import get_traces

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_V1",
    "build_run_report",
    "cache_ratios",
    "get_report_path",
    "set_report_path",
    "upgrade_report",
    "validate_report",
    "write_report",
]

REPORT_SCHEMA = RUN_REPORT_V2
REPORT_SCHEMA_V1 = RUN_REPORT_V1

_REPORT_PATH: Optional[str] = None


def set_report_path(path: Optional[str]) -> None:
    """Where :meth:`LatentEntityMiner.fit` and the CLI write run reports."""
    global _REPORT_PATH
    _REPORT_PATH = path


def get_report_path() -> Optional[str]:
    """The configured run-report path, if any."""
    return _REPORT_PATH


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-encodable data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def cache_ratios(counters: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Derive hit ratios from ``<name>.hits`` / ``<name>.misses`` pairs.

    Any counter namespace following the hits/misses convention yields an
    entry ``{hits, misses, hit_ratio}``; a namespace with only one of
    the pair still appears (the missing side counts as zero) so a cache
    that never misses — or never hits — is visible rather than dropped.
    """
    names = set()
    for key in counters:
        if key.endswith(".hits"):
            names.add(key[:-len(".hits")])
        elif key.endswith(".misses"):
            names.add(key[:-len(".misses")])
    ratios: Dict[str, Dict[str, float]] = {}
    for name in sorted(names):
        hits = float(counters.get(name + ".hits", 0))
        misses = float(counters.get(name + ".misses", 0))
        total = hits + misses
        ratios[name] = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / total if total else 0.0,
        }
    return ratios


def build_run_report(config: Optional[Dict[str, Any]] = None,
                     ) -> Dict[str, Any]:
    """Aggregate the current metrics and traces into a report document.

    The producing library version is stamped into every report so a
    stored report is traceable to the code that generated it.
    """
    from .. import get_version
    from .profile import cpu_time_s, peak_rss_bytes
    from .spans import get_spans, top_spans

    metrics = get_registry().snapshot()
    return {
        "schema": REPORT_SCHEMA,
        "generated_unix": time.time(),
        "repro_version": get_version(),
        "config": _jsonable(config or {}),
        "metrics": metrics,
        "phases": metrics["timers"],
        "cache_ratios": cache_ratios(metrics["counters"]),
        "resources": {
            "peak_rss_bytes": peak_rss_bytes(),
            "cpu_time_s": cpu_time_s(),
        },
        "top_spans": top_spans(get_spans(), limit=10),
        "traces": [t.to_dict() for t in get_traces()],
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report document as indented JSON.

    The write is atomic (temp file + rename), so a crash mid-write never
    leaves a truncated report for CI consumers to choke on.
    """
    from ..resilience.atomic import atomic_write_json

    atomic_write_json(path, report, indent=2, default=repr,
                      trailing_newline=True)


def upgrade_report(data: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a v1 report to the v2 shape, in place (loader shim).

    v1 reports predate ``resources`` and ``top_spans``; the shim fills
    both with empty-run values and bumps the schema tag, so one loader
    code path serves old ``BENCH_*.json`` history and fresh runs alike.
    v2 (and newer-tagged) documents pass through untouched.
    """
    if not isinstance(data, dict):
        return data
    if data.get("schema") == REPORT_SCHEMA_V1:
        data["schema"] = REPORT_SCHEMA
        data.setdefault("resources",
                        {"peak_rss_bytes": 0, "cpu_time_s": 0.0})
        data.setdefault("top_spans", [])
    if data.get("schema") == REPORT_SCHEMA and "cache_ratios" not in data:
        # Derived section added mid-v2; recompute from stored counters.
        counters = data.get("metrics", {}).get("counters", {})
        data["cache_ratios"] = cache_ratios(
            counters if isinstance(counters, dict) else {})
    return data


def validate_report(data: Dict[str, Any]) -> None:
    """Check ``data`` against the documented run-report schema.

    Both the current v2 schema and legacy v1 documents (validated after
    the :func:`upgrade_report` shim) are accepted.

    Raises:
        DataError: on any structural mismatch, with a one-line reason.
    """
    if not isinstance(data, dict):
        raise DataError("run report must be a JSON object")
    if data.get("schema") == REPORT_SCHEMA_V1:
        data = upgrade_report(dict(data))
    if data.get("schema") != REPORT_SCHEMA:
        raise DataError(f"unsupported report schema: {data.get('schema')!r}")
    resources = data.get("resources")
    if not isinstance(resources, dict):
        raise DataError("report field 'resources' must be an object")
    for key in ("peak_rss_bytes", "cpu_time_s"):
        if not isinstance(resources.get(key), (int, float)):
            raise DataError(f"resources field {key!r} must be a number")
    top = data.get("top_spans")
    if not isinstance(top, list):
        raise DataError("report field 'top_spans' must be an array")
    for row in top:
        if not isinstance(row, dict) or "name" not in row \
                or "self_s" not in row:
            raise DataError("every top_spans row must carry "
                            "'name' and 'self_s'")
    for key in ("config", "metrics", "phases"):
        if not isinstance(data.get(key), dict):
            raise DataError(f"report field {key!r} must be an object")
    ratios = data.get("cache_ratios")
    if ratios is not None:
        if not isinstance(ratios, dict):
            raise DataError("report field 'cache_ratios' must be an object")
        for name, entry in ratios.items():
            if not isinstance(entry, dict) \
                    or not isinstance(entry.get("hit_ratio"), (int, float)):
                raise DataError(f"cache_ratios entry {name!r} must carry "
                                "a numeric hit_ratio")
    metrics = data["metrics"]
    for key in ("counters", "gauges", "timers"):
        if not isinstance(metrics.get(key), dict):
            raise DataError(f"metrics field {key!r} must be an object")
    for name, stats in data["phases"].items():
        if not isinstance(stats, dict) or "count" not in stats \
                or "total_s" not in stats:
            raise DataError(f"phase {name!r} must carry count and total_s")
    traces = data.get("traces")
    if not isinstance(traces, list):
        raise DataError("report field 'traces' must be an array")
    for entry in traces:
        if not isinstance(entry, dict):
            raise DataError("every trace must be an object")
        for key in ("name", "termination", "iterations"):
            if key not in entry:
                raise DataError(f"trace missing field {key!r}")
        if not isinstance(entry["iterations"], list):
            raise DataError("trace field 'iterations' must be an array")
        for rec in entry["iterations"]:
            if not isinstance(rec, dict) or "iteration" not in rec \
                    or "time_s" not in rec:
                raise DataError("every trace iteration must carry "
                                "'iteration' and 'time_s'")


def _main(argv: Optional[List[str]] = None) -> int:
    """Validate report files given on the command line."""
    import sys
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.report REPORT.json [...]",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path) as handle:
                validate_report(json.load(handle))
        except (OSError, ValueError, DataError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: ok ({REPORT_SCHEMA})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke job
    raise SystemExit(_main())
