"""Prometheus text exposition (version 0.0.4) for metric snapshots.

Maps a :meth:`MetricsRegistry.snapshot` onto the Prometheus text
format so ``GET /metrics`` can serve scrapers next to the JSON payload:

* counters → ``repro_<name>_total`` (``# TYPE ... counter``);
* gauges → ``repro_<name>`` (``# TYPE ... gauge``);
* timers → summaries: ``repro_<name>_seconds{quantile="0.5|0.9|0.99"}``
  from the quantile sketch plus ``_seconds_sum`` / ``_seconds_count``.

Dotted metric names (``serve.http.latency``, the RL005 convention)
become underscore-separated Prometheus names (``serve_http_latency``),
prefixed ``repro_`` to namespace the exporter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The exposition content type Prometheus scrapers negotiate for.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("0.5", "p50_s"), ("0.9", "p90_s"), ("0.99", "p99_s"))


def _metric_name(name: str, suffix: str = "") -> str:
    """``serve.http.latency`` → ``repro_serve_http_latency<suffix>``."""
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"repro_{cleaned}{suffix}"


def _format_value(value: float) -> str:
    """Shortest exact decimal (Prometheus accepts Go float syntax)."""
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one metrics snapshot as Prometheus 0.0.4 text.

    Accepts the :meth:`MetricsRegistry.snapshot` shape; missing
    sections render as nothing, so partial snapshots are fine.
    """
    lines: List[str] = []
    counters: Dict[str, float] = dict(snapshot.get("counters", {}))
    for name in sorted(counters):
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    gauges: Dict[str, float] = dict(snapshot.get("gauges", {}))
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    timers: Dict[str, Dict[str, Any]] = dict(snapshot.get("timers", {}))
    for name in sorted(timers):
        stats = timers[name]
        metric = _metric_name(name, "_seconds")
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            value = float(stats.get(key, 0.0))
            lines.append(f'{metric}{{quantile="{quantile}"}} '
                         f"{_format_value(value)}")
        lines.append(f"{metric}_sum "
                     f"{_format_value(float(stats.get('total_s', 0.0)))}")
        lines.append(f"{metric}_count {int(stats.get('count', 0))}")
    return "\n".join(lines) + "\n" if lines else ""
