"""Cross-process telemetry propagation for pmap workers.

PR 1's registry is process-local: a counter incremented inside a
:func:`repro.parallel.pmap` worker lives and dies in that worker.  This
module is the fix.  The parent captures its observability *state*
(which collectors are on) with :func:`observability_state` and ships it
in every task payload; the worker applies it via
:func:`apply_observability_state`, runs the chunk, then packs whatever
it collected with :func:`capture_telemetry` and ships the package back
beside the results.  The parent folds each package in submission order
with :func:`merge_telemetry` — counters add exactly, quantile sketches
add bucket counts, worker span trees graft under the parent's
``parallel.*`` span, and worker convergence traces register as if their
loops had run in-process.  The result: metrics and traces are
worker-count-*invariant* (identical totals at ``workers=1`` and
``workers=8``), not worker-count-blind.

Workers never write to the trace path themselves —
:func:`apply_observability_state` leaves it unset, and the parent
streams the merged records once, so files carry no duplicates even
under the fork start method (where workers inherit the parent's
module globals).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import get_registry, is_enabled, reset_metrics, set_enabled
from .spans import (clear_spans, get_spans, merge_spans, set_spans_enabled,
                    spans_enabled)
from .tracer import (ConvergenceTrace, clear_traces, get_traces,
                     register_trace, set_trace_path)

__all__ = [
    "apply_observability_state",
    "capture_telemetry",
    "merge_telemetry",
    "observability_state",
]


def observability_state() -> Dict[str, bool]:
    """The parent-side collector flags a worker must reproduce."""
    from .profile import profiling_enabled

    return {
        "metrics": is_enabled(),
        "spans": spans_enabled(),
        "profiling": profiling_enabled(),
    }


def apply_observability_state(state: Optional[Dict[str, bool]]) -> None:
    """Adopt shipped collector flags and start from a clean slate.

    Called at the top of every worker chunk: resets the worker's
    registry, spans, and traces (so a reused pool process never ships
    the same telemetry twice), switches each collector to the parent's
    setting, and clears the trace path — the parent streams merged
    telemetry; workers only collect.
    """
    from .profile import set_profiling_enabled

    if state is None:
        state = {}
    reset_metrics()
    clear_spans()
    clear_traces()
    set_trace_path(None)
    set_enabled(bool(state.get("metrics", False)))
    set_spans_enabled(bool(state.get("spans", False)))
    set_profiling_enabled(bool(state.get("profiling", False)))


def capture_telemetry() -> Optional[Dict[str, Any]]:
    """Package this process's collected telemetry for shipping.

    Returns None when nothing was collected (every collector off), so
    the common disabled path ships no extra bytes.
    """
    if not (is_enabled() or spans_enabled()):
        return None
    package: Dict[str, Any] = {}
    if is_enabled():
        package["metrics"] = get_registry().snapshot()
        traces = get_traces()
        if traces:
            package["traces"] = [t.to_dict() for t in traces]
    if spans_enabled():
        spans = get_spans()
        if spans:
            package["spans"] = spans
    return package


def merge_telemetry(package: Optional[Dict[str, Any]],
                    parent_span_id: Optional[str] = None) -> None:
    """Fold a worker's shipped telemetry into this process.

    Safe to call with None (worker had collectors off, or the chunk was
    recovered without telemetry after a worker crash).
    """
    if not package:
        return
    metrics = package.get("metrics")
    if metrics:
        get_registry().merge_snapshot(metrics)
    spans = package.get("spans")
    if spans:
        merge_spans(spans, parent_id=parent_span_id)
    for data in package.get("traces", []):
        register_trace(ConvergenceTrace.from_dict(data))
