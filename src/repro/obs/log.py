"""Structured logging on top of stdlib :mod:`logging`.

All library loggers live under the ``"repro"`` namespace and are silent
until :func:`configure_logging` (usually via :func:`repro.obs.configure`)
attaches a handler — so importing the library never touches a process's
logging configuration.  The optional JSON-lines formatter emits one JSON
object per record, with any mapping passed as ``extra={"fields": {...}}``
merged into the object.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional, TextIO

__all__ = [
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "unconfigure_logging",
]

ROOT_LOGGER = "repro"

_HANDLER: Optional[logging.Handler] = None


class JsonLinesFormatter(logging.Formatter):
    """Format records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the library's ``repro`` namespace."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(ROOT_LOGGER + "." + name)


def configure_logging(level: str = "INFO", json_lines: bool = False,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach one handler to the ``repro`` logger and set its level.

    Re-configuring replaces the previously attached handler, so repeated
    calls (tests, notebooks) never stack duplicate output.
    """
    root = logging.getLogger(ROOT_LOGGER)
    unconfigure_logging()
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
    root.addHandler(handler)
    root.setLevel(level.upper() if isinstance(level, str) else level)
    root.propagate = False
    global _HANDLER
    _HANDLER = handler
    return root


def unconfigure_logging() -> None:
    """Detach the handler installed by :func:`configure_logging`."""
    global _HANDLER
    if _HANDLER is not None:
        logging.getLogger(ROOT_LOGGER).removeHandler(_HANDLER)
        _HANDLER = None
