"""repro.obs — structured run telemetry for every iterative solver.

Three pillars, all inert until configured:

* a process-wide **metrics registry** (:mod:`repro.obs.registry`) with
  counters, gauges, and histogram timers plus a near-zero-overhead
  :func:`timed` context manager;
* a **convergence tracer** (:mod:`repro.obs.tracer`) recording
  per-iteration log-likelihood / residual, iteration wall-time, and the
  termination reason of every iterative loop;
* a **structured logger** (:mod:`repro.obs.log`) and a versioned **run
  report** (:mod:`repro.obs.report`) aggregating metrics, traces, and
  config for a whole pipeline run.

Typical use::

    import repro.obs as obs

    obs.configure(level="INFO", trace_path="trace.jsonl",
                  report_path="report.json")
    result = LatentEntityMiner(config).fit(corpus)   # writes report.json
    obs.get_traces("cathy.hin_em")[0].series("log_likelihood")

With :func:`configure` never called, every instrumented hot loop pays a
single flag check per call site and allocates nothing.

Metric names are dotted lowercase (``solver.metric_name``); the
convention is machine-enforced by ``repro lint`` rule RL005, and this
package (with :mod:`repro.serve`) is the only place allowed to read the
wall clock under rule RL002.
"""

from __future__ import annotations

from typing import Optional

from .log import (JsonLinesFormatter, configure_logging, get_logger,
                  unconfigure_logging)
from .registry import (MetricsRegistry, TimerStats, get_registry, inc,
                       is_enabled, observe, reset_metrics, set_enabled,
                       set_gauge, timed, timed_function)
from .report import (REPORT_SCHEMA, build_run_report, get_report_path,
                     set_report_path, validate_report, write_report)
from .tracer import (ConvergenceTrace, clear_traces, get_trace_path,
                     get_traces, set_trace_path, trace)

__all__ = [
    "ConvergenceTrace",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "REPORT_SCHEMA",
    "TimerStats",
    "build_run_report",
    "clear_traces",
    "configure",
    "configure_logging",
    "get_logger",
    "get_registry",
    "get_report_path",
    "get_trace_path",
    "get_traces",
    "inc",
    "is_enabled",
    "observe",
    "reset",
    "reset_metrics",
    "set_enabled",
    "set_gauge",
    "set_report_path",
    "set_trace_path",
    "timed",
    "timed_function",
    "trace",
    "validate_report",
    "write_report",
]


def configure(level: Optional[str] = None,
              trace_path: Optional[str] = None,
              report_path: Optional[str] = None,
              json_logs: bool = False,
              metrics: bool = True) -> None:
    """Single entry point switching observability on.

    Args:
        level: when given, attach a log handler at this level
            (``"DEBUG"`` / ``"INFO"`` / ...).
        trace_path: stream finished convergence traces to this JSON-lines
            file.
        report_path: where :meth:`LatentEntityMiner.fit` and the CLI
            write the aggregated run report.
        json_logs: emit log records as JSON lines instead of text.
        metrics: enable the metrics registry and tracer (default True).
    """
    if metrics:
        set_enabled(True)
    if level is not None:
        configure_logging(level, json_lines=json_logs)
    if trace_path is not None:
        set_trace_path(trace_path)
    if report_path is not None:
        set_report_path(report_path)


def reset() -> None:
    """Disable observability and drop all collected state (test helper)."""
    set_enabled(False)
    reset_metrics()
    clear_traces()
    set_trace_path(None)
    set_report_path(None)
    unconfigure_logging()
