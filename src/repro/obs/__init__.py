"""repro.obs — structured run telemetry for every iterative solver.

Five pillars, all inert until configured:

* a process-wide **metrics registry** (:mod:`repro.obs.registry`) with
  counters, gauges, and quantile-sketch timers (p50/p90/p99) plus a
  near-zero-overhead :func:`timed` context manager; registries merge
  across processes via :meth:`MetricsRegistry.merge_snapshot`;
* **span tracing** (:mod:`repro.obs.spans`): nested wall/CPU-time spans
  with stable IDs and parent links, merged across pmap workers and
  exportable to Chrome ``trace_event`` JSON (``repro trace-export``);
* a **convergence tracer** (:mod:`repro.obs.tracer`) recording
  per-iteration log-likelihood / residual, iteration wall-time, and the
  termination reason of every iterative loop;
* opt-in **profiling** (:mod:`repro.obs.profile`): per-span peak-RSS
  and ``tracemalloc`` deltas plus a ranked self-time profile report;
* a **structured logger** (:mod:`repro.obs.log`) and a versioned **run
  report** (:mod:`repro.obs.report`) aggregating metrics, spans,
  traces, resource usage, and config for a whole pipeline run.

Typical use::

    import repro.obs as obs

    obs.configure(level="INFO", trace_path="trace.jsonl",
                  report_path="report.json", spans=True)
    result = LatentEntityMiner(config).fit(corpus)   # writes report.json
    obs.get_traces("cathy.hin_em")[0].series("log_likelihood")
    obs.to_chrome_trace(obs.get_spans())             # chrome://tracing

With :func:`configure` never called, every instrumented hot loop pays a
single flag check per call site and allocates nothing.

Metric names are dotted lowercase (``solver.metric_name``); the
convention is machine-enforced by ``repro lint`` rule RL005, and this
package (with :mod:`repro.serve`) is the only place allowed to read the
wall clock under rule RL002.
"""

from __future__ import annotations

from typing import Optional

from .log import (JsonLinesFormatter, configure_logging, get_logger,
                  unconfigure_logging)
from .profile import (PROFILE_SCHEMA, build_profile_report, cpu_time_s,
                      peak_rss_bytes, profiling_enabled,
                      set_profiling_enabled, validate_profile_report,
                      write_profile_report)
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prometheus import render_prometheus
from .propagate import (apply_observability_state, capture_telemetry,
                        merge_telemetry, observability_state)
from .registry import (MetricsRegistry, QuantileSketch, TimerStats,
                       get_registry, inc, is_enabled, observe,
                       reset_metrics, set_enabled, set_gauge, timed,
                       timed_function)
from .report import (REPORT_SCHEMA, REPORT_SCHEMA_V1, build_run_report,
                     cache_ratios,
                     get_report_path, set_report_path, upgrade_report,
                     validate_report, write_report)
from .spans import (SpanHandle, clear_spans, current_span_id,
                    current_trace_id, from_chrome_trace, get_spans,
                    merge_spans, reset_spans, self_times,
                    set_spans_enabled, set_trace_id, span, span_totals,
                    spans_enabled, spans_from_jsonl, to_chrome_trace,
                    top_spans)
from .tracer import (ConvergenceTrace, clear_traces, get_trace_path,
                     get_traces, register_trace, set_trace_path, trace)

__all__ = [
    "ConvergenceTrace",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "PROMETHEUS_CONTENT_TYPE",
    "QuantileSketch",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_V1",
    "SpanHandle",
    "TimerStats",
    "apply_observability_state",
    "build_profile_report",
    "build_run_report",
    "cache_ratios",
    "capture_telemetry",
    "clear_spans",
    "clear_traces",
    "configure",
    "configure_logging",
    "cpu_time_s",
    "current_span_id",
    "current_trace_id",
    "from_chrome_trace",
    "get_logger",
    "get_registry",
    "get_report_path",
    "get_spans",
    "get_trace_path",
    "get_traces",
    "inc",
    "is_enabled",
    "merge_spans",
    "merge_telemetry",
    "observability_state",
    "observe",
    "peak_rss_bytes",
    "profiling_enabled",
    "register_trace",
    "render_prometheus",
    "reset",
    "reset_metrics",
    "reset_spans",
    "self_times",
    "set_enabled",
    "set_gauge",
    "set_profiling_enabled",
    "set_report_path",
    "set_spans_enabled",
    "set_trace_id",
    "set_trace_path",
    "span",
    "span_totals",
    "spans_enabled",
    "spans_from_jsonl",
    "timed",
    "timed_function",
    "to_chrome_trace",
    "top_spans",
    "trace",
    "upgrade_report",
    "validate_profile_report",
    "validate_report",
    "write_profile_report",
    "write_report",
]


def configure(level: Optional[str] = None,
              trace_path: Optional[str] = None,
              report_path: Optional[str] = None,
              json_logs: bool = False,
              metrics: bool = True,
              spans: Optional[bool] = None,
              profile: bool = False) -> None:
    """Single entry point switching observability on.

    Args:
        level: when given, attach a log handler at this level
            (``"DEBUG"`` / ``"INFO"`` / ...).
        trace_path: stream finished convergence traces and spans to
            this JSON-lines file.
        report_path: where :meth:`LatentEntityMiner.fit` and the CLI
            write the aggregated run report.
        json_logs: emit log records as JSON lines instead of text.
        metrics: enable the metrics registry and tracer (default True).
        spans: enable span tracing; defaults to on whenever a trace
            path is given or profiling is requested (profiling hooks
            fire per span, so they need spans to attach to).
        profile: install per-span RSS/allocation profiling hooks.
    """
    if metrics:
        set_enabled(True)
    if level is not None:
        configure_logging(level, json_lines=json_logs)
    if trace_path is not None:
        set_trace_path(trace_path)
    if spans is None:
        spans = trace_path is not None or profile
    if spans:
        set_spans_enabled(True)
    if profile:
        set_profiling_enabled(True)
    if report_path is not None:
        set_report_path(report_path)


def reset() -> None:
    """Disable observability and drop all collected state (test helper)."""
    set_profiling_enabled(False)
    set_enabled(False)
    reset_metrics()
    clear_traces()
    reset_spans()
    set_trace_path(None)
    set_report_path(None)
    unconfigure_logging()
