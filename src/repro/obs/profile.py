"""Opt-in profiling: per-span memory deltas and a ranked profile report.

Profiling piggybacks on span tracing: :func:`set_profiling_enabled`
installs hooks into :mod:`repro.obs.spans` (injected callables — the
two modules must not import each other) that stamp every finished span
with its peak-RSS watermark and the ``tracemalloc`` allocation delta
across the span.  Both measurements are process-wide, so a span's
numbers include whatever its children did — exactly what the self-time
ranking in :func:`build_profile_report` needs.

Costs are honest: ``tracemalloc`` typically slows allocation-heavy code
by 2-4x, which is why profiling is opt-in (``--profile``) and separate
from span tracing (``--trace``), which stays cheap.

The profile report (``repro.obs/profile/v1``) ranks span names by
total self-time and carries the process peak RSS and CPU totals, so a
benchmark or CI artifact answers "where did this run spend time and
memory" without loading the full trace.
"""

from __future__ import annotations

import resource
import sys
import time
import tracemalloc
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..contracts import PROFILE_V1
from ..errors import DataError
from .spans import get_spans, set_profile_hooks, top_spans

__all__ = [
    "PROFILE_SCHEMA",
    "build_profile_report",
    "cpu_time_s",
    "peak_rss_bytes",
    "profiling_enabled",
    "set_profiling_enabled",
    "validate_profile_report",
    "write_profile_report",
]

PROFILE_SCHEMA = PROFILE_V1

_PROFILING = False

#: ru_maxrss unit: bytes on macOS, kilobytes everywhere else.
_RSS_SCALE = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * _RSS_SCALE


def cpu_time_s() -> float:
    """Total CPU seconds (user+system) of this process and its reaped
    children — worker CPU counts once the pool has shut down."""
    own = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    return (own.ru_utime + own.ru_stime
            + children.ru_utime + children.ru_stime)


def profiling_enabled() -> bool:
    """True when the per-span profiling hooks are installed."""
    return _PROFILING


def set_profiling_enabled(enabled: bool) -> None:
    """Install or remove the per-span profiling hooks.

    Enabling starts ``tracemalloc`` (if not already tracing); disabling
    stops it only if this module started it, so an outer profiler's
    tracing session is left alone.
    """
    global _PROFILING, _STARTED_TRACEMALLOC
    enabled = bool(enabled)
    if enabled == _PROFILING:
        return
    _PROFILING = enabled
    if enabled:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _STARTED_TRACEMALLOC = True
        set_profile_hooks(_span_start, _span_end)
    else:
        set_profile_hooks(None, None)
        if _STARTED_TRACEMALLOC and tracemalloc.is_tracing():
            tracemalloc.stop()
        _STARTED_TRACEMALLOC = False


_STARTED_TRACEMALLOC = False


def _span_start() -> Tuple[int, int]:
    """Profiling start hook: (traced bytes now, peak RSS now)."""
    current = tracemalloc.get_traced_memory()[0] \
        if tracemalloc.is_tracing() else 0
    return current, peak_rss_bytes()


def _span_end(token: Any) -> Dict[str, Any]:
    """Profiling end hook: fields merged into the finished record."""
    if not isinstance(token, tuple):
        return {}
    start_traced, _ = token
    current = tracemalloc.get_traced_memory()[0] \
        if tracemalloc.is_tracing() else 0
    return {
        "rss_peak_bytes": peak_rss_bytes(),
        "alloc_bytes": current - start_traced,
    }


def build_profile_report(records: Optional[Iterable[Dict[str, Any]]]
                         = None,
                         config: Optional[Dict[str, Any]] = None,
                         limit: int = 25) -> Dict[str, Any]:
    """Rank span names by self-time into a ``repro.obs/profile/v1`` doc.

    Args:
        records: span records to profile (default: every finished span).
        config: run configuration echoed into the report.
        limit: how many ranked span names to keep.
    """
    from .. import get_version
    from .report import _jsonable

    batch = list(records) if records is not None else get_spans()
    return {
        "schema": PROFILE_SCHEMA,
        "generated_unix": time.time(),
        "repro_version": get_version(),
        "config": _jsonable(config or {}),
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_time_s": cpu_time_s(),
        "num_spans": len(batch),
        "spans": top_spans(batch, limit=limit),
    }


def write_profile_report(report: Dict[str, Any], path: str) -> None:
    """Write a profile report as indented JSON (atomic replace)."""
    from ..resilience.atomic import atomic_write_json

    atomic_write_json(path, report, indent=2, default=repr,
                      trailing_newline=True)


def validate_profile_report(data: Dict[str, Any]) -> None:
    """Check ``data`` against the profile-report schema.

    Raises:
        DataError: on any structural mismatch, with a one-line reason.
    """
    if not isinstance(data, dict):
        raise DataError("profile report must be a JSON object")
    if data.get("schema") != PROFILE_SCHEMA:
        raise DataError(
            f"unsupported profile schema: {data.get('schema')!r}")
    for key in ("peak_rss_bytes", "cpu_time_s", "num_spans"):
        if not isinstance(data.get(key), (int, float)):
            raise DataError(f"profile field {key!r} must be a number")
    spans: Any = data.get("spans")
    if not isinstance(spans, list):
        raise DataError("profile field 'spans' must be an array")
    rows: List[Any] = spans
    for row in rows:
        if not isinstance(row, dict):
            raise DataError("every profile span row must be an object")
        for key in ("name", "count", "total_s", "self_s"):
            if key not in row:
                raise DataError(f"profile span row missing {key!r}")
