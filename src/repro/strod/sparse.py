"""Sparse second-moment whitening for large vocabularies (Section 7.3.2).

The dense M2 of :mod:`repro.strod.moments` is O(V^2) memory.  For large
vocabularies the pair-count matrix is sparse (documents touch few
words), and the Dirichlet correction is a rank-one update — so the top-k
eigendecomposition needed for whitening can run on a
``LinearOperator`` that never materializes M2:

    M2 @ v  =  S @ v  -  c * m1 * (m1 @ v),      c = alpha0/(alpha0+1)

with S the sparse debiased pair-moment matrix.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import LinearOperator, eigsh

from ..errors import ConfigurationError
from .moments import first_moment


def sparse_pair_moment(rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                       vocab_size: int) -> csr_matrix:
    """The empirical E[x1 (x) x2] as a sparse symmetric matrix.

    Per document: (c c^T - diag(c)) / (l (l-1)), accumulated in COO
    triplets over the document's distinct words only.
    """
    data, row_idx, col_idx = [], [], []
    num_docs = max(len(rows), 1)
    for ids, counts in rows:
        length = counts.sum()
        denom = length * (length - 1) * num_docs
        outer = np.outer(counts, counts)
        outer[np.diag_indices_from(outer)] -= counts
        outer /= denom
        n = len(ids)
        row_idx.append(np.repeat(ids, n))
        col_idx.append(np.tile(ids, n))
        data.append(outer.ravel())
    if not data:
        return csr_matrix((vocab_size, vocab_size))
    matrix = coo_matrix(
        (np.concatenate(data),
         (np.concatenate(row_idx), np.concatenate(col_idx))),
        shape=(vocab_size, vocab_size))
    return matrix.tocsr()


def compute_whitener_sparse(rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                            vocab_size: int,
                            alpha0: float,
                            num_topics: int,
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whitening matrices from the implicit (sparse + rank-one) M2.

    Returns (whitener W, unwhitener B, m1); W and B satisfy the same
    contracts as :func:`repro.strod.moments.compute_whitener`.
    """
    if num_topics >= vocab_size:
        raise ConfigurationError("num_topics must be < vocab_size")
    pair = sparse_pair_moment(rows, vocab_size)
    m1 = first_moment(rows, vocab_size)
    correction = alpha0 / (alpha0 + 1)

    def matvec(vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector).ravel()
        return pair @ vector - correction * m1 * float(m1 @ vector)

    operator = LinearOperator((vocab_size, vocab_size), matvec=matvec,
                              rmatvec=matvec, dtype=float)
    eigenvalues, eigenvectors = eigsh(operator, k=num_topics, which="LA")
    order = np.argsort(eigenvalues)[::-1]
    top_values = np.maximum(eigenvalues[order], 1e-12)
    top_vectors = eigenvectors[:, order]
    whitener = top_vectors / np.sqrt(top_values)[None, :]
    unwhitener = top_vectors * np.sqrt(top_values)[None, :]
    return whitener, unwhitener, m1
