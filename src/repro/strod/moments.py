"""Empirical word moments for moment-based LDA inference (Section 7.3.1).

For LDA with Dirichlet prior alpha (alpha0 = sum(alpha)) the population
moments satisfy

    M2 = E[x1 (x) x2] - alpha0/(alpha0+1) M1 (x) M1
       = sum_z  pi_z      mu_z (x) mu_z,        pi_z  = a_z/(a0 (a0+1))
    M3 = E[x1 (x) x2 (x) x3] - (cross terms)  = sum_z pit_z mu_z^(x)3,
                                       pit_z = 2 a_z/(a0 (a0+1) (a0+2))

where x1, x2, x3 are distinct word draws of one document.  The empirical
estimators debias repeated-word effects with the standard count-correction
identities; M3 is never materialized — it is only ever *applied* to the
(V, k) whitening matrix, which is the scalability improvement of
Section 7.3.2 (per-document cost O(nnz * k + k^3)).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..contracts import MOMENT_SKETCH_V1
from ..errors import ConfigurationError, DataError


def word_count_rows(docs: Sequence[Sequence[int]], vocab_size: int,
                    min_length: int = 3) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-document sparse counts: (word ids, counts), filtering short docs.

    Documents with fewer than ``min_length`` tokens cannot contribute to
    the third moment and are dropped (the estimator needs three distinct
    draws).
    """
    rows = []
    for doc in docs:
        doc = np.asarray(doc, dtype=np.int64)
        if len(doc) < min_length:
            continue
        if len(doc) and (doc.min() < 0 or doc.max() >= vocab_size):
            raise DataError("token id outside vocabulary")
        ids, counts = np.unique(doc, return_counts=True)
        rows.append((ids, counts.astype(float)))
    return rows


MOMENT_SKETCH_SCHEMA = MOMENT_SKETCH_V1


class MomentSketch:
    """Mergeable, exactly-associative sketch of the STROD word moments.

    The M1/M2/M3 estimators are *averages over documents*, so the only
    state a shard needs to contribute is its per-document count rows.
    Floating-point addition is not associative, which rules out carrying
    partial moment sums if merges must be exact; instead the sketch
    stores the rows themselves (in arrival order) and evaluates moments
    lazily.  Merging is then row concatenation — exactly associative,
    and a sketch built over the whole corpus is bit-identical to the
    in-order merge of per-shard sketches (mirroring the
    ``repro.obs.QuantileSketch`` merge contract from PR 6).

    Row storage is O(total distinct words per doc); the dense moments
    are only materialized on demand, so shard partials stay cheap to
    build in workers, pickle, and checkpoint.
    """

    def __init__(self, vocab_size: int, min_length: int = 3) -> None:
        if vocab_size <= 0:
            raise ConfigurationError("vocab_size must be positive")
        if min_length < 3:
            raise ConfigurationError(
                "min_length must be >= 3: the third-moment estimator "
                "needs three distinct word draws per document")
        self.vocab_size = int(vocab_size)
        self.min_length = int(min_length)
        self.num_skipped = 0
        self._rows: List[Tuple[np.ndarray, np.ndarray]] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def from_docs(cls, docs: Sequence[Sequence[int]], vocab_size: int,
                  min_length: int = 3) -> "MomentSketch":
        sketch = cls(vocab_size, min_length=min_length)
        sketch.update(docs)
        return sketch

    def update(self, docs: Sequence[Sequence[int]]) -> int:
        """Absorb a batch of encoded documents; returns rows added."""
        added = 0
        for doc in docs:
            arr = np.asarray(doc, dtype=np.int64)
            if len(arr) < self.min_length:
                self.num_skipped += 1
                continue
            if arr.min() < 0 or arr.max() >= self.vocab_size:
                raise DataError("token id outside vocabulary")
            ids, counts = np.unique(arr, return_counts=True)
            self._rows.append((ids, counts.astype(float)))
            added += 1
        return added

    def expand_vocab(self, vocab_size: int) -> None:
        """Grow the vocabulary (streams only ever append new words)."""
        if vocab_size < self.vocab_size:
            raise ConfigurationError(
                "cannot shrink a moment sketch vocabulary "
                f"({self.vocab_size} -> {vocab_size})")
        self.vocab_size = int(vocab_size)

    # -- merge (the associativity contract) -----------------------------

    def merge(self, other: "MomentSketch") -> "MomentSketch":
        """Pure merge: row concatenation, so exactly associative.

        Neither input is mutated.  Vocabularies may differ (a later
        shard sees a grown vocab); the result takes the larger one.
        """
        if other.min_length != self.min_length:
            raise ConfigurationError(
                "cannot merge moment sketches with different min_length")
        merged = MomentSketch(max(self.vocab_size, other.vocab_size),
                              min_length=self.min_length)
        merged._rows = self._rows + other._rows
        merged.num_skipped = self.num_skipped + other.num_skipped
        return merged

    # -- views ----------------------------------------------------------

    @property
    def num_docs(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """The per-document count rows, in arrival order (do not mutate)."""
        return self._rows

    # -- moments --------------------------------------------------------

    def first_moment(self) -> np.ndarray:
        return first_moment(self._rows, self.vocab_size)

    def second_moment(self, alpha0: float) -> np.ndarray:
        return second_moment(self._rows, self.vocab_size, alpha0)

    def whitened_third_moment(self, whitener: np.ndarray,
                              alpha0: float) -> np.ndarray:
        return whitened_third_moment(self._rows, whitener,
                                     self.first_moment(), alpha0)

    # -- persistence ----------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Flat-array snapshot for checkpointing (see repro.stream)."""
        if self._rows:
            ids = np.concatenate([ids for ids, _ in self._rows])
            counts = np.concatenate([counts for _, counts in self._rows])
            lengths = [len(row_ids) for row_ids, _ in self._rows]
        else:
            ids = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0)
            lengths = []
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return {
            "schema": MOMENT_SKETCH_SCHEMA,
            "vocab_size": self.vocab_size,
            "min_length": self.min_length,
            "num_skipped": self.num_skipped,
            "row_ids": ids,
            "row_counts": counts,
            "row_offsets": offsets,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MomentSketch":
        if state.get("schema") != MOMENT_SKETCH_SCHEMA:
            raise DataError(
                "state does not hold a moment-sketch document "
                f"(schema={state.get('schema')!r})")
        sketch = cls(int(state["vocab_size"]),
                     min_length=int(state["min_length"]))
        sketch.num_skipped = int(state["num_skipped"])
        ids = np.asarray(state["row_ids"], dtype=np.int64)
        counts = np.asarray(state["row_counts"], dtype=float)
        offsets = np.asarray(state["row_offsets"], dtype=np.int64)
        for start, stop in zip(offsets[:-1], offsets[1:]):
            sketch._rows.append((ids[start:stop].copy(),
                                 counts[start:stop].copy()))
        return sketch

    def fingerprint(self) -> str:
        """Content hash tying derived artifacts to this exact sketch."""
        state = self.to_state()
        crc = 0
        for key in ("row_ids", "row_counts", "row_offsets"):
            crc = zlib.crc32(np.ascontiguousarray(state[key]).tobytes(), crc)
        return (f"v{self.vocab_size}-d{self.num_docs}"
                f"-s{self.num_skipped}-{crc & 0xFFFFFFFF:08x}")


def first_moment(rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                 vocab_size: int) -> np.ndarray:
    """M1: the expected single-word distribution."""
    m1 = np.zeros(vocab_size)
    for ids, counts in rows:
        length = counts.sum()
        m1[ids] += counts / length
    return m1 / max(len(rows), 1)


def second_moment(rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                  vocab_size: int, alpha0: float) -> np.ndarray:
    """M2 (dense, V x V): pair moment with the Dirichlet correction.

    E[x1 (x) x2] is estimated per document as
    (c c^T - diag(c)) / (l (l-1)) — the unbiased estimator over ordered
    pairs of *distinct* token positions.
    """
    pair = np.zeros((vocab_size, vocab_size))
    for ids, counts in rows:
        length = counts.sum()
        denom = length * (length - 1)
        outer = np.outer(counts, counts)
        outer[np.diag_indices_from(outer)] -= counts
        pair[np.ix_(ids, ids)] += outer / denom
    pair /= max(len(rows), 1)
    m1 = first_moment(rows, vocab_size)
    return pair - (alpha0 / (alpha0 + 1)) * np.outer(m1, m1)


def whitened_third_moment(rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                          whitener: np.ndarray,
                          m1: np.ndarray,
                          alpha0: float) -> np.ndarray:
    """T = M3(W, W, W) in R^{k x k x k} without materializing M3.

    Uses the debiased per-document estimator of E[x1 (x) x2 (x) x3]

        [ y^(x)3  -  sum_i c_i (w_i (x) w_i (x) y + perms)
                  + 2 sum_i c_i w_i^(x)3 ] / (l (l-1) (l-2))

    with y = W^T c and w_i the i-th row of W, followed by the alpha0
    cross-term and M1^(x)3 corrections, all in the whitened k-dim space.
    """
    k = whitener.shape[1]
    tensor = np.zeros((k, k, k))
    pair_with_m1 = np.zeros((k, k))   # E[x1 (x) x2] (W, W) for cross terms
    num_docs = len(rows)
    if num_docs == 0:
        raise DataError("no documents long enough for third-moment estimation")

    for ids, counts in rows:
        length = counts.sum()
        w_rows = whitener[ids]                        # (n, k)
        y = w_rows.T @ counts                         # (k,)

        # Third-moment core.
        denom3 = length * (length - 1) * (length - 2)
        yyy = np.einsum("i,j,l->ijl", y, y, y)
        cw = w_rows * counts[:, None]                 # c_i * w_i rows
        wwy = np.einsum("ni,nj,l->ijl", cw, w_rows, y)
        wyw = np.einsum("ni,j,nl->ijl", cw, y, w_rows)
        yww = np.einsum("i,nj,nl->ijl", y, cw, w_rows)
        www = np.einsum("ni,nj,nl->ijl", cw, w_rows, w_rows)
        tensor += (yyy - (wwy + wyw + yww) + 2.0 * www) / denom3

        # Pair moment in whitened space (for the M1 cross terms).
        denom2 = length * (length - 1)
        pair_with_m1 += (np.outer(y, y) - w_rows.T @ cw) / denom2

    tensor /= num_docs
    pair_with_m1 /= num_docs

    wm1 = whitener.T @ m1                             # (k,)
    c1 = alpha0 / (alpha0 + 2)
    cross = (np.einsum("ij,l->ijl", pair_with_m1, wm1)
             + np.einsum("il,j->ijl", pair_with_m1, wm1)
             + np.einsum("jl,i->ijl", pair_with_m1, wm1))
    m1_cube = np.einsum("i,j,l->ijl", wm1, wm1, wm1)
    c2 = 2.0 * alpha0 ** 2 / ((alpha0 + 1) * (alpha0 + 2))
    return tensor - c1 * cross + c2 * m1_cube


def compute_whitener(m2: np.ndarray, num_topics: int,
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Whitening matrix W and un-whitening matrix B from M2.

    W = U S^{-1/2} over the top-k eigenpairs, so W^T M2 W = I_k;
    B = U S^{1/2} satisfies B v = (W^T)^+ v, mapping whitened
    eigenvectors back to the word simplex.
    """
    # M2 is symmetric; eigh returns ascending eigenvalues.
    eigenvalues, eigenvectors = np.linalg.eigh(m2)
    order = np.argsort(eigenvalues)[::-1][:num_topics]
    top_values = np.maximum(eigenvalues[order], 1e-12)
    top_vectors = eigenvectors[:, order]
    whitener = top_vectors / np.sqrt(top_values)[None, :]
    unwhitener = top_vectors * np.sqrt(top_values)[None, :]
    return whitener, unwhitener
