"""STROD: scalable and robust moment-based topic discovery (Chapter 7)."""

from .hierarchy import STRODHierarchyBuilder, STRODTreeConfig
from .moments import (MOMENT_SKETCH_SCHEMA, MomentSketch, compute_whitener,
                      first_moment, second_moment, whitened_third_moment,
                      word_count_rows)
from .sparse import compute_whitener_sparse, sparse_pair_moment
from .strod import STROD, STRODModel
from .tensor_power import (TensorEigenpair, power_iteration,
                           reconstruction_error,
                           robust_tensor_decomposition, tensor_apply,
                           tensor_value)

__all__ = [
    "STROD",
    "STRODModel",
    "STRODHierarchyBuilder",
    "STRODTreeConfig",
    "MOMENT_SKETCH_SCHEMA",
    "MomentSketch",
    "first_moment",
    "second_moment",
    "whitened_third_moment",
    "compute_whitener",
    "compute_whitener_sparse",
    "sparse_pair_moment",
    "word_count_rows",
    "robust_tensor_decomposition",
    "power_iteration",
    "tensor_apply",
    "tensor_value",
    "reconstruction_error",
    "TensorEigenpair",
]
