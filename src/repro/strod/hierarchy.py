"""Recursive topic-tree construction with STROD (Section 7.2).

Chapter 7 replaces CATHY's EM clustering with moment-based inference to
scale the recursive hierarchy construction: STROD is run at the root,
documents are assigned to their dominant subtopic, and the construction
recurses into each subtopic's document subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..corpus import Corpus
from ..hierarchy import Topic, TopicalHierarchy
from ..utils import RandomState, ensure_rng
from .strod import STROD


@dataclass
class STRODTreeConfig:
    """Knobs for :class:`STRODHierarchyBuilder`.

    Attributes:
        num_children: subtopics per node.
        max_depth: maximal topic level.
        min_documents: stop recursing below this subset size.
        alpha0: Dirichlet concentration per level (None learns it).
        num_restarts / num_iterations: tensor power budget.
    """

    num_children: int = 4
    max_depth: int = 2
    min_documents: int = 50
    alpha0: Optional[float] = 1.0
    num_restarts: int = 8
    num_iterations: int = 25


class STRODHierarchyBuilder:
    """Builds a topic tree by recursive moment-based inference."""

    def __init__(self, config: Optional[STRODTreeConfig] = None,
                 seed: RandomState = None) -> None:
        self.config = config or STRODTreeConfig()
        self._rng = ensure_rng(seed)

    def build(self, corpus: Corpus) -> TopicalHierarchy:
        """Construct the hierarchy for ``corpus``."""
        hierarchy = TopicalHierarchy()
        docs = [doc.tokens for doc in corpus]
        doc_ids = list(range(len(docs)))
        self._expand(hierarchy.root, corpus, docs, doc_ids, level=0)
        return hierarchy

    def _expand(self, topic: Topic, corpus: Corpus,
                docs: List[List[int]], doc_ids: List[int],
                level: int) -> None:
        config = self.config
        if level >= config.max_depth:
            return
        subset = [docs[i] for i in doc_ids]
        long_enough = [d for d in subset if len(d) >= 3]
        if len(long_enough) < max(config.min_documents,
                                  config.num_children):
            return

        estimator = STROD(num_topics=config.num_children,
                          alpha0=config.alpha0,
                          num_restarts=config.num_restarts,
                          num_iterations=config.num_iterations,
                          seed=self._rng)
        model = estimator.fit(subset, vocab_size=len(corpus.vocabulary))
        responsibilities = estimator.document_topics(subset)
        assignment = responsibilities.argmax(axis=1)

        vocabulary = corpus.vocabulary
        for z in range(config.num_children):
            phi_dict = {vocabulary.word_of(w): float(p)
                        for w, p in enumerate(model.phi[z]) if p > 1e-6}
            child = Topic(rho=float(model.alpha[z] / model.alpha.sum()),
                          phi={"term": phi_dict})
            topic.add_child(child)
            child_doc_ids = [doc_ids[i] for i in range(len(doc_ids))
                             if assignment[i] == z]
            self._expand(child, corpus, docs, child_doc_ids, level + 1)
