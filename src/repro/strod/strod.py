"""STROD: Scalable and Robust Topic Discovery (Sections 7.3.1–7.3.3).

The algorithm:

1. estimate the debiased second moment M2 and whiten it (k-dim space);
2. apply the third moment to the whitening matrix on the fly
   (never materializing the V^3 tensor — Section 7.3.2);
3. extract robust eigenpairs with the tensor power method;
4. recover topic-word distributions and Dirichlet weights in closed form:

       alpha_z = [ 2 sqrt(a0 (a0+1)) / ((a0+2) lambda_z) ]^2
       mu_z    = lambda_z (a0+2)/2 * B v_z

   (B the un-whitening matrix), then clip tiny negatives and renormalize;
5. optionally grid-search the hyperparameter alpha0 by tensor
   reconstruction error (Section 7.3.3).

Unlike Gibbs/variational inference, every step is deterministic given the
restart seeds and converges in a bounded number of iterations — the
robustness property benchmarked in Section 7.4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..obs import get_logger, set_gauge, span
from ..phrases.ranking import FlatTopicModel
from ..utils import EPS, RandomState, ensure_rng
from .moments import (compute_whitener, first_moment, second_moment,
                      whitened_third_moment, word_count_rows)
from .tensor_power import (TensorEigenpair, reconstruction_error,
                           robust_tensor_decomposition)

logger = get_logger("strod")


@dataclass
class STRODModel:
    """Recovered LDA parameters.

    Attributes:
        alpha: recovered Dirichlet parameters (k,), descending.
        phi: recovered topic-word matrix (k, V), rows sum to one.
        alpha0: the alpha0 used (supplied or learned).
        eigenvalues: tensor eigenvalues behind each topic.
        residual: tensor reconstruction error (fit diagnostic).
    """

    alpha: np.ndarray
    phi: np.ndarray
    alpha0: float
    eigenvalues: np.ndarray
    residual: float

    def to_flat(self) -> FlatTopicModel:
        """Export as the shared flat-model currency."""
        rho = self.alpha / max(self.alpha.sum(), EPS)
        return FlatTopicModel(rho=rho, phi=self.phi)


class STROD:
    """Moment-based LDA estimator.

    Args:
        num_topics: k.
        alpha0: Dirichlet concentration sum(alpha); when None it is
            learned by grid search (Section 7.3.3).
        alpha0_grid: candidate values for learning alpha0.
        num_restarts / num_iterations: tensor power method budget
            (L and N of Section 7.3.1).
        sparse: use the sparse-plus-rank-one whitening of Section 7.3.2
            (O(nnz) memory instead of O(V^2); required for large V).
        seed: RNG seed (tensor power restarts only).
    """

    def __init__(self, num_topics: int, alpha0: Optional[float] = 1.0,
                 alpha0_grid: Sequence[float] = (0.5, 1.0, 2.0, 5.0, 10.0),
                 num_restarts: int = 10, num_iterations: int = 30,
                 sparse: bool = False,
                 seed: RandomState = None) -> None:
        if num_topics < 2:
            raise ConfigurationError("num_topics must be >= 2")
        self.num_topics = num_topics
        self.alpha0 = alpha0
        self.alpha0_grid = tuple(alpha0_grid)
        self.num_restarts = num_restarts
        self.num_iterations = num_iterations
        self.sparse = sparse
        self._rng = ensure_rng(seed)
        self.model_: Optional[STRODModel] = None

    # ------------------------------------------------------------------- fit
    def fit(self, docs: Sequence[Sequence[int]], vocab_size: int,
            checkpoint=None, resume: bool = False) -> STRODModel:
        """Recover topics from token-id documents.

        Args:
            docs: token-id documents.
            vocab_size: V.
            checkpoint: optional
                :class:`~repro.resilience.CheckpointWriter` for the
                tensor power deflation (the only iterative stage; the
                moment computations are deterministic re-runs).  With
                ``alpha0=None`` the grid search ignores it — a single
                checkpoint file cannot disambiguate grid candidates.
            resume: continue from the checkpoint file when it exists.
        """
        rows = word_count_rows(docs, vocab_size)
        if len(rows) < self.num_topics:
            raise ConfigurationError(
                "need at least k documents of length >= 3")

        with span("strod.fit"):
            if self.alpha0 is not None:
                model = self._fit_alpha0(rows, vocab_size, self.alpha0,
                                         checkpoint=checkpoint,
                                         resume=resume)
            else:
                if checkpoint is not None:
                    logger.debug("alpha0 grid search ignores checkpointing")
                best = None
                for alpha0 in self.alpha0_grid:
                    candidate = self._fit_alpha0(rows, vocab_size, alpha0)
                    if best is None or candidate.residual < best.residual:
                        best = candidate
                model = best
        set_gauge("strod.residual", model.residual)
        set_gauge("strod.alpha0", model.alpha0)
        self.model_ = model
        return model

    def _fit_alpha0(self, rows, vocab_size: int, alpha0: float,
                    checkpoint=None, resume: bool = False) -> STRODModel:
        with span("strod.whitening"):
            if self.sparse:
                from .sparse import compute_whitener_sparse
                whitener, unwhitener, m1 = compute_whitener_sparse(
                    rows, vocab_size, alpha0, self.num_topics)
            else:
                m1 = first_moment(rows, vocab_size)
                m2 = second_moment(rows, vocab_size, alpha0)
                whitener, unwhitener = compute_whitener(m2, self.num_topics)
        with span("strod.third_moment"):
            tensor = whitened_third_moment(rows, whitener, m1, alpha0)
        with span("strod.tensor_decomposition"):
            pairs = robust_tensor_decomposition(
                tensor, self.num_topics, num_restarts=self.num_restarts,
                num_iterations=self.num_iterations, seed=self._rng,
                checkpoint=checkpoint, resume=resume)
        with span("strod.recovery"):
            residual = reconstruction_error(tensor, pairs)
            alpha, phi = self._recover(pairs, unwhitener, alpha0)
        return STRODModel(alpha=alpha, phi=phi, alpha0=alpha0,
                          eigenvalues=np.array([p.eigenvalue for p in pairs]),
                          residual=residual)

    def _recover(self, pairs: List[TensorEigenpair], unwhitener: np.ndarray,
                 alpha0: float):
        """Closed-form parameter recovery from the eigenpairs."""
        k = self.num_topics
        alpha = np.zeros(k)
        phi = np.zeros((k, unwhitener.shape[0]))
        scale = 2.0 * np.sqrt(alpha0 * (alpha0 + 1)) / (alpha0 + 2)
        for z, pair in enumerate(pairs):
            eigenvalue = max(pair.eigenvalue, EPS)
            alpha[z] = (scale / eigenvalue) ** 2
            mu = eigenvalue * (alpha0 + 2) / 2.0 * (
                unwhitener @ pair.eigenvector)
            # Eigenvectors are sign-ambiguous; pick the sign with positive
            # mass, clip residual negatives, renormalize to the simplex.
            if mu.sum() < 0:
                mu = -mu
            mu = np.maximum(mu, 0.0)
            total = mu.sum()
            phi[z] = mu / total if total > 0 else np.full(len(mu),
                                                          1.0 / len(mu))
        # Rescale alpha to match alpha0 exactly (recovery is exact only in
        # the infinite-sample limit).
        total_alpha = alpha.sum()
        if total_alpha > 0:
            alpha = alpha * (alpha0 / total_alpha)
        order = np.argsort(-alpha, kind="stable")
        return alpha[order], phi[order]

    # --------------------------------------------------------------- queries
    def require_model(self) -> STRODModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_

    def document_topics(self, docs: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-document topic responsibilities via one posterior fold-in.

        Words vote with p(z | w) proportional to alpha_z phi_z(w); the
        document distribution is the normalized vote total — the cheap
        deterministic assignment used by the recursive tree construction.
        """
        model = self.require_model()
        weights = model.alpha[:, None] * model.phi  # (k, V)
        weights = weights / np.maximum(weights.sum(axis=0, keepdims=True),
                                       EPS)
        result = np.zeros((len(docs), self.num_topics))
        for d, doc in enumerate(docs):
            if len(doc) == 0:
                result[d] = model.alpha / model.alpha.sum()
                continue
            votes = weights[:, np.asarray(doc, dtype=np.int64)].sum(axis=1)
            result[d] = votes / max(votes.sum(), EPS)
        return result
