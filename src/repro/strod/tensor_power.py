"""Robust tensor power method (Section 7.3.1, Algorithm of Anandkumar et al.).

Extracts the robust eigenpairs of a symmetric k x k x k tensor by power
iteration with random restarts and deflation.  This is the deterministic-
up-to-restarts core that gives STROD its bounded-iteration convergence
guarantee — the property the robustness experiments of Section 7.4.2
measure against Gibbs sampling's run-to-run variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import inc, span, trace
from ..utils import RandomState, ensure_rng


@dataclass
class TensorEigenpair:
    """One robust eigenpair (lambda, v) of the whitened tensor."""

    eigenvalue: float
    eigenvector: np.ndarray


def tensor_apply(tensor: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """T(I, v, v): contract the last two modes with ``vector``."""
    return np.einsum("ijl,j,l->i", tensor, vector, vector)


def tensor_value(tensor: np.ndarray, vector: np.ndarray) -> float:
    """T(v, v, v)."""
    return float(np.einsum("ijl,i,j,l->", tensor, vector, vector, vector))


def power_iteration(tensor: np.ndarray, start: np.ndarray,
                    num_iterations: int,
                    tracer: object = None) -> Tuple[np.ndarray, float]:
    """Run ``num_iterations`` tensor power updates from ``start``.

    With an active ``tracer`` (see :func:`repro.obs.trace`), records the
    per-iteration residual ``||v_new - v_old||`` — the convergence
    quantity behind STROD's bounded-iteration guarantee.
    """
    vector = start / max(np.linalg.norm(start), 1e-12)
    for _ in range(num_iterations):
        candidate = tensor_apply(tensor, vector)
        norm = np.linalg.norm(candidate)
        if norm < 1e-12:
            break
        updated = candidate / norm
        if tracer is not None and tracer.active:
            tracer.record(residual=float(np.linalg.norm(updated - vector)))
        vector = updated
    return vector, tensor_value(tensor, vector)


def robust_tensor_decomposition(tensor: np.ndarray,
                                num_components: int,
                                num_restarts: int = 10,
                                num_iterations: int = 30,
                                seed: RandomState = None,
                                checkpoint=None,
                                resume: bool = False,
                                ) -> List[TensorEigenpair]:
    """Deflation-based extraction of the top robust eigenpairs.

    Args:
        tensor: symmetric (k, k, k) array.
        num_components: how many eigenpairs to extract (usually k).
        num_restarts: L — random restarts per component; the best
            T(v, v, v) wins, making the outcome stable in practice.
        num_iterations: N — power updates per restart.
        seed: RNG seed or generator (restart initialization only).
        checkpoint: optional
            :class:`~repro.resilience.CheckpointWriter`; the extracted
            eigenpairs, the deflated working tensor, and the restart RNG
            state are persisted after every component, so a resumed call
            continues the deflation bit for bit.
        resume: continue from the checkpoint file when it exists.
    """
    if tensor.ndim != 3 or len({*tensor.shape}) != 1:
        raise ConfigurationError("tensor must be cubic (k, k, k)")
    rng = ensure_rng(seed)
    k = tensor.shape[0]
    if num_components > k:
        raise ConfigurationError("cannot extract more components than k")

    work = np.array(tensor)
    pairs: List[TensorEigenpair] = []
    start_component = 0
    if checkpoint is not None and resume:
        document = checkpoint.load()
        if document is not None:
            saved = document["state"]
            pairs = list(saved["pairs"])
            work = saved["work"]
            rng.bit_generator.state = saved["rng_state"]
            start_component = int(saved["component"])
    for component in range(start_component, num_components):
        with span("strod.tensor_power.component", component=component,
                  num_restarts=num_restarts):
            best_vector, best_value = None, -np.inf
            for _ in range(num_restarts):
                start = rng.standard_normal(k)
                vector, value = power_iteration(work, start,
                                                num_iterations)
                if value > best_value:
                    best_vector, best_value = vector, value
            inc("strod.power_restarts", num_restarts)
            # A few extra polishing iterations on the winner, traced so
            # the robustness experiments can see the residual decay.
            tracer = trace("strod.tensor_power", component=component,
                           num_restarts=num_restarts,
                           num_iterations=num_iterations)
            best_vector, best_value = power_iteration(work, best_vector,
                                                      num_iterations,
                                                      tracer=tracer)
            tracer.finish("completed")
            pairs.append(TensorEigenpair(eigenvalue=best_value,
                                         eigenvector=best_vector))
            work = work - best_value * np.einsum(
                "i,j,l->ijl", best_vector, best_vector, best_vector)
        if checkpoint is not None:
            checkpoint.maybe_save(component, lambda: {  # noqa: E731
                "pairs": list(pairs), "work": work,
                "rng_state": rng.bit_generator.state,
                "component": component + 1})
    return pairs


def reconstruction_error(tensor: np.ndarray,
                         pairs: List[TensorEigenpair]) -> float:
    """Frobenius norm of T - sum_z lambda_z v_z^(x)3 (fit diagnostic)."""
    residual = np.array(tensor)
    for pair in pairs:
        v = pair.eigenvector
        residual -= pair.eigenvalue * np.einsum("i,j,l->ijl", v, v, v)
    return float(np.linalg.norm(residual))
