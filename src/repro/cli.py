"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``generate`` — write a synthetic dataset (DBLP-style or NEWS-style)
  with ground truth to a JSON file.
* ``hierarchy`` — build and print a phrase-represented, entity-enriched
  topical hierarchy from a dataset file.
* ``phrases`` — run ToPMine and print each topic's ranked phrases.
* ``relations`` — mine advisor–advisee relations with TPFG and print
  the predictions (with accuracy when ground truth is available).
* ``strod`` — run moment-based topic discovery and print topic words.

Every command accepts ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .datasets import (DBLPConfig, NewsConfig, generate_dblp,
                       generate_news, load_dataset, save_dataset)


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="path to a dataset JSON file "
                                        "written by 'repro generate'")


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "dblp":
        dataset = generate_dblp(DBLPConfig(max_authors=args.max_authors),
                                seed=args.seed)
    else:
        dataset = generate_news(
            NewsConfig(num_stories=args.stories,
                       articles_per_story=args.articles), seed=args.seed)
    save_dataset(dataset, args.output)
    print(f"wrote {dataset.name}: {len(dataset.corpus)} documents, "
          f"{len(dataset.corpus.vocabulary)} terms -> {args.output}")
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from .core import LatentEntityMiner, MinerConfig

    dataset = load_dataset(args.dataset)
    num_children = [int(part) for part in args.children.split(",")]
    miner = LatentEntityMiner(
        MinerConfig(num_children=num_children,
                    max_depth=len(num_children),
                    weight_mode=args.weights), seed=args.seed)
    result = miner.fit(dataset.corpus)
    entity_types = dataset.corpus.entity_types()
    if args.json:
        print(result.hierarchy.to_json())
    else:
        print(result.render(max_phrases=args.top,
                            entity_types=entity_types, max_entities=3))
    return 0


def _cmd_phrases(args: argparse.Namespace) -> int:
    from .phrases import ToPMine, ToPMineConfig

    dataset = load_dataset(args.dataset)
    topmine = ToPMine(
        ToPMineConfig(num_topics=args.topics,
                      min_support=args.min_support,
                      merge_threshold=args.merge_threshold,
                      lda_iterations=args.iterations), seed=args.seed)
    result = topmine.fit(dataset.corpus)
    for t in range(args.topics):
        print(f"topic {t}: "
              + " / ".join(result.top_phrases(t, args.top,
                                              dataset.corpus)))
    return 0


def _cmd_relations(args: argparse.Namespace) -> int:
    from .relations import (CollaborationNetwork, TPFG,
                            build_candidate_graph, evaluate_predictions)

    dataset = load_dataset(args.dataset)
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    graph = build_candidate_graph(network)
    result = TPFG(max_iter=args.iterations).fit(graph)
    predictions = result.predictions(top_k=args.top_k, theta=args.theta)
    shown = 0
    for author in graph.authors:
        advisor = predictions.get(author)
        if advisor:
            print(f"{author}\t{advisor}\t"
                  f"{result.score(author, advisor):.3f}")
            shown += 1
        if args.limit and shown >= args.limit:
            break
    if dataset.ground_truth.advising:
        truth = {r.advisee: r.advisor
                 for r in dataset.ground_truth.advising}
        for author in network.authors:
            truth.setdefault(author, None)
        accuracy = evaluate_predictions(predictions, truth)
        print(f"# advisee accuracy {accuracy.advisee_accuracy:.3f} "
              f"({accuracy.num_advisees} advisees), "
              f"root accuracy {accuracy.root_accuracy:.3f}",
              file=sys.stderr)
    return 0


def _cmd_strod(args: argparse.Namespace) -> int:
    from .strod import STROD

    dataset = load_dataset(args.dataset)
    docs = [doc.tokens for doc in dataset.corpus]
    strod = STROD(num_topics=args.topics,
                  alpha0=args.alpha0 if args.alpha0 > 0 else None,
                  sparse=args.sparse, seed=args.seed)
    model = strod.fit(docs, len(dataset.corpus.vocabulary))
    vocabulary = dataset.corpus.vocabulary
    for z in range(args.topics):
        order = model.phi[z].argsort()[::-1][:args.top]
        words = [vocabulary.word_of(int(w)) for w in order]
        print(f"topic {z} (alpha={model.alpha[z]:.3f}): "
              + ", ".join(words))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mining latent entity structures (Wang, 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("kind", choices=["dblp", "news"])
    gen.add_argument("output")
    gen.add_argument("--max-authors", type=int, default=150)
    gen.add_argument("--stories", type=int, default=8)
    gen.add_argument("--articles", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    hier = sub.add_parser("hierarchy", help="build a topical hierarchy")
    _add_dataset_argument(hier)
    hier.add_argument("--children", default="6,3",
                      help="children per level, comma separated")
    hier.add_argument("--weights", default="learn",
                      choices=["equal", "norm", "learn"])
    hier.add_argument("--top", type=int, default=4)
    hier.add_argument("--json", action="store_true")
    hier.add_argument("--seed", type=int, default=0)
    hier.set_defaults(func=_cmd_hierarchy)

    phr = sub.add_parser("phrases", help="run ToPMine")
    _add_dataset_argument(phr)
    phr.add_argument("--topics", type=int, default=6)
    phr.add_argument("--min-support", type=int, default=5)
    phr.add_argument("--merge-threshold", type=float, default=2.0)
    phr.add_argument("--iterations", type=int, default=60)
    phr.add_argument("--top", type=int, default=8)
    phr.add_argument("--seed", type=int, default=0)
    phr.set_defaults(func=_cmd_phrases)

    rel = sub.add_parser("relations", help="mine advisor relations")
    _add_dataset_argument(rel)
    rel.add_argument("--iterations", type=int, default=20)
    rel.add_argument("--top-k", type=int, default=1)
    rel.add_argument("--theta", type=float, default=0.5)
    rel.add_argument("--limit", type=int, default=20)
    rel.add_argument("--seed", type=int, default=0)
    rel.set_defaults(func=_cmd_relations)

    strod = sub.add_parser("strod", help="moment-based topic discovery")
    _add_dataset_argument(strod)
    strod.add_argument("--topics", type=int, default=6)
    strod.add_argument("--alpha0", type=float, default=1.0,
                       help="Dirichlet concentration; <= 0 learns it")
    strod.add_argument("--sparse", action="store_true")
    strod.add_argument("--top", type=int, default=8)
    strod.add_argument("--seed", type=int, default=0)
    strod.set_defaults(func=_cmd_strod)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
