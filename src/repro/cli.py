"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``generate`` — write a synthetic dataset (DBLP-style or NEWS-style)
  with ground truth to a JSON file.
* ``hierarchy`` — build and print a phrase-represented, entity-enriched
  topical hierarchy from a dataset file.
* ``phrases`` — run ToPMine and print each topic's ranked phrases.
* ``relations`` — mine advisor–advisee relations with TPFG and print
  the predictions (with accuracy when ground truth is available).
* ``strod`` — run moment-based topic discovery and print topic words.
* ``export-model`` — fit the full pipeline and persist the result as a
  versioned model artifact (``--format v1`` canonical JSON or
  ``--format v2`` zero-copy mmap binary).
* ``migrate-model`` — re-encode an existing artifact in another format,
  losslessly (the manifest fingerprints carry over).
* ``ingest`` — append a JSONL batch of raw documents to a streaming
  shard store, fold it into the incremental moment sketch, and (per
  ``--refit-policy``) re-infer and export a fresh artifact (see
  :mod:`repro.stream`); repeated invocations against the same
  ``--shard-dir`` accumulate one stream.
* ``serve`` — answer topic / phrase / entity queries over HTTP from an
  exported model artifact (see :mod:`repro.serve`); ``--backend async``
  serves from an asyncio event loop with concurrent batch and sharded
  search fan-out (``--shards N``); ``POST /v1/admin/reload`` (or
  SIGHUP) hot-swaps to the latest artifact with zero dropped requests.
* ``trace-export`` — convert a ``--trace`` span stream (JSON lines) to
  Chrome ``trace_event`` JSON loadable in ``chrome://tracing``.

``fit`` is an alias of ``hierarchy`` (the full-pipeline fit).

``repro --version`` prints the library version (the same one stamped
into run reports, datasets, and model manifests).

Every command accepts ``--seed`` for reproducibility, ``--workers N``
for parallel execution (falling back to the ``REPRO_WORKERS``
environment variable; results are identical for every worker count
under the same seed), plus the observability flags ``--log-level``,
``--trace PATH`` (JSON-lines convergence traces and phase spans),
``--report PATH`` (aggregated run report; see :mod:`repro.obs.report`
for the schema), and ``--profile PATH`` (per-span peak-RSS and
allocation profiling; writes a ``repro.obs/profile/v1`` report ranking
spans by self time — see :mod:`repro.obs.profile`).

Crash recovery: ``--checkpoint-dir DIR`` makes the iterative solvers
persist their state there (atomically, at every iteration), and
``--resume`` continues a killed run from those files — producing the
same result, bit for bit, that the uninterrupted run would have.

Data and configuration errors print a one-line message to stderr and
exit with status 2 instead of a traceback.  Ctrl-C flushes the run
report (when requested) and exits with status 130; checkpoints already
on disk stay valid for ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import get_version, obs, parallel
from .datasets import (DBLPConfig, NewsConfig, generate_dblp,
                       generate_news, load_dataset, save_dataset)
from .errors import ReproError
from .resilience import checkpoint_in


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="path to a dataset JSON file "
                                        "written by 'repro generate'")


def _obs_parent() -> argparse.ArgumentParser:
    """Observability and execution flags shared by every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    execution = parent.add_argument_group("execution")
    execution.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel worker processes for hierarchy construction, EM "
             "restarts, and segmentation (default: the REPRO_WORKERS "
             "environment variable, else serial); results are identical "
             "for every worker count under the same seed")
    resilience = parent.add_argument_group("resilience")
    resilience.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist solver checkpoints in this directory so a killed "
             "run can be resumed (ignored by 'generate')")
    resilience.add_argument(
        "--resume", action="store_true",
        help="continue from checkpoints in --checkpoint-dir; the resumed "
             "run reproduces the uninterrupted one bit for bit")
    group = parent.add_argument_group("observability")
    group.add_argument("--log-level", default=None, metavar="LEVEL",
                       choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                       help="enable structured logging at this level")
    group.add_argument("--log-json", action="store_true",
                       help="emit log records as JSON lines")
    group.add_argument("--trace", default=None, metavar="PATH",
                       help="stream per-iteration convergence traces to "
                            "this JSON-lines file")
    group.add_argument("--report", default=None, metavar="PATH",
                       help="write an aggregated run report (metrics, "
                            "phase timings, traces) to this JSON file")
    group.add_argument("--profile", default=None, metavar="PATH",
                       help="record per-span peak RSS and allocation "
                            "deltas and write a profiling report "
                            "(spans ranked by self time) to this JSON "
                            "file; implies span collection")
    return parent


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "dblp":
        dataset = generate_dblp(DBLPConfig(max_authors=args.max_authors),
                                seed=args.seed)
    else:
        dataset = generate_news(
            NewsConfig(num_stories=args.stories,
                       articles_per_story=args.articles), seed=args.seed)
    save_dataset(dataset, args.output)
    print(f"wrote {dataset.name}: {len(dataset.corpus)} documents, "
          f"{len(dataset.corpus.vocabulary)} terms -> {args.output}")
    return 0


def _fit_pipeline(args: argparse.Namespace):
    """Shared fit driver for ``hierarchy`` and ``export-model``."""
    from .core import LatentEntityMiner, MinerConfig

    dataset = load_dataset(args.dataset)
    num_children = [int(part) for part in args.children.split(",")]
    miner = LatentEntityMiner(
        MinerConfig(num_children=num_children,
                    max_depth=len(num_children),
                    weight_mode=args.weights), seed=args.seed)
    result = miner.fit(dataset.corpus, checkpoint_dir=args.checkpoint_dir,
                       resume=args.resume)
    return miner, dataset, result


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    _, dataset, result = _fit_pipeline(args)
    entity_types = dataset.corpus.entity_types()
    if args.json:
        print(result.hierarchy.to_json())
    else:
        print(result.render(max_phrases=args.top,
                            entity_types=entity_types, max_entities=3))
    return 0


def _cmd_export_model(args: argparse.Namespace) -> int:
    miner, _, result = _fit_pipeline(args)
    manifest = miner.save_model(result, args.output, format=args.format)
    print(f"exported {manifest['num_topics']} topics "
          f"({manifest['vocab_size']} terms, repro "
          f"{manifest['repro_version']}, format {args.format}) "
          f"-> {args.output}")
    return 0


def _cmd_migrate_model(args: argparse.Namespace) -> int:
    from .serve import migrate_model

    manifest = migrate_model(args.model, args.output, format=args.to)
    print(f"migrated {args.model} -> {args.output} "
          f"({manifest['schema']}, {manifest['num_topics']} topics, "
          f"payload crc {manifest['payload_crc32']})")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as _json
    import os as _os

    from .stream import (DriftConfig, IngestConfig, IngestPipeline,
                         ShardStore)
    from .strod.hierarchy import STRODTreeConfig

    documents = []
    with open(args.batch, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                documents.append(_json.loads(line))
            except _json.JSONDecodeError as exc:
                print(f"repro: error: {args.batch}:{line_no} is not "
                      f"valid JSON: {exc}", file=sys.stderr)
                return 2
    config = IngestConfig(
        refit_policy=args.refit_policy,
        drift=DriftConfig(moment_delta=args.drift_moment,
                          vocab_growth=args.drift_vocab,
                          doc_count=args.drift_docs),
        tree=STRODTreeConfig(num_children=args.children,
                             max_depth=args.depth,
                             min_documents=args.min_documents),
        seed=args.seed,
        dirty_threshold=args.dirty_threshold,
        export_path=args.export,
        export_format=args.format)
    store = ShardStore(args.shard_dir)
    # The pipeline checkpoint lives inside the shard dir, so repeated
    # `repro ingest` invocations accumulate onto one stream.
    pipeline = IngestPipeline(
        store, config,
        checkpoint_dir=_os.path.join(args.shard_dir, "pipeline"),
        workers=args.workers)
    report = pipeline.ingest_batch(documents)
    print(_json.dumps(report.to_dict(), indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from .serve import (ModelAsyncServer, ModelQueryEngine, ModelServer,
                        load_model)

    def build_engine() -> ModelQueryEngine:
        return ModelQueryEngine(load_model(args.model),
                                cache_size=args.cache_size,
                                phrase_shards=args.shards)

    start = _time.perf_counter()
    engine = build_engine()
    model = engine.model
    cold_load_s = _time.perf_counter() - start
    if args.backend == "async":
        server = ModelAsyncServer(engine, host=args.host, port=args.port,
                                  request_timeout=args.request_timeout,
                                  max_body_bytes=args.max_body_bytes)
    else:
        server = ModelServer(engine, host=args.host, port=args.port,
                             request_timeout=args.request_timeout,
                             max_body_bytes=args.max_body_bytes)
    # Hot reload: POST /v1/admin/reload (or SIGHUP) re-reads the
    # artifact path and swaps the engine with zero dropped requests.
    server.set_reloader(build_engine)
    server.install_signal_handlers()
    print(f"repro serve: model {args.model} "
          f"({model.manifest['num_topics']} topics, loaded in "
          f"{cold_load_s * 1e3:.1f} ms, backend {args.backend}, "
          f"{args.shards} shard(s)) on "
          f"http://{server.host}:{server.port}", file=sys.stderr)
    try:
        server.serve_forever()
    finally:
        server.close()
    print("repro serve: shut down gracefully", file=sys.stderr)
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .obs import spans_from_jsonl, to_chrome_trace
    from .resilience import atomic_write_json

    records = spans_from_jsonl(args.input)
    atomic_write_json(args.output, to_chrome_trace(records))
    print(f"exported {len(records)} spans -> {args.output}",
          file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run as run_lint

    return run_lint(args)


def _cmd_phrases(args: argparse.Namespace) -> int:
    from .phrases import ToPMine, ToPMineConfig

    dataset = load_dataset(args.dataset)
    topmine = ToPMine(
        ToPMineConfig(num_topics=args.topics,
                      min_support=args.min_support,
                      merge_threshold=args.merge_threshold,
                      lda_iterations=args.iterations), seed=args.seed)
    result = topmine.fit(dataset.corpus, checkpoint_dir=args.checkpoint_dir,
                         resume=args.resume)
    for t in range(args.topics):
        print(f"topic {t}: "
              + " / ".join(result.top_phrases(t, args.top,
                                              dataset.corpus)))
    return 0


def _cmd_relations(args: argparse.Namespace) -> int:
    from .relations import (CollaborationNetwork, TPFG,
                            build_candidate_graph, evaluate_predictions)

    dataset = load_dataset(args.dataset)
    network = CollaborationNetwork.from_corpus(dataset.corpus)
    graph = build_candidate_graph(network)
    writer = checkpoint_in(args.checkpoint_dir, "tpfg", "relations.tpfg",
                           config={"max_iter": args.iterations})
    result = TPFG(max_iter=args.iterations).fit(graph, checkpoint=writer,
                                                resume=args.resume)
    predictions = result.predictions(top_k=args.top_k, theta=args.theta)
    shown = 0
    for author in graph.authors:
        advisor = predictions.get(author)
        if advisor:
            print(f"{author}\t{advisor}\t"
                  f"{result.score(author, advisor):.3f}")
            shown += 1
        if args.limit and shown >= args.limit:
            break
    if dataset.ground_truth.advising:
        truth = {r.advisee: r.advisor
                 for r in dataset.ground_truth.advising}
        for author in network.authors:
            truth.setdefault(author, None)
        accuracy = evaluate_predictions(predictions, truth)
        print(f"# advisee accuracy {accuracy.advisee_accuracy:.3f} "
              f"({accuracy.num_advisees} advisees), "
              f"root accuracy {accuracy.root_accuracy:.3f}",
              file=sys.stderr)
    return 0


def _cmd_strod(args: argparse.Namespace) -> int:
    from .strod import STROD

    dataset = load_dataset(args.dataset)
    docs = [doc.tokens for doc in dataset.corpus]
    strod = STROD(num_topics=args.topics,
                  alpha0=args.alpha0 if args.alpha0 > 0 else None,
                  sparse=args.sparse, seed=args.seed)
    writer = checkpoint_in(args.checkpoint_dir, "strod",
                           "strod.tensor_power",
                           config={"topics": args.topics,
                                   "alpha0": args.alpha0,
                                   "seed": args.seed})
    model = strod.fit(docs, len(dataset.corpus.vocabulary),
                      checkpoint=writer, resume=args.resume)
    vocabulary = dataset.corpus.vocabulary
    for z in range(args.topics):
        order = model.phi[z].argsort()[::-1][:args.top]
        words = [vocabulary.word_of(int(w)) for w in order]
        print(f"topic {z} (alpha={model.alpha[z]:.3f}): "
              + ", ".join(words))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mining latent entity structures (Wang, 2014)")
    parser.add_argument("--version", action="version",
                        version=f"repro {get_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    obs_parent = [_obs_parent()]

    gen = sub.add_parser("generate", help="write a synthetic dataset",
                         parents=obs_parent)
    gen.add_argument("kind", choices=["dblp", "news"])
    gen.add_argument("output")
    gen.add_argument("--max-authors", type=int, default=150)
    gen.add_argument("--stories", type=int, default=8)
    gen.add_argument("--articles", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    hier = sub.add_parser("hierarchy", aliases=["fit"],
                          help="build a topical hierarchy ('fit' is an "
                               "alias)",
                          parents=obs_parent)
    _add_dataset_argument(hier)
    hier.add_argument("--children", default="6,3",
                      help="children per level, comma separated")
    hier.add_argument("--weights", default="learn",
                      choices=["equal", "norm", "learn"])
    hier.add_argument("--top", type=int, default=4)
    hier.add_argument("--json", action="store_true")
    hier.add_argument("--seed", type=int, default=0)
    hier.set_defaults(func=_cmd_hierarchy)

    phr = sub.add_parser("phrases", help="run ToPMine",
                         parents=obs_parent)
    _add_dataset_argument(phr)
    phr.add_argument("--topics", type=int, default=6)
    phr.add_argument("--min-support", type=int, default=5)
    phr.add_argument("--merge-threshold", type=float, default=2.0)
    phr.add_argument("--iterations", type=int, default=60)
    phr.add_argument("--top", type=int, default=8)
    phr.add_argument("--seed", type=int, default=0)
    phr.set_defaults(func=_cmd_phrases)

    rel = sub.add_parser("relations", help="mine advisor relations",
                         parents=obs_parent)
    _add_dataset_argument(rel)
    rel.add_argument("--iterations", type=int, default=20)
    rel.add_argument("--top-k", type=int, default=1)
    rel.add_argument("--theta", type=float, default=0.5)
    rel.add_argument("--limit", type=int, default=20)
    rel.add_argument("--seed", type=int, default=0)
    rel.set_defaults(func=_cmd_relations)

    strod = sub.add_parser("strod", help="moment-based topic discovery",
                           parents=obs_parent)
    _add_dataset_argument(strod)
    strod.add_argument("--topics", type=int, default=6)
    strod.add_argument("--alpha0", type=float, default=1.0,
                       help="Dirichlet concentration; <= 0 learns it")
    strod.add_argument("--sparse", action="store_true")
    strod.add_argument("--top", type=int, default=8)
    strod.add_argument("--seed", type=int, default=0)
    strod.set_defaults(func=_cmd_strod)

    export = sub.add_parser(
        "export-model", help="fit and persist a serveable model artifact",
        parents=obs_parent)
    _add_dataset_argument(export)
    export.add_argument("--output", "-o", required=True, metavar="PATH",
                        help="where to write the model artifact "
                             "(atomic write)")
    export.add_argument("--children", default="6,3",
                        help="children per level, comma separated")
    export.add_argument("--weights", default="learn",
                        choices=["equal", "norm", "learn"])
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--format", default="v1", choices=["v1", "v2"],
                        help="artifact format: v1 (canonical JSON) or "
                             "v2 (zero-copy mmap binary sections)")
    export.set_defaults(func=_cmd_export_model)

    migrate = sub.add_parser(
        "migrate-model",
        help="re-encode a model artifact in another format (lossless)")
    migrate.add_argument("model", help="source artifact (v1 or v2, "
                                       "sniffed)")
    migrate.add_argument("--output", "-o", required=True, metavar="PATH",
                         help="where to write the re-encoded artifact")
    migrate.add_argument("--to", default="v2", choices=["v1", "v2"],
                         help="destination format (default: v2)")
    # Pure file transformation: default the shared run flags away.
    migrate.set_defaults(func=_cmd_migrate_model, workers=None,
                         report=None, trace=None, profile=None,
                         log_level=None, log_json=False)

    ingest = sub.add_parser(
        "ingest",
        help="append a JSONL batch to a stream shard store, update the "
             "moment sketch, and (policy permitting) re-infer + export",
        parents=obs_parent)
    ingest.add_argument("--shard-dir", required=True, metavar="DIR",
                        help="the append-only shard store (created on "
                             "first use; the pipeline checkpoint lives "
                             "inside it, so invocations accumulate)")
    ingest.add_argument("--batch", required=True, metavar="JSONL",
                        help="one raw document per line: objects with "
                             "'text' or 'chunks', plus optional "
                             "'entities'/'year'/'label'")
    ingest.add_argument("--refit-policy", default="drift",
                        choices=["drift", "always", "never"],
                        help="when to re-infer: on drift (default), on "
                             "every batch, or never (sketch-only)")
    ingest.add_argument("--export", "-o", default=None, metavar="PATH",
                        help="model artifact rewritten after every "
                             "refit (the file 'repro serve' hot-reloads)")
    ingest.add_argument("--format", default="v2", choices=["v1", "v2"],
                        help="export artifact format (default: v2)")
    ingest.add_argument("--children", type=int, default=4,
                        help="subtopics per tree node")
    ingest.add_argument("--depth", type=int, default=2,
                        help="maximum tree depth")
    ingest.add_argument("--min-documents", type=int, default=50,
                        help="fewest documents a node needs to split")
    ingest.add_argument("--dirty-threshold", type=float, default=0.25,
                        help="fractional subset change at which a tree "
                             "node re-solves (0 = full re-solve)")
    ingest.add_argument("--drift-moment", type=float, default=0.05,
                        help="relative L1 first-moment change trigger")
    ingest.add_argument("--drift-vocab", type=float, default=0.10,
                        help="vocabulary growth fraction trigger")
    ingest.add_argument("--drift-docs", type=int, default=0,
                        help="new-document count trigger (0 disables)")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.set_defaults(func=_cmd_ingest)

    serve = sub.add_parser(
        "serve", help="serve an exported model over HTTP",
        parents=obs_parent)
    serve.add_argument("model", help="path to a model artifact written by "
                                     "'repro export-model'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU query-result cache capacity (0 disables)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-connection read timeout")
    serve.add_argument("--backend", default="threaded",
                       choices=["threaded", "async"],
                       help="threaded (stdlib http.server) or async "
                            "(asyncio, concurrent batch/search fan-out)")
    serve.add_argument("--shards", type=int, default=1,
                       help="phrase-index hash shards (async search "
                            "fans out across them; answers identical)")
    serve.add_argument("--max-body-bytes", type=int, default=1 << 20,
                       help="hard POST body cap (413 above it)")
    serve.set_defaults(func=_cmd_serve)

    export_trace = sub.add_parser(
        "trace-export",
        help="convert a --trace span stream to Chrome trace_event JSON")
    export_trace.add_argument("input", help="span JSON-lines file "
                                            "written via --trace")
    export_trace.add_argument("--output", "-o", required=True,
                              metavar="PATH",
                              help="where to write the Chrome trace "
                                   "(open in chrome://tracing)")
    # Pure file transformation: default the shared run flags away.
    export_trace.set_defaults(func=_cmd_trace_export, workers=None,
                              report=None, trace=None, profile=None,
                              log_level=None, log_json=False)

    lint = sub.add_parser(
        "lint", help="enforce the codebase's determinism/atomicity/"
                     "error-contract invariants (rules RL001-RL006)")
    from .lint.cli import add_lint_arguments
    add_lint_arguments(lint)
    # The lint subcommand takes none of the run-telemetry or execution
    # flags; default them so main()'s shared plumbing stays oblivious.
    lint.set_defaults(func=_cmd_lint, workers=None, report=None,
                      trace=None, profile=None, log_level=None,
                      log_json=False)
    return parser


def _configure_observability(args: argparse.Namespace) -> None:
    """Enable telemetry when any observability flag was given."""
    if args.trace or args.report or args.profile:
        obs.configure(level=args.log_level, trace_path=args.trace,
                      report_path=args.report, json_logs=args.log_json,
                      profile=bool(args.profile))
    elif args.log_level:
        obs.configure(level=args.log_level, json_logs=args.log_json,
                      metrics=False)


def _cli_config(args: argparse.Namespace) -> dict:
    """The invocation's arguments as a JSON-safe report config."""
    return {key: value for key, value in vars(args).items()
            if key != "func"}


def _write_run_report(args: argparse.Namespace) -> None:
    """Aggregate this invocation's telemetry into the requested report."""
    obs.write_report(obs.build_run_report(config=_cli_config(args)),
                     args.report)
    print(f"wrote run report -> {args.report}", file=sys.stderr)


def _write_profile_report(args: argparse.Namespace) -> None:
    """Rank this invocation's spans by self time into the profile."""
    obs.write_profile_report(
        obs.build_profile_report(config=_cli_config(args)), args.profile)
    print(f"wrote profile report -> {args.profile}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library (:class:`~repro.errors.ReproError`) and file-system errors —
    including :class:`~repro.errors.ExecutionError`, the typed wrapper a
    broken worker pool surfaces as — are reported as a one-line message
    on stderr with exit status 2.  A keyboard interrupt flushes the run
    report (checkpoints are already on disk) and exits with the
    conventional status 130.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_observability(args)
    try:
        parallel.set_workers(args.workers)
        with parallel.pool_scope():
            code = args.func(args)
        if code == 0 and args.report:
            _write_run_report(args)
        if code == 0 and args.profile:
            _write_profile_report(args)
    except KeyboardInterrupt:
        # Atomic checkpoint writes mean everything persisted so far is a
        # valid --resume point; flush the telemetry gathered and leave.
        if args.report or args.profile:
            try:
                if args.report:
                    _write_run_report(args)
                if args.profile:
                    _write_profile_report(args)
            # repro: noqa-RL004  best-effort telemetry flush while the
            # process is already unwinding from Ctrl-C; a reporting
            # failure must not mask the interrupt exit status.
            except Exception:
                pass
        print("repro: interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    return code


if __name__ == "__main__":
    sys.exit(main())
