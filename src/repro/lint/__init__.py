"""repro.lint — AST-based enforcement of the codebase's own invariants.

PRs 1–4 established the contracts that make this reproduction
trustworthy at scale: bit-deterministic seeding through
:mod:`repro.parallel.seeding` (worker-count invariance), atomic-only
persistence through :mod:`repro.resilience.atomic`, typed error
surfaces from :mod:`repro.errors`, dotted-lowercase metric names in
:mod:`repro.obs`, and config-fingerprint-guarded checkpoints.  Every
one of those contracts is structural — visible in the syntax of the
code that honors it — so every one of them can be machine-checked
instead of re-reviewed by eye in each PR.

This package is that check: a stdlib-:mod:`ast` static analyzer that
walks ``src/`` and ``tests/`` and enforces the invariants as named
rules (see :mod:`repro.lint.rules` for the per-file catalogue:
RL001–RL006, the RL2xx async-safety family, and RL301 schema-literal
containment).  Since PR 10 the default run is *whole-program*:
:mod:`repro.lint.graph` builds a project symbol table and import graph
(cached by content hash for incremental re-runs) and
:mod:`repro.lint.program` enforces the cross-module families on top —
RL101/RL102 subsystem layering and cycle detection, RL302
schema-registry loader coverage against :mod:`repro.contracts`, and
RL401/RL402 obs-namespace consistency.  Intentional exceptions are
declared in-line with a pragma that must carry a reason::

    with open(path, "a") as handle:  # repro: noqa-RL003  append-only stream

Run it as ``repro lint`` or ``python -m repro.lint``; ``--format json``
emits a stable ``repro.lint/report/v1`` document for tooling (schema in
:mod:`repro.lint.report`), ``--format sarif`` a SARIF 2.1.0 log for
code-scanning UIs.  Exit status: 0 clean, 1 violations found, 2 usage
error.
"""

from .engine import (FileContext, LintResult, apply_pragmas, lint_file,
                     lint_paths, statement_extents)
from .graph import FileSummary, ProjectGraph, summarize_file
from .program import LAYERS, lint_project, obs_inventory, subsystem_of
from .report import (REPORT_SCHEMA, load_report, render_human,
                     render_json, render_sarif, to_document)
from .rules import (PRAGMA_RE, PROGRAM_RULE_IDS, RULES, Rule, Violation,
                    rule_catalogue)

__all__ = [
    "FileContext",
    "FileSummary",
    "LAYERS",
    "LintResult",
    "PRAGMA_RE",
    "PROGRAM_RULE_IDS",
    "ProjectGraph",
    "REPORT_SCHEMA",
    "RULES",
    "Rule",
    "Violation",
    "apply_pragmas",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_report",
    "obs_inventory",
    "render_human",
    "render_json",
    "render_sarif",
    "rule_catalogue",
    "statement_extents",
    "subsystem_of",
    "summarize_file",
    "to_document",
]
