"""repro.lint — AST-based enforcement of the codebase's own invariants.

PRs 1–4 established the contracts that make this reproduction
trustworthy at scale: bit-deterministic seeding through
:mod:`repro.parallel.seeding` (worker-count invariance), atomic-only
persistence through :mod:`repro.resilience.atomic`, typed error
surfaces from :mod:`repro.errors`, dotted-lowercase metric names in
:mod:`repro.obs`, and config-fingerprint-guarded checkpoints.  Every
one of those contracts is structural — visible in the syntax of the
code that honors it — so every one of them can be machine-checked
instead of re-reviewed by eye in each PR.

This package is that check: a stdlib-:mod:`ast` static analyzer that
walks ``src/`` and ``tests/`` and enforces the invariants as named
rules (see :mod:`repro.lint.rules` for the catalogue, RL001–RL006).
Intentional exceptions are declared in-line with a pragma that must
carry a reason::

    with open(path, "a") as handle:  # repro: noqa-RL003  append-only stream

Run it as ``repro lint`` or ``python -m repro.lint``; ``--format json``
emits a stable ``repro.lint/report/v1`` document for tooling (schema in
:mod:`repro.lint.report`).  Exit status: 0 clean, 1 violations found,
2 usage error.
"""

from .engine import FileContext, LintResult, lint_file, lint_paths
from .report import REPORT_SCHEMA, render_human, render_json, to_document
from .rules import RULES, PRAGMA_RE, Rule, Violation, rule_catalogue

__all__ = [
    "FileContext",
    "LintResult",
    "PRAGMA_RE",
    "REPORT_SCHEMA",
    "RULES",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "render_human",
    "render_json",
    "rule_catalogue",
    "to_document",
]
