"""Project symbol table, import graph, and the per-file analysis cache.

The per-file engine (:mod:`repro.lint.engine`) sees one file at a time,
which is enough for local idiom rules but blind to every *cross-module*
contract: the subsystem layering, schema-registry coverage, and the
global obs namespace.  This module supplies the whole-program substrate
those rule families (:mod:`repro.lint.program`) consume:

* :func:`summarize_file` distils one file into a :class:`FileSummary` —
  import sites (module-scope vs deferred), module-level symbols
  including class methods, re-export bindings, obs metric/span call
  sites, versioned-format string sites, statement extents, raw per-file
  rule hits, and pragmas.  Everything downstream works from summaries,
  never from ASTs.
* Summaries are JSON-serializable and cached by content hash
  (``repro.lint/cache/v1``), so a warm run re-hashes bytes but skips
  parsing and rule traversal for unchanged files — the incremental mode
  the CI lint job runs in.
* :class:`ProjectGraph` indexes summaries by module, resolves import
  targets to first-party modules by longest dotted prefix, chases
  re-export chains for symbol lookups, and finds import cycles via
  strongly connected components.

Import direction: this module imports :mod:`.engine` and ``..contracts``
and is imported by :mod:`.program` and :mod:`.cli` — never by
:mod:`.engine` or :mod:`.rules`, which keeps the linter itself free of
the cycles it polices.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..contracts import FORMAT_PATTERN, LINT_CACHE_V1
from .engine import FileContext, Pragma, statement_extents
from .rules import RULES, Rule, Violation

__all__ = [
    "CACHE_SCHEMA",
    "FileSummary",
    "ProjectGraph",
    "load_cache",
    "save_cache",
    "summarize_file",
]

#: The cache artifact's versioned format (registered in repro.contracts).
CACHE_SCHEMA = LINT_CACHE_V1

_FORMAT_RE = re.compile(f"^{FORMAT_PATTERN}$")

#: Obs entry point → metric kind.  ``span`` is deliberately its own kind
#: even though spans also observe into timers (DESIGN §5.4): the
#: inventory reports both and the kind-conflict rule treats them as
#: compatible.
_OBS_KINDS = {
    "inc": "counter",
    "set_gauge": "gauge",
    "observe": "timer",
    "timed": "timer",
    "timed_function": "timer",
    "span": "span",
}

_OBS_CALL = re.compile(
    r"^repro\.obs(?:\.registry|\.spans)?\."
    r"(inc|set_gauge|observe|timed|timed_function|span)$")

#: Attribute calls counted as obs sites when the receiver's terminal
#: name ends in ``registry`` (``self.registry.inc(...)`` in serve).
_OBS_METHODS = frozenset({"inc", "set_gauge", "observe"})


# ------------------------------------------------------------------ summary
@dataclass
class FileSummary:
    """Everything whole-program analysis needs from one file.

    Plain data, JSON-round-trippable via :meth:`to_dict` /
    :meth:`from_dict` so summaries can live in the content-hash cache.
    ``imports`` entries are ``{"target", "line", "deferred"}`` where
    ``target`` is an absolute dotted name (module, or module.symbol for
    from-imports) and ``deferred`` marks function-local or
    ``TYPE_CHECKING``-guarded imports, which never execute at import
    time and are therefore exempt from layering and cycle analysis.
    """

    path: str
    sha256: str
    module: Optional[str] = None
    error: Optional[str] = None
    imports: List[Dict[str, object]] = field(default_factory=list)
    symbols: List[str] = field(default_factory=list)
    reexports: Dict[str, str] = field(default_factory=dict)
    obs_sites: List[Dict[str, object]] = field(default_factory=list)
    schema_sites: List[Dict[str, object]] = field(default_factory=list)
    extents: List[Tuple[int, int]] = field(default_factory=list)
    hits: List[Dict[str, object]] = field(default_factory=list)
    pragmas: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "sha256": self.sha256,
            "module": self.module,
            "error": self.error,
            "imports": self.imports,
            "symbols": self.symbols,
            "reexports": self.reexports,
            "obs_sites": self.obs_sites,
            "schema_sites": self.schema_sites,
            "extents": [list(extent) for extent in self.extents],
            "hits": self.hits,
            "pragmas": self.pragmas,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FileSummary":
        return cls(
            path=str(doc["path"]),
            sha256=str(doc["sha256"]),
            module=doc.get("module"),  # type: ignore[arg-type]
            error=doc.get("error"),  # type: ignore[arg-type]
            imports=list(doc.get("imports", [])),
            symbols=list(doc.get("symbols", [])),
            reexports=dict(doc.get("reexports", {})),  # type: ignore
            obs_sites=list(doc.get("obs_sites", [])),
            schema_sites=list(doc.get("schema_sites", [])),
            extents=[(int(pair[0]), int(pair[1]))
                     for pair in doc.get("extents", [])],  # type: ignore
            hits=list(doc.get("hits", [])),
            pragmas=list(doc.get("pragmas", [])),
        )

    # ------------------------------------------------------- reconstruction
    def violations(self) -> List[Violation]:
        """The raw (pre-suppression) per-file rule hits."""
        return [Violation(str(hit["rule"]), self.path, int(hit["line"]),
                          int(hit["col"]), str(hit["message"]))
                for hit in self.hits]

    def pragma_objects(self) -> List[Pragma]:
        """Fresh :class:`Pragma` objects (``used`` reset to zero).

        Suppression accounting must be recomputed each run — a cached
        ``used`` count would reflect a previous tree's violations.
        """
        return [Pragma(self.path, int(p["line"]),
                       tuple(p["rule_ids"]),  # type: ignore[arg-type]
                       str(p["reason"]), anchor=int(p["anchor"]))
                for p in self.pragmas]


def _is_type_checking(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _collect_import_sites(ctx: FileContext) -> Tuple[
        List[Dict[str, object]], Dict[str, str]]:
    """Import sites (with deferred flags) and module-scope re-exports.

    Deferral is positional: an import inside a function body (any
    nesting) or under ``if TYPE_CHECKING:`` runs late or never, so it
    cannot create an import-time cycle and does not bind the layering
    DAG.  Class bodies and try/except fallbacks execute at import time
    and stay module-scope.
    """
    sites: List[Dict[str, object]] = []
    reexports: Dict[str, str] = {}

    def visit(nodes: Sequence[ast.stmt], deferred: bool) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    sites.append({"target": alias.name,
                                  "line": node.lineno,
                                  "deferred": deferred})
            elif isinstance(node, ast.ImportFrom):
                base = ctx._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    target = base if alias.name == "*" \
                        else f"{base}.{alias.name}"
                    sites.append({"target": target,
                                  "line": node.lineno,
                                  "deferred": deferred})
                    if not deferred and alias.name != "*":
                        local = alias.asname or alias.name
                        reexports[local] = target
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(node.body, True)
            elif isinstance(node, ast.If):
                visit(node.body,
                      deferred or _is_type_checking(node.test))
                visit(node.orelse, deferred)
            elif isinstance(node, ast.Try):
                visit(node.body, deferred)
                for handler in node.handlers:
                    visit(handler.body, deferred)
                visit(node.orelse, deferred)
                visit(node.finalbody, deferred)
            elif isinstance(node, (ast.With, ast.AsyncWith, ast.For,
                                   ast.AsyncFor, ast.While)):
                visit(node.body, deferred)
                visit(getattr(node, "orelse", []), deferred)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, deferred)

    visit(ctx.tree.body, False)
    return sites, reexports


def _collect_symbols(tree: ast.Module) -> List[str]:
    """Module-level definitions, including ``Class.method`` entries."""
    symbols: List[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.append(node.name)
        elif isinstance(node, ast.ClassDef):
            symbols.append(node.name)
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    symbols.append(f"{node.name}.{sub.name}")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.append(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            symbols.append(node.target.id)
    return symbols


def _obs_name_pattern(arg: ast.expr) -> Optional[str]:
    """Metric-name pattern of an obs call's first argument.

    A plain string is itself; an f-string becomes a pattern with ``*``
    in each interpolated slot (``serve.http.*.latency``) — the same
    fragment decomposition RL005 validates.  Dynamic names that carry
    no literal fragments return None and are not inventoried.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        pieces = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant) \
                    and isinstance(piece.value, str):
                pieces.append(piece.value)
            else:
                pieces.append("*")
        pattern = "".join(pieces)
        return pattern if pattern.strip("*") else None
    return None


def _collect_obs_sites(ctx: FileContext) -> List[Dict[str, object]]:
    """Every statically visible metric/span registration site."""
    sites: List[Dict[str, object]] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call) or not node.args:
            continue
        kind = None
        resolved = ctx.resolve(node.func)
        if resolved is not None:
            match = _OBS_CALL.match(resolved)
            if match:
                kind = _OBS_KINDS[match.group(1)]
        if kind is None and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _OBS_METHODS:
            receiver = node.func.value
            terminal = None
            if isinstance(receiver, ast.Attribute):
                terminal = receiver.attr
            elif isinstance(receiver, ast.Name):
                terminal = receiver.id
            if terminal is not None \
                    and terminal.lower().endswith("registry"):
                kind = _OBS_KINDS[node.func.attr]
        if kind is None:
            continue
        pattern = _obs_name_pattern(node.args[0])
        if pattern is not None:
            sites.append({"line": node.lineno, "name": pattern,
                          "kind": kind})
    return sites


def _collect_schema_sites(ctx: FileContext) -> List[Dict[str, object]]:
    """Every ``repro.<pkg>/<name>/v<N>`` string literal in the file.

    Sites inside a ``_register(...)`` call additionally carry the
    registration's ``loader`` entry point, which is how the RL302
    coverage check reads the registry *statically* — fixture trees with
    their own miniature contracts module are analyzable without
    importing them.
    """
    loaders: Dict[int, Optional[str]] = {}
    for node in ctx.walk():
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "_register" and node.args):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) \
                and isinstance(first.value, str):
            loader = None
            for keyword in node.keywords:
                if keyword.arg == "loader" \
                        and isinstance(keyword.value, ast.Constant):
                    loader = keyword.value.value
            loaders[id(first)] = loader
    sites: List[Dict[str, object]] = []
    for node in ctx.walk():
        if not (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _FORMAT_RE.match(node.value)):
            continue
        site: Dict[str, object] = {"line": node.lineno,
                                   "col": node.col_offset,
                                   "literal": node.value}
        if id(node) in loaders:
            site["registered"] = True
            if loaders[id(node)]:
                site["loader"] = loaders[id(node)]
        sites.append(site)
    return sites


def summarize_file(path: str, source: str,
                   rules: Optional[Sequence[Rule]] = None) -> FileSummary:
    """Parse and analyze one file into a cacheable :class:`FileSummary`.

    This is the expensive step the content-hash cache exists to skip:
    one ``ast.parse`` plus one traversal per applicable rule plus the
    summary extractions.  A file that fails to parse yields a summary
    carrying the parse error as its single RL000 hit.
    """
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return FileSummary(
            path=path, sha256=sha, error=f"{exc.msg} (line {exc.lineno})",
            hits=[{"rule": "RL000", "line": exc.lineno or 1, "col": 0,
                   "message": f"file does not parse: {exc.msg}"}])
    active = list(RULES if rules is None else rules)
    hits: List[Dict[str, object]] = []
    for rule in active:
        if rule.applies_to(path):
            for violation in rule.check(ctx):
                hits.append({"rule": violation.rule,
                             "line": violation.line,
                             "col": violation.col,
                             "message": violation.message})
    imports, reexports = _collect_import_sites(ctx)
    pragmas = [{"line": pragma.line, "rule_ids": list(pragma.rule_ids),
                "reason": pragma.reason, "anchor": pragma.anchor}
               for pragma in ctx.pragmas()]
    return FileSummary(
        path=path, sha256=sha, module=ctx.module,
        imports=imports,
        symbols=_collect_symbols(ctx.tree),
        reexports=reexports,
        obs_sites=_collect_obs_sites(ctx),
        schema_sites=_collect_schema_sites(ctx),
        extents=statement_extents(ctx.tree),
        hits=hits, pragmas=pragmas)


# -------------------------------------------------------------------- cache
def _cache_stamp(rules: Sequence[Rule]) -> Dict[str, object]:
    """Invalidation stamp: any rule or release change voids the cache."""
    from .. import __version__

    return {"version": __version__,
            "rules": sorted(rule.id for rule in rules)}


def load_cache(path: str,
               rules: Optional[Sequence[Rule]] = None,
               ) -> Dict[str, Dict[str, object]]:
    """Load a ``repro.lint/cache/v1`` file → path-keyed summary dicts.

    Missing, unreadable, wrong-schema, or stale-stamp caches all return
    an empty mapping — a cold run, never an error.  Each entry carries
    its source ``sha256``; callers must compare it against the current
    file bytes before trusting the summary.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
        return {}
    if rules is not None and doc.get("stamp") != _cache_stamp(rules):
        return {}
    files = doc.get("files")
    return dict(files) if isinstance(files, dict) else {}


def save_cache(path: str, summaries: Sequence[FileSummary],
               rules: Sequence[Rule]) -> None:
    """Persist summaries keyed by file path, atomically (RL003)."""
    from ..resilience.atomic import atomic_write_json

    doc = {
        "schema": CACHE_SCHEMA,
        "stamp": _cache_stamp(rules),
        "files": {summary.path: summary.to_dict()
                  for summary in summaries},
    }
    atomic_write_json(path, doc)


# -------------------------------------------------------------------- graph
class ProjectGraph:
    """Module index + import graph over a set of file summaries."""

    def __init__(self, summaries: Sequence[FileSummary]) -> None:
        self.summaries: Dict[str, FileSummary] = {
            summary.path: summary for summary in summaries}
        #: Dotted module → summary (files with underivable modules are
        #: still linted per-file but take no part in graph analysis).
        self.modules: Dict[str, FileSummary] = {
            summary.module: summary for summary in summaries
            if summary.module}

    # ------------------------------------------------------------ resolution
    def resolve_module(self, target: str) -> Optional[str]:
        """Longest first-party module that is a dotted prefix of ``target``.

        ``repro.serve.artifact.load_model`` → ``repro.serve.artifact``;
        ``numpy.random`` → None (third-party).
        """
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def resolve_symbol(self, module: str, symbol: str,
                       _depth: int = 0) -> bool:
        """Whether ``module`` defines ``symbol``, chasing re-exports.

        ``symbol`` may be dotted (``ShardStore.load_shard``).  A name
        bound by a module-scope from-import is followed to its source
        module (bounded depth, so a pathological re-export cycle
        terminates).
        """
        summary = self.modules.get(module)
        if summary is None or _depth > 8:
            return False
        if symbol in summary.symbols:
            return True
        head = symbol.split(".")[0]
        target = summary.reexports.get(head)
        if target is None:
            # `from .sub import X` also makes `module.sub` importable.
            return f"{module}.{symbol.split('.')[0]}" in self.modules
        resolved = self.resolve_module(target)
        if resolved is None:
            return False
        if resolved == target:
            # Re-export of a whole module; the remainder must resolve
            # inside it.
            rest = symbol.split(".", 1)
            return len(rest) == 1 or self.resolve_symbol(
                resolved, rest[1], _depth + 1)
        remainder = target[len(resolved) + 1:]
        rest = symbol.split(".", 1)
        tail = remainder if len(rest) == 1 \
            else f"{remainder}.{rest[1]}"
        return self.resolve_symbol(resolved, tail, _depth + 1)

    # ----------------------------------------------------------------- edges
    def module_edges(self, include_deferred: bool = False,
                     ) -> Iterator[Tuple[str, str, int, bool]]:
        """First-party import edges: (source, target, line, deferred).

        Self-imports are dropped; deferred edges are included only on
        request (layering and cycle analysis bind module scope only).
        """
        for summary in self.summaries.values():
            if summary.module is None:
                continue
            for site in summary.imports:
                deferred = bool(site["deferred"])
                if deferred and not include_deferred:
                    continue
                target = self.resolve_module(str(site["target"]))
                if target is None or target == summary.module:
                    continue
                yield (summary.module, target, int(site["line"]),
                       deferred)

    def edge_count(self) -> int:
        """Number of first-party module-scope import edges."""
        return sum(1 for _ in self.module_edges())

    def find_cycles(self) -> List[List[str]]:
        """Module-scope import cycles, as sorted module lists.

        Strongly connected components of size > 1 (an import-time
        self-loop is impossible in Python).  Iterative Tarjan, so a
        deep dependency chain cannot hit the recursion limit.
        """
        adjacency: Dict[str, Set[str]] = {
            module: set() for module in self.modules}
        for source, target, _line, _deferred in self.module_edges():
            adjacency[source].add(target)

        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for root in sorted(adjacency):
            if root in index_of:
                continue
            work: List[Tuple[str, Iterator[str]]] = [
                (root, iter(sorted(adjacency[root])))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append(
                            (child, iter(sorted(adjacency[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
        return sccs

    def import_chain(self, cycle: Sequence[str]) -> List[str]:
        """A concrete ``a → b → ... → a`` chain witnessing a cycle."""
        members = set(cycle)
        chain = [cycle[0]]
        current = cycle[0]
        for _ in range(len(cycle)):
            for source, target, _line, _deferred in self.module_edges():
                if source == current and target in members \
                        and target not in chain[1:]:
                    chain.append(target)
                    current = target
                    break
            if current == cycle[0] and len(chain) > 1:
                break
        if chain[-1] != cycle[0]:
            chain.append(cycle[0])
        return chain
