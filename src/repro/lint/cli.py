"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Since PR 10 the default invocation is the *whole-program* pass: per-file
rules plus the import-graph layering, schema-registry, and obs-namespace
families, with an optional content-hash cache (``--cache``) that makes
warm re-runs incremental.  ``--per-file`` restores the PR 5 single-file
mode (no graph, no program rules) for editor integrations that lint one
buffer at a time.

Exit status: 0 when the tree is clean, 1 when violations survive
suppression, 2 on a usage error (unknown path, bad flag) — mirroring
the wider CLI's "2 means you, not the code" convention.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from ..errors import ReproError
from .engine import lint_paths
from .report import render_human, render_json, render_sarif
from .rules import PROGRAM_RULE_IDS, RULES

__all__ = ["add_lint_arguments", "main", "run"]

#: Default lint targets when none are given (must exist under --root).
DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint, relative to --root "
             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root the rule path scopes are anchored at "
             "(default: current directory)")
    parser.add_argument(
        "--format", dest="fmt", default="human",
        choices=["human", "json", "sarif"],
        help="human-readable text, the stable repro.lint/report/v1 "
             "JSON document, or a SARIF 2.1.0 log")
    parser.add_argument(
        "--per-file", action="store_true",
        help="per-file rules only: no import graph, no RL1xx/RL3xx/"
             "RL4xx program families (the pre-PR-10 behaviour)")
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="content-hash analysis cache (repro.lint/cache/v1); "
             "unchanged files skip parsing on warm runs")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="report violations only in files git considers changed "
             "(diff vs HEAD plus untracked); the import graph is still "
             "built over the full tree")
    parser.add_argument(
        "--obs-inventory", action="store_true",
        help="print the generated obs metric/span inventory as a "
             "markdown table and exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")


def _list_rules() -> int:
    from .report import _PROGRAM_RULE_INFO

    for rule in RULES:
        print(f"{rule.id}  {rule.title}")
        print(f"       guards: {rule.guards}")
    for rule_id in PROGRAM_RULE_IDS:
        info = _PROGRAM_RULE_INFO.get(rule_id, {})
        print(f"{rule_id}  {info.get('title', rule_id)} "
              f"[whole-program]")
        print(f"       guards: {info.get('guards', '')}")
    print("RL000  pragma hygiene")
    print("       guards: suppressions stay justified and live")
    return 0


def _resolve_root(paths: List[str], root: str,
                  ) -> Tuple[Optional[List[str]], Optional[str],
                             Optional[str]]:
    """Rebase absolute PATH arguments onto the analysis root.

    Rule scopes and the module map key files by their layout-relative
    path (``src/repro/...``), so an absolute argument linted verbatim
    would silently escape every scope and derive no module names.
    Absolute paths under ``root`` are relativized; when ``root`` is
    the default and every argument is absolute with one common
    ``src``/``tests`` ancestor, that ancestor becomes the root.
    Anything else is a usage error, not a scope-less run.

    Returns ``(paths, root, None)`` on success, ``(None, None,
    message)`` on a usage error.
    """
    if not any(os.path.isabs(path) for path in paths):
        return paths, root, None
    root_abs = os.path.abspath(root)
    rebased = [
        os.path.relpath(os.path.abspath(path), root_abs)
        .replace(os.sep, "/")
        for path in paths]
    if all(not path.startswith("..") for path in rebased):
        return rebased, root, None
    if root == "." and all(os.path.isabs(path) for path in paths):
        anchors = set()
        suffixes = []
        for path in paths:
            parts = os.path.abspath(path).replace(os.sep, "/").split("/")
            for idx in range(len(parts) - 1, 0, -1):
                if parts[idx] in ("src", "tests"):
                    anchors.add("/".join(parts[:idx]) or "/")
                    suffixes.append("/".join(parts[idx:]))
                    break
            else:
                anchors.add(None)
        if None not in anchors and len(anchors) == 1:
            return suffixes, anchors.pop(), None
    return None, None, (
        "absolute lint paths escape --root; pass --root DIR so rule "
        "scopes and the module map anchor at the repository root")


def render_obs_inventory(rows: List[dict]) -> str:
    """The obs inventory as a markdown table (README-embeddable)."""
    lines = ["| name | kinds | subsystems | sites |",
             "| --- | --- | --- | --- |"]
    for row in rows:
        lines.append(
            f"| `{row['name']}` | {', '.join(row['kinds'])} | "
            f"{', '.join(row['subsystems'])} | {row['sites']} |")
    return "\n".join(lines) + "\n"


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    paths, root, usage_error = _resolve_root(
        args.paths or list(DEFAULT_PATHS), args.root)
    if usage_error:
        print(f"repro lint: error: {usage_error}", file=sys.stderr)
        return 2
    per_file = getattr(args, "per_file", False)
    if per_file and (args.cache or args.changed_only
                     or getattr(args, "obs_inventory", False)):
        print("repro lint: error: --cache/--changed-only/"
              "--obs-inventory require the whole-program pass",
              file=sys.stderr)
        return 2
    try:
        if per_file:
            result = lint_paths(paths, root=root)
        else:
            from .program import lint_project

            result = lint_project(
                paths, root=root, cache_path=args.cache,
                changed_only=args.changed_only)
    except (ReproError, OSError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "obs_inventory", False):
        sys.stdout.write(render_obs_inventory(result.obs_inventory))
        return 0 if result.clean else 1
    if args.fmt == "json":
        sys.stdout.write(render_json(result))
    elif args.fmt == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        sys.stdout.write(render_human(result))
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Stand-alone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Enforce the repro codebase's invariants: per-file "
                    "idiom rules (RL001-RL006, RL2xx, RL301) plus the "
                    "whole-program layering, schema-registry, and obs-"
                    "namespace families (RL101/RL102/RL302/RL4xx).")
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
