"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit status: 0 when the tree is clean, 1 when violations survive
suppression, 2 on a usage error (unknown path, bad flag) — mirroring
the wider CLI's "2 means you, not the code" convention.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from .engine import lint_paths
from .report import render_human, render_json
from .rules import RULES

__all__ = ["add_lint_arguments", "main", "run"]

#: Default lint targets when none are given (must exist under --root).
DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint flags on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint, relative to --root "
             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root the rule path scopes are anchored at "
             "(default: current directory)")
    parser.add_argument(
        "--format", dest="fmt", default="human",
        choices=["human", "json"],
        help="human-readable text or the stable repro.lint/report/v1 "
             "JSON document")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")


def _list_rules() -> int:
    for rule in RULES:
        print(f"{rule.id}  {rule.title}")
        print(f"       guards: {rule.guards}")
    print("RL000  pragma hygiene")
    print("       guards: suppressions stay justified and live")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    paths = args.paths or list(DEFAULT_PATHS)
    try:
        result = lint_paths(paths, root=args.root)
    except (ReproError, OSError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_human(result))
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Stand-alone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Enforce the repro codebase's determinism, "
                    "atomicity, and error-contract invariants "
                    "(rules RL001-RL006).")
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
