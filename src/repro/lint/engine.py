"""The lint engine: file discovery, import resolution, pragma handling.

One file is linted in three steps: parse it once, hand the parsed
:class:`FileContext` to every rule whose path scope covers it, then
apply the file's suppression pragmas to the raw hits.  Pragmas are
line-anchored (``# repro: noqa-RL003  reason`` on the flagged line) and
audited by the implicit RL000 hygiene rule: a pragma with an unknown
rule id, a missing reason, or nothing to suppress is itself reported,
so the suppression inventory in a report is always live and justified.

Name resolution is import-based: ``np.random.seed`` resolves to
``numpy.random.seed`` because the file said ``import numpy as np``, and
a relative ``from ..obs import inc`` resolves against the module path
derived from the file's location under ``src/``.  Local variables that
shadow an imported name are not tracked — the linter is a contract
checker for this codebase's idioms, not a full type analysis — which in
practice only ever errs on the side of flagging.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .rules import PRAGMA_RE, PROGRAM_RULE_IDS, RULES, Rule, Violation

__all__ = [
    "FileContext",
    "LintResult",
    "Pragma",
    "apply_pragmas",
    "collect_files",
    "lint_file",
    "lint_paths",
    "pragma_hygiene",
    "statement_extents",
]


@dataclass
class Pragma:
    """One ``repro: noqa`` suppression comment.

    ``line`` is where the comment sits; ``anchor`` is the code line it
    suppresses — the same line for a trailing comment, the next code
    line for a comment standing on its own (the form long statements
    need).
    """

    path: str
    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    anchor: int = 0
    used: int = 0


def module_name_of(path: str) -> Optional[str]:
    """Dotted module path for a root-relative file path.

    ``src/repro/phrases/topmine.py`` → ``repro.phrases.topmine``;
    package ``__init__.py`` files map to the package itself.  Files
    outside a recognizable layout (scripts, fixtures) return None and
    simply get no relative-import resolution.
    """
    if not path.endswith(".py"):
        return None
    parts = path[:-3].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


class FileContext:
    """One parsed file plus everything the rules need to query it.

    Attributes:
        path: root-relative POSIX path (the scoping and report key).
        tree: the parsed AST.
        lines: raw source lines (pragma scanning, snippets).
        module: dotted module path when derivable from the layout.
    """

    def __init__(self, path: str, source: str,
                 module: Optional[str] = None) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.module = module if module is not None else module_name_of(path)
        self.tree = ast.parse(source, filename=path)
        self._imports = self._collect_imports()
        self._nodes: Optional[List[ast.AST]] = None

    # --------------------------------------------------------------- queries
    def walk(self) -> Iterator[ast.AST]:
        """Every AST node, cached so each rule pays one traversal cost."""
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return iter(self._nodes)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of an attribute chain, if imported.

        ``np.random.seed`` → ``"numpy.random.seed"`` under
        ``import numpy as np``; unresolvable expressions return None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        parts.reverse()
        return ".".join(parts)

    def snippet(self, line: int) -> str:
        """The source line at 1-based ``line`` (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # --------------------------------------------------------------- pragmas
    def pragmas(self) -> List[Pragma]:
        """Every suppression pragma in the file, in line order.

        Pragmas are extracted from real ``COMMENT`` tokens, not raw
        lines, so a docstring that merely *mentions* the pragma syntax
        (this engine's own documentation, for one) is never mistaken
        for a suppression.  A trailing pragma anchors to its own line;
        a pragma that is the whole line anchors to the next code line,
        skipping blank and pure-comment lines.
        """
        found = []
        source = "\n".join(self.lines) + "\n"
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [(tok.start, tok.string) for tok in tokens
                        if tok.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError):
            return []
        comment_lines = {start[0] for start, _ in comments}
        for (lineno, col), text in comments:
            match = PRAGMA_RE.search(text)
            if match is None:
                continue
            ids = tuple(part.strip()
                        for part in match.group(1).split(","))
            standalone = not self.lines[lineno - 1][:col].strip()
            anchor = lineno
            if standalone:
                anchor = self._next_code_line(lineno, comment_lines)
            found.append(Pragma(self.path, lineno, ids,
                                match.group(2).strip(), anchor=anchor))
        return found

    def _next_code_line(self, lineno: int, comment_lines: set) -> int:
        """First line after ``lineno`` holding code (fallback: itself)."""
        for candidate in range(lineno + 1, len(self.lines) + 1):
            if candidate in comment_lines:
                continue
            if self.lines[candidate - 1].strip():
                return candidate
        return lineno

    # --------------------------------------------------------------- imports
    def _collect_imports(self) -> Dict[str, str]:
        """Local binding → fully qualified module/attribute path."""
        bindings: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bindings[local] = f"{base}.{alias.name}"
        return bindings

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute module a ``from X import ...`` statement names."""
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        package = self.module.split(".")
        is_package = self.path.endswith("__init__.py")
        # level=1 targets the file's own package; each further dot climbs.
        climb = node.level - 1 if is_package else node.level
        if climb >= len(package) + (1 if is_package else 0):
            return None
        base = package[:len(package) - climb] if climb else package
        if not base:
            return None
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)


def statement_extents(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line extents of every multi-line statement in ``tree``.

    A pragma anchored anywhere inside a multi-line *simple* statement
    (an assignment or call spanning several lines) covers the whole
    statement, because the violation it suppresses may be anchored at
    any line of the statement — the opening line for the statement node
    itself, an interior line for a nested argument.  Compound statements
    (``if``/``with``/``for``/``def``) contribute only their *header*
    extent, never their body: a pragma on a ``with`` header must not
    silence the entire block under it.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        body = getattr(node, "body", None)
        if body and isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            # Compound statement: the header runs up to the line before
            # the first body statement.
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", start) or start
        if end > start:
            extents.append((start, end))
    return extents


def apply_pragmas(hits: List[Violation], pragmas: List[Pragma],
                  extents: Sequence[Tuple[int, int]] = (),
                  ) -> Tuple[List[Violation], List[Violation]]:
    """Split raw ``hits`` into (surviving, suppressed) under ``pragmas``.

    A pragma matches a violation when both sit on the same line, or when
    both fall inside the same multi-line statement extent (so a trailing
    pragma on any line of a long call suppresses a violation anchored at
    any other line of that call).  Matching pragmas have their ``used``
    counter bumped, which the RL000 hygiene audit reads.
    """
    extent_of: Dict[int, Tuple[int, int]] = {}
    for start, end in extents:
        for line in range(start, end + 1):
            # Keep the innermost (shortest) extent when statements nest.
            held = extent_of.get(line)
            if held is None or (end - start) < (held[1] - held[0]):
                extent_of[line] = (start, end)

    def covers(pragma: Pragma, violation: Violation) -> bool:
        if pragma.anchor == violation.line:
            return True
        extent = extent_of.get(pragma.anchor)
        return extent is not None \
            and extent == extent_of.get(violation.line)

    surviving: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in hits:
        matched = None
        for pragma in pragmas:
            if violation.rule in pragma.rule_ids and pragma.reason \
                    and covers(pragma, violation):
                matched = pragma
                break
        if matched is not None:
            matched.used += 1
            suppressed.append(violation)
        else:
            surviving.append(violation)
    return surviving, suppressed


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    root: str
    paths: List[str]
    files: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    pragmas: List[Pragma] = field(default_factory=list)
    #: Whole-program extras (populated by :func:`repro.lint.program.
    #: lint_project`; empty for the per-file path).  Only ever added to,
    #: matching the report schema's additive-evolution contract.
    modules: Dict[str, str] = field(default_factory=dict)
    import_edges: int = 0
    obs_inventory: List[Dict[str, object]] = field(default_factory=list)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    whole_program: bool = False

    @property
    def clean(self) -> bool:
        """True when no violation survived suppression."""
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        """Surviving violation count per rule id (only non-zero rules)."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts


def pragma_hygiene(pragmas: List[Pragma], known_ids: Sequence[str],
                   active_ids: Optional[Sequence[str]] = None,
                   ) -> List[Violation]:
    """RL000 audit: every pragma must be well-formed and earn its keep.

    ``known_ids`` is the full catalogue (an id outside it is a typo);
    ``active_ids`` is the subset of rules that actually ran — a pragma
    naming a rule that did not run (a whole-program rule during a
    per-file lint) is not reported as unused, because this run cannot
    know whether it suppresses anything.
    """
    if active_ids is None:
        active_ids = known_ids
    problems = []
    for pragma in pragmas:
        unknown = [rid for rid in pragma.rule_ids if rid not in known_ids]
        inactive = [rid for rid in pragma.rule_ids
                    if rid not in active_ids]
        if unknown:
            problems.append(Violation(
                "RL000", pragma.path, pragma.line, 0,
                f"pragma names unknown rule(s) {', '.join(unknown)}"))
        if not pragma.reason:
            problems.append(Violation(
                "RL000", pragma.path, pragma.line, 0,
                "pragma has no reason; write '# repro: noqa-RLxxx  why'"))
        elif not unknown and not inactive and pragma.used == 0:
            problems.append(Violation(
                "RL000", pragma.path, pragma.line, 0,
                "pragma suppresses nothing on this line; remove it"))
    return problems


def lint_file(path: str, source: str,
              rules: Optional[Sequence[Rule]] = None,
              ) -> Tuple[List[Violation], List[Violation], List[Pragma]]:
    """Lint one file; returns (violations, suppressed, pragmas).

    A file that fails to parse yields a single RL000 violation at the
    offending line rather than aborting the run — a syntax error in one
    file must not hide violations in the rest of the tree.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return ([Violation("RL000", path, exc.lineno or 1, 0,
                           f"file does not parse: {exc.msg}")], [], [])
    active = list(RULES if rules is None else rules)
    hits: List[Violation] = []
    for rule in active:
        if rule.applies_to(path):
            hits.extend(rule.check(ctx))
    pragmas = ctx.pragmas()
    surviving, suppressed = apply_pragmas(
        hits, pragmas, statement_extents(ctx.tree))
    active_ids = [rule.id for rule in active] + ["RL000"]
    known_ids = active_ids + list(PROGRAM_RULE_IDS)
    surviving.extend(pragma_hygiene(pragmas, known_ids, active_ids))
    return surviving, suppressed, pragmas


def collect_files(root: str, paths: Sequence[str]) -> List[str]:
    """Root-relative POSIX paths of every ``.py`` file under ``paths``.

    Each entry may be a file or a directory (searched recursively,
    ``__pycache__`` and hidden directories skipped).  Order is sorted
    and deterministic.
    """
    found = set()
    for entry in paths:
        absolute = os.path.join(root, entry)
        if os.path.isfile(absolute):
            found.add(os.path.relpath(absolute, root))
            continue
        if not os.path.isdir(absolute):
            raise ConfigurationError(
                f"lint path {entry!r} does not exist under {root!r}")
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name for name in dirnames
                if name != "__pycache__" and not name.startswith("."))
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.relpath(
                        os.path.join(dirpath, filename), root))
    return sorted(path.replace(os.sep, "/") for path in found)


def lint_paths(paths: Sequence[str], root: str = ".",
               rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint every Python file under ``paths`` (relative to ``root``).

    Raises:
        ConfigurationError: when a requested path does not exist.
    """
    root = os.path.abspath(root)
    result = LintResult(root=root, paths=list(paths))
    active = list(RULES if rules is None else rules)
    for path in collect_files(root, paths):
        with open(os.path.join(root, path), "rb") as handle:
            source = handle.read().decode("utf-8")
        violations, suppressed, pragmas = lint_file(path, source,
                                                    rules=active)
        result.files.append(path)
        result.violations.extend(violations)
        result.suppressed.extend(suppressed)
        result.pragmas.extend(pragmas)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return result
