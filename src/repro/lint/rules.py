"""The rule catalogue: one class per enforced invariant.

Each rule is a small AST check over one file, scoped to the part of the
tree where its contract applies (``scope``) minus the modules that
legitimately implement the primitive it polices (``allow``).  Paths are
matched as POSIX-style strings relative to the lint root, so the same
rule definitions work on the real repository and on the synthetic
fixture trees the test suite builds in temporary directories.

The catalogue (the PR-1–4 contract each rule guards):

========  =============================================================
RL001     No global RNG.  Legacy ``numpy.random.*`` draws and the
          stdlib :mod:`random` module carry hidden process-wide state
          that breaks worker-count invariance; randomness must route
          through :func:`repro.utils.ensure_rng` or
          :mod:`repro.parallel.seeding` (which alone may construct
          generators).
RL002     No wall clock or OS entropy in solver code.  ``time.time``,
          ``datetime.now`` and ``os.urandom`` make solver output depend
          on when/where it ran; only the observability and serving
          layers may read the clock.
RL003     No raw file writes inside ``src/repro`` outside
          :mod:`repro.resilience.atomic`.  A plain ``open(.., "w")`` or
          ``json.dump`` can be killed mid-write and leave a truncated
          artifact; persistence must go through ``atomic_write_*``.
RL004     No blind exception handling.  A bare ``except:`` or an
          ``except Exception: pass`` hides infrastructure failures the
          resilience layer is designed to surface; raising builtin
          ``Exception``/``RuntimeError`` bypasses the typed
          :mod:`repro.errors` surface callers are promised.
RL005     Metric-name literals passed to :mod:`repro.obs` must be
          dotted lowercase (``solver.phase_name``), the registered
          convention every run report and dashboard keys on.
RL006     Checkpoint writers must thread a ``config=`` fingerprint;
          a checkpoint without one cannot reject a resume under
          different hyperparameters, silently voiding the bit-for-bit
          resume guarantee.
RL201     No blocking calls inside ``async def``.  ``open``,
          ``time.sleep``, ``socket.*``, ``subprocess.*`` and direct
          numpy kernel calls stall the event loop for every connection;
          engine work must route through the worker-thread offload
          (``asyncio.to_thread`` / the server's ``_in_worker``).
RL202     No ``await`` while holding a synchronous lock.  A coroutine
          parked at an ``await`` inside ``with some_lock:`` keeps every
          other task out of the lock for an unbounded time — the asyncio
          analogue of holding a spinlock across a syscall.
RL203     No fire-and-forget ``asyncio.create_task``.  A task whose
          handle is dropped can be garbage-collected mid-flight and its
          exceptions are silently lost; keep the handle and await it or
          register a done-callback.
RL301     Versioned format strings (``repro.<pkg>/<name>/v<N>``) may
          only be written literally in :mod:`repro.contracts`; all
          other code imports the registered constant, so typos and
          version drift are structurally impossible.
RL000     Pragma hygiene (implicit): a ``# repro: noqa-RLxxx`` pragma
          must name a known rule, carry a non-empty reason, and
          actually suppress something.
========  =============================================================

Whole-program rules (RL101/RL102 layering and cycles, RL302 registry
loader coverage, RL401/RL402 obs-name conflicts) live in
:mod:`repro.lint.program` — they need the project import graph, not a
single file's AST.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import FileContext

__all__ = [
    "PRAGMA_RE",
    "PROGRAM_RULE_IDS",
    "RULES",
    "Rule",
    "Violation",
    "rule_catalogue",
]

#: Rule ids implemented by the whole-program analyzer
#: (:mod:`repro.lint.program`).  Listed here so the per-file engine can
#: treat pragmas naming them as known-but-not-run instead of typos.
PROGRAM_RULE_IDS = ("RL101", "RL102", "RL302", "RL401", "RL402")

#: Suppression pragma: a ``repro: noqa-`` comment naming one or more
#: comma-separated rule ids, followed by a mandatory reason — a
#: reasonless pragma is itself reported under RL000 and suppresses
#: nothing.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*noqa-((?:[A-Z]{2}\d{3})(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"[ \t]*(.*?)\s*$")


@dataclass(frozen=True)
class Violation:
    """One rule hit at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``file:line:col`` form used by the human reporter."""
        return f"{self.path}:{self.line}:{self.col}"


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _match_any(path: str, patterns: Sequence[str]) -> bool:
    """True when ``path`` falls under any prefix/exact pattern.

    A pattern ending in ``/`` matches the whole subtree; otherwise it
    must match the path exactly.
    """
    for pattern in patterns:
        if pattern.endswith("/"):
            if path.startswith(pattern):
                return True
        elif path == pattern:
            return True
    return False


class Rule:
    """Base rule: id/title/contract metadata plus path scoping.

    Subclasses implement :meth:`check` over a parsed
    :class:`~repro.lint.engine.FileContext`.

    Attributes:
        id: stable ``RLxxx`` identifier (pragma and report currency).
        title: one-line human name.
        guards: the PR-1–4 contract this rule protects (documentation).
        scope: path patterns the rule applies to (empty = every file).
        allow: path patterns exempt because they *implement* the
            primitive the rule polices elsewhere.
    """

    id: str = "RL000"
    title: str = ""
    guards: str = ""
    scope: Sequence[str] = ()
    allow: Sequence[str] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (scope minus allowlist)."""
        if self.scope and not _match_any(path, self.scope):
            return False
        return not _match_any(path, self.allow)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        """Yield every violation of this rule in one parsed file."""
        raise NotImplementedError

    def violation(self, ctx: "FileContext", node: ast.AST,
                  message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(self.id, ctx.path, getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0), message)


# --------------------------------------------------------------------- RL001
#: Legacy ``numpy.random`` surface backed by the hidden global
#: ``RandomState`` (or constructing one): non-reproducible under fan-out.
_NUMPY_LEGACY = frozenset({
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "random_integers", "ranf", "sample",
    "choice", "bytes", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "beta", "binomial", "dirichlet", "exponential",
    "gamma", "geometric", "laplace", "lognormal", "multinomial",
    "multivariate_normal", "poisson", "power", "RandomState",
})

#: Sanctioned generator constructors; allowed only in the two modules
#: that own seeding (everything else receives a Generator/SeedSequence).
#: Raw bit-generator classes are included: a blocked kernel that builds
#: its own ``PCG64`` for batched draws sidesteps the per-task
#: ``SeedSequence.spawn`` discipline and breaks worker-count invariance.
_NUMPY_CONSTRUCTORS = frozenset({
    "default_rng", "SeedSequence", "Generator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


class NoGlobalRng(Rule):
    """RL001 — all randomness flows through the seeding discipline."""

    id = "RL001"
    title = "no global RNG"
    guards = ("PR-2 bit-deterministic seeding: SeedSequence.spawn per "
              "task, worker-count invariance")
    #: Constructor calls are additionally confined to these two modules.
    constructor_allow = ("src/repro/utils.py", "src/repro/parallel/seeding.py")
    constructor_scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_import(self, ctx: "FileContext",
                      node: ast.AST) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.violation(
                        ctx, node,
                        "stdlib 'random' is process-global state; use "
                        "repro.utils.ensure_rng / repro.parallel.seeding")
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module == "random":
            yield self.violation(
                ctx, node,
                "stdlib 'random' is process-global state; use "
                "repro.utils.ensure_rng / repro.parallel.seeding")

    def _check_call(self, ctx: "FileContext",
                    node: ast.Call) -> Iterator[Violation]:
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        parts = resolved.split(".")
        if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            name = parts[2]
            if name in _NUMPY_LEGACY:
                yield self.violation(
                    ctx, node,
                    f"numpy.random.{name} uses the hidden global "
                    f"RandomState; derive a Generator via "
                    f"repro.utils.ensure_rng or spawn_seed_sequences")
            elif name in _NUMPY_CONSTRUCTORS \
                    and _match_any(ctx.path, self.constructor_scope) \
                    and not _match_any(ctx.path, self.constructor_allow):
                yield self.violation(
                    ctx, node,
                    f"numpy.random.{name} constructed outside the seeding "
                    f"modules; accept a seed and call "
                    f"repro.utils.ensure_rng / repro.parallel.seeding")
        elif resolved.startswith("random."):
            yield self.violation(
                ctx, node,
                f"{resolved} draws from the process-global stdlib RNG; "
                f"use repro.utils.ensure_rng / repro.parallel.seeding")


# --------------------------------------------------------------------- RL002
#: Wall-clock and OS-entropy calls forbidden in solver code.  Monotonic
#: timing (perf_counter/monotonic) is deliberately absent: durations do
#: not leak into solver output.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today", "os.urandom", "uuid.uuid1", "uuid.uuid4",
})


class NoWallClock(Rule):
    """RL002 — solver output never depends on when/where it ran."""

    id = "RL002"
    title = "no wall clock or OS entropy in solver code"
    guards = ("PR-1/PR-3 reproducible runs: telemetry and serving may "
              "timestamp, solvers may not")
    scope = ("src/repro/",)
    allow = ("src/repro/obs/", "src/repro/serve/")

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK or (
                    resolved is not None
                    and resolved.startswith("secrets.")):
                yield self.violation(
                    ctx, node,
                    f"{resolved} injects wall-clock/entropy into solver "
                    f"code; only repro.obs and repro.serve may timestamp")


# --------------------------------------------------------------------- RL003
_WRITE_FUNCS = frozenset({
    "json.dump", "pickle.dump", "numpy.save", "numpy.savez",
    "numpy.savez_compressed", "numpy.savetxt", "shutil.copy",
    "shutil.copy2", "shutil.copyfile", "shutil.copyfileobj",
    "shutil.move",
})

_WRITE_MODE = re.compile(r"[wax+]")

#: ``open``-like callables whose second positional argument is a mode.
_OPEN_CALLS = frozenset({"open", "io.open", "os.fdopen", "gzip.open",
                         "bz2.open", "lzma.open"})


class AtomicWritesOnly(Rule):
    """RL003 — persistence in the library goes through atomic_write_*."""

    id = "RL003"
    title = "no raw file writes outside resilience/atomic.py"
    guards = ("PR-3 atomic-only persistence: crash mid-write never "
              "leaves a truncated artifact")
    scope = ("src/repro/",)
    allow = ("src/repro/resilience/atomic.py",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WRITE_FUNCS:
                yield self.violation(
                    ctx, node,
                    f"{resolved} writes a file directly; route it through "
                    f"repro.resilience.atomic (atomic_write_*)")
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("write_text", "write_bytes"):
                yield self.violation(
                    ctx, node,
                    f".{node.func.attr}() writes a file directly; route it "
                    f"through repro.resilience.atomic (atomic_write_*)")
                continue
            name = resolved
            if name is None and isinstance(node.func, ast.Name):
                name = node.func.id
            if name in _OPEN_CALLS and self._write_mode(node):
                yield self.violation(
                    ctx, node,
                    f"{name}(..., {self._write_mode(node)!r}) opens a file "
                    f"for writing; use repro.resilience.atomic instead")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "open" and self._write_mode(node):
                yield self.violation(
                    ctx, node,
                    f".open(..., {self._write_mode(node)!r}) opens a file "
                    f"for writing; use repro.resilience.atomic instead")

    @staticmethod
    def _write_mode(node: ast.Call) -> Optional[str]:
        """The literal mode string when it requests write access."""
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str) \
                and _WRITE_MODE.search(mode.value):
            return mode.value
        return None


# --------------------------------------------------------------------- RL004
_BLIND_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})


class TypedErrorsOnly(Rule):
    """RL004 — no swallowed exceptions, no untyped raises."""

    id = "RL004"
    title = "no bare/blind exception handling"
    guards = ("PR-3 typed error surfaces: failures degrade or raise "
              "repro.errors classes, never vanish")
    scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)

    def _check_handler(self, ctx: "FileContext",
                       node: ast.ExceptHandler) -> Iterator[Violation]:
        if node.type is None:
            yield self.violation(
                ctx, node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                "name the exception (prefer repro.errors classes)")
            return
        if self._catches_everything(node.type) and self._swallows(node.body):
            yield self.violation(
                ctx, node,
                "'except Exception' that only passes hides real failures; "
                "handle, log, or re-raise a repro.errors class")

    @staticmethod
    def _catches_everything(type_node: ast.expr) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [elt.id for elt in type_node.elts
                     if isinstance(elt, ast.Name)]
        elif isinstance(type_node, ast.Name):
            names = [type_node.id]
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _swallows(body: List[ast.stmt]) -> bool:
        """True when the handler body does nothing observable."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    def _check_raise(self, ctx: "FileContext",
                     node: ast.Raise) -> Iterator[Violation]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in _BLIND_RAISES:
            yield self.violation(
                ctx, node,
                f"raise {exc.id} bypasses the typed error surface; raise "
                f"a class from repro.errors instead")


# --------------------------------------------------------------------- RL005
#: Registered metric-name shape: at least two dotted lowercase segments.
_METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
#: Characters permitted in the literal fragments of an f-string name.
_METRIC_FRAGMENT = re.compile(r"^[a-z0-9_.]*$")

_OBS_FUNCS = re.compile(
    r"^repro\.obs(\.registry)?\.(inc|set_gauge|observe|timed|"
    r"timed_function)$")


class DottedMetricNames(Rule):
    """RL005 — every obs metric literal is dotted lowercase."""

    id = "RL005"
    title = "obs metric names dotted lowercase"
    guards = ("PR-1 metrics registry: run reports and dashboards key on "
              "the solver.metric_name convention")
    scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call) or not node.args:
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None or not _OBS_FUNCS.match(resolved):
                continue
            yield from self._check_name(ctx, node.args[0])

    def _check_name(self, ctx: "FileContext",
                    arg: ast.expr) -> Iterator[Violation]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not _METRIC_NAME.match(arg.value):
                yield self.violation(
                    ctx, arg,
                    f"metric name {arg.value!r} is not dotted lowercase "
                    f"(expected e.g. 'solver.phase_name')")
        elif isinstance(arg, ast.JoinedStr):
            for piece in arg.values:
                if isinstance(piece, ast.Constant) \
                        and isinstance(piece.value, str) \
                        and not _METRIC_FRAGMENT.match(piece.value):
                    yield self.violation(
                        ctx, arg,
                        f"metric name fragment {piece.value!r} is not "
                        f"dotted lowercase")


# --------------------------------------------------------------------- RL006
_CHECKPOINT_FACTORIES = re.compile(
    r"^repro\.resilience(\.checkpoint)?\.(checkpoint_in|CheckpointWriter)$")

#: Positional index of ``config`` in each factory's signature.
_CONFIG_POSITION = {"checkpoint_in": 3, "CheckpointWriter": 2}


class CheckpointsCarryFingerprint(Rule):
    """RL006 — checkpoint writers always get a config fingerprint."""

    id = "RL006"
    title = "checkpoint writers thread config_fingerprint"
    guards = ("PR-3 guarded resume: a config-less checkpoint cannot "
              "reject a resume under different hyperparameters")
    scope = ("src/repro/",)
    allow = ("src/repro/resilience/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            match = _CHECKPOINT_FACTORIES.match(resolved)
            if match is None:
                continue
            factory = match.group(2)
            if len(node.args) > _CONFIG_POSITION[factory]:
                continue
            if any(keyword.arg == "config" for keyword in node.keywords):
                continue
            yield self.violation(
                ctx, node,
                f"{factory}(...) without config=: the checkpoint cannot "
                f"verify it is resumed under the same hyperparameters "
                f"and seed (pass a config_fingerprint-able dict)")


# --------------------------------------------------------------------- RL201
#: Calls that block the thread they run on.  Inside an ``async def``
#: every one of these stalls the event loop — and with it every open
#: connection — for its full duration.
_BLOCKING_EXACT = frozenset({
    "time.sleep", "io.open", "os.system", "os.popen", "select.select",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
})

#: Resolved-name prefixes that are blocking wholesale: raw sockets and
#: direct numpy kernels (an ``engine.search`` fanned out through the
#: worker offload is fine; ``numpy.argsort`` on the loop thread is not).
_BLOCKING_PREFIXES = ("socket.", "numpy.", "urllib.request.", "requests.")

#: Builtins that block when called bare (no import needed to resolve).
_BLOCKING_BUILTINS = frozenset({"open", "input"})


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes that execute on the event loop inside ``func``.

    Nested function definitions are pruned: a nested sync ``def`` is
    worker-offload material (its body runs wherever it is called, and
    the established idiom ships it through ``asyncio.to_thread``), and a
    nested ``async def`` is visited as its own function by the rule's
    outer loop.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class NoBlockingInAsync(Rule):
    """RL201 — the event loop thread never blocks on I/O or kernels."""

    id = "RL201"
    title = "no blocking calls inside async def"
    guards = ("PR-8 asyncio serving: a blocked loop stalls every "
              "connection; engine work goes through the worker-thread "
              "offload")
    scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in _async_body_nodes(node):
                if isinstance(inner, ast.Call):
                    yield from self._check_call(ctx, inner)

    def _check_call(self, ctx: "FileContext",
                    node: ast.Call) -> Iterator[Violation]:
        resolved = ctx.resolve(node.func)
        blocking = None
        if resolved is not None:
            if resolved in _BLOCKING_EXACT:
                blocking = resolved
            else:
                for prefix in _BLOCKING_PREFIXES:
                    if resolved.startswith(prefix):
                        blocking = resolved
                        break
        elif isinstance(node.func, ast.Name) \
                and node.func.id in _BLOCKING_BUILTINS:
            blocking = node.func.id
        if blocking is not None:
            yield self.violation(
                ctx, node,
                f"{blocking}(...) blocks the event loop inside an "
                f"async def; offload it via asyncio.to_thread (the "
                f"server's _in_worker helper)")


# --------------------------------------------------------------------- RL202
_SYNC_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})


def _looks_like_sync_lock(ctx: "FileContext", expr: ast.expr) -> bool:
    """Whether a ``with`` context expression is plausibly a sync lock.

    Matches a direct ``threading.Lock()``-style construction (resolved
    through imports) or a name/attribute whose final identifier ends in
    ``lock`` (``self._lock``, ``swap_lock``) — the codebase's naming
    convention for threading locks.  ``asyncio`` primitives are used
    with ``async with`` and never reach this check.
    """
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve(expr.func)
        return resolved in _SYNC_LOCK_FACTORIES
    terminal = None
    if isinstance(expr, ast.Attribute):
        terminal = expr.attr
    elif isinstance(expr, ast.Name):
        terminal = expr.id
    return terminal is not None and terminal.lower().endswith("lock")


class NoAwaitUnderLock(Rule):
    """RL202 — never park a coroutine while holding a sync lock."""

    id = "RL202"
    title = "no await while a synchronous lock is held"
    guards = ("PR-8/PR-9 hot-swap drain: an await under a threading "
              "lock can starve every other task (and the swap path) "
              "for an unbounded time")
    scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in _async_body_nodes(node):
                # ast.With only: `async with` (ast.AsyncWith) wraps
                # asyncio primitives, which yield instead of blocking.
                if not isinstance(inner, ast.With):
                    continue
                if not any(_looks_like_sync_lock(ctx, item.context_expr)
                           for item in inner.items):
                    continue
                for sub in ast.walk(inner):
                    if isinstance(sub, ast.Await):
                        yield self.violation(
                            ctx, sub,
                            "await while a synchronous lock is held: "
                            "other tasks (and the lock) stall until "
                            "this coroutine resumes; release the lock "
                            "first or use an asyncio primitive")
                        break


# --------------------------------------------------------------------- RL203
class NoDroppedTasks(Rule):
    """RL203 — every created task keeps a handle."""

    id = "RL203"
    title = "no fire-and-forget asyncio.create_task"
    guards = ("PR-8 graceful drain: a dropped task handle can be "
              "garbage-collected mid-flight and its exceptions are "
              "silently lost")
    scope = ("src/repro/",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Expr) \
                    or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            resolved = ctx.resolve(call.func)
            is_create = resolved in ("asyncio.create_task",
                                     "asyncio.ensure_future")
            if not is_create and isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "create_task":
                is_create = True
            if is_create:
                yield self.violation(
                    ctx, node,
                    "create_task result is dropped; keep the handle "
                    "(track it in a set, await it, or add a "
                    "done-callback) so the task cannot be collected "
                    "mid-flight and its exception is observed")


# --------------------------------------------------------------------- RL301
#: A versioned format string, exactly (docstrings that merely mention a
#: format inside prose never match the full-string anchors).
_FORMAT_LITERAL = re.compile(
    r"^repro\.[a-z_]+(?:\.[a-z_]+)*/[a-z0-9-]+/v[0-9]+$")


class RegistryLiteralsOnly(Rule):
    """RL301 — versioned format strings live only in repro.contracts."""

    id = "RL301"
    title = "schema literals only in the contracts registry"
    guards = ("PR-10 schema registry: a format string typo'd or drifted "
              "at a call site is a latent decode failure; importing the "
              "registered constant makes drift structurally impossible")
    scope = ("src/repro/",)
    allow = ("src/repro/contracts.py",)

    def check(self, ctx: "FileContext") -> Iterator[Violation]:
        for node in ctx.walk():
            if not isinstance(node, ast.Constant) \
                    or not isinstance(node.value, str):
                continue
            if not _FORMAT_LITERAL.match(node.value):
                continue
            yield self.violation(ctx, node, self._message(node.value))

    @staticmethod
    def _message(literal: str) -> str:
        try:
            from ..contracts import REGISTRY, constant_name_of
        except ImportError:  # fixture trees without the package
            REGISTRY, constant_name_of = {}, lambda fmt: None
        if literal in REGISTRY:
            constant = constant_name_of(literal)
            return (f"format literal {literal!r} duplicates the "
                    f"registry; import {constant} from repro.contracts")
        return (f"format literal {literal!r} is not registered in "
                f"repro.contracts (typo, drifted version, or an "
                f"unregistered format); register it and import the "
                f"constant")


#: The catalogue, in report order.
RULES: List[Rule] = [
    NoGlobalRng(),
    NoWallClock(),
    AtomicWritesOnly(),
    TypedErrorsOnly(),
    DottedMetricNames(),
    CheckpointsCarryFingerprint(),
    NoBlockingInAsync(),
    NoAwaitUnderLock(),
    NoDroppedTasks(),
    RegistryLiteralsOnly(),
]


def rule_catalogue() -> Dict[str, Rule]:
    """Rule id → rule instance for the shipped catalogue."""
    return {rule.id: rule for rule in RULES}
