"""Whole-program rule families and the project lint orchestration.

Four rule families run over the :class:`~repro.lint.graph.ProjectGraph`
rather than over single files:

========  =============================================================
RL101     Layering.  The subsystems form a declared dependency DAG —
          ``errors/contracts < utils < obs < parallel/fastpath <
          resilience < solvers < serve/stream/lint < cli`` — and every
          *module-scope* import must point sideways or downward.
          Deferred imports (function-local, ``TYPE_CHECKING``) are
          exempt: they execute late or never, so they cannot couple
          subsystems at import time.
RL102     Import cycles.  No strongly connected component of size > 1
          in the module-scope import graph; the violation names a
          concrete witnessing chain.
RL302     Registry coverage.  Every format registered in
          ``repro.contracts`` must name a loader entry point that
          statically resolves in the project symbol table — a version
          nobody can load is a write-only contract.
RL401     Obs kind conflicts.  One metric name must not be used both
          as a counter and as a timer (spans and timers are
          compatible: spans observe into timers by design, DESIGN
          §5.4).
RL402     Obs namespace collisions.  A metric/span name emitted from
          two different subsystems is almost always an accident — two
          dashboards silently summing into one series.
========  =============================================================

:func:`lint_project` ties it together: summarize every file (through
the content-hash cache), build the graph, run the per-file hits and the
program families through the same pragma/suppression machinery, and
return one :class:`~repro.lint.engine.LintResult`.

Note: the declared DAG deviates from the original sketch in one
deliberate place — ``fastpath`` sits *beside* ``parallel`` (below the
solvers), because the solver packages import its kernels at module
scope.  The layer table is the contract; this module enforces it.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import (LintResult, apply_pragmas, collect_files,
                     pragma_hygiene)
from .graph import (FileSummary, ProjectGraph, load_cache, save_cache,
                    summarize_file)
from .rules import PROGRAM_RULE_IDS, RULES, Rule, Violation

__all__ = [
    "LAYERS",
    "cycle_violations",
    "layering_violations",
    "lint_project",
    "obs_inventory",
    "obs_violations",
    "registry_violations",
    "subsystem_of",
]

#: Subsystem → layer level.  An import is legal iff
#: ``level(target) <= level(source)``; same-level imports are allowed
#: (the solver band genuinely cross-references, e.g. cathy → corpus).
LAYERS: Dict[str, int] = {
    # Foundations: zero internal dependencies.
    "root": 0, "errors": 0, "contracts": 0,
    "utils": 1,
    "obs": 2,
    # Execution substrate and numeric kernels (solvers import both).
    "parallel": 3, "fastpath": 3,
    "resilience": 4,
    # The solver band.
    "core": 5, "corpus": 5, "datasets": 5, "network": 5,
    "hierarchy": 5, "phrases": 5, "baselines": 5, "cathy": 5,
    "strod": 5, "relations": 5, "roles": 5, "eval": 5,
    # Products over solvers.
    "serve": 6, "stream": 6, "lint": 6,
    # Entry points see everything.
    "cli": 7, "main": 7,
}


def subsystem_of(module: str) -> Optional[str]:
    """Layer-table key of a first-party module (None ⇒ unlayered).

    ``repro.serve.router`` → ``serve``; ``repro.errors`` → ``errors``;
    ``repro`` itself and ``repro.__main__`` map to their own keys.
    Non-``repro`` modules (tests, fixture scaffolding) are unlayered.
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "root"
    head = parts[1]
    if head == "__main__":
        return "main"
    if head == "cli":
        return "cli"
    return head


def _violation(rule: str, path: str, line: int,
               message: str) -> Violation:
    return Violation(rule, path, line, 0, message)


# -------------------------------------------------------------------- RL101
def layering_violations(graph: ProjectGraph) -> List[Violation]:
    """Module-scope imports that point *up* the layer table."""
    found: List[Violation] = []
    for source, target, line, _deferred in graph.module_edges():
        src_key = subsystem_of(source)
        dst_key = subsystem_of(target)
        if src_key is None or dst_key is None:
            continue
        src_level = LAYERS.get(src_key)
        dst_level = LAYERS.get(dst_key)
        if src_level is None or dst_level is None or \
                dst_level <= src_level:
            continue
        path = graph.modules[source].path
        found.append(_violation(
            "RL101", path, line,
            f"layering violation: {source} (layer {src_level}, "
            f"'{src_key}') imports {target} (layer {dst_level}, "
            f"'{dst_key}'); imports must point downward — chain "
            f"{source}:{line} -> {target}"))
    return found


# -------------------------------------------------------------------- RL102
def cycle_violations(graph: ProjectGraph) -> List[Violation]:
    """Import-time cycles, one violation per strongly connected set."""
    found: List[Violation] = []
    for cycle in graph.find_cycles():
        chain = graph.import_chain(cycle)
        anchor = graph.modules[cycle[0]]
        line = 1
        for site in anchor.imports:
            target = graph.resolve_module(str(site["target"]))
            if target in cycle and not site["deferred"]:
                line = int(site["line"])
                break
        found.append(_violation(
            "RL102", anchor.path, line,
            f"import cycle among {len(cycle)} modules: "
            f"{' -> '.join(chain)}; break it with a deferred "
            f"(function-local) import or by moving the shared piece "
            f"down a layer"))
    return found


# -------------------------------------------------------------------- RL302
def registry_violations(graph: ProjectGraph) -> List[Violation]:
    """Registered formats whose loader does not statically resolve.

    The registry is read from the graph itself — the ``_register``
    call sites in the tree's ``repro.contracts`` module, including the
    miniature contracts modules fixture trees carry — so this check
    never imports analyzed code.  Trees without a contracts module are
    skipped (nothing is registered, nothing to cover).
    """
    contracts = graph.modules.get("repro.contracts")
    if contracts is None:
        return []
    found: List[Violation] = []
    for site in contracts.schema_sites:
        if not site.get("registered"):
            continue
        line = int(site["line"])
        literal = str(site["literal"])
        loader = site.get("loader")
        if not loader:
            found.append(_violation(
                "RL302", contracts.path, line,
                f"registered format {literal!r} has no loader entry "
                f"point; a version nobody can load is a write-only "
                f"contract"))
            continue
        module, _, symbol = str(loader).partition(":")
        if module not in graph.modules:
            found.append(_violation(
                "RL302", contracts.path, line,
                f"format {literal!r} names loader module {module!r} "
                f"which is not in the project"))
        elif symbol and not graph.resolve_symbol(module, symbol):
            found.append(_violation(
                "RL302", contracts.path, line,
                f"format {literal!r} names loader {loader!r} but "
                f"{symbol!r} is not defined in {module}"))
    return found


# -------------------------------------------------------------- RL401/RL402
#: Spans observe into same-named timers by design, so for conflict
#: purposes they are one equivalence class.
_KIND_CLASS = {"counter": "counter", "gauge": "gauge",
               "timer": "timer", "span": "timer"}


def obs_inventory(graph: ProjectGraph) -> List[Dict[str, object]]:
    """The generated metric/span inventory, one row per name pattern.

    Each row: ``name``, sorted ``kinds``, sorted ``subsystems``, and
    ``sites`` (count).  This is what the README table and the report's
    ``obs_inventory`` section render.
    """
    by_name: Dict[str, Dict[str, object]] = {}
    for summary in graph.summaries.values():
        subsystem = None
        if summary.module:
            subsystem = subsystem_of(summary.module)
        for site in summary.obs_sites:
            name = str(site["name"])
            row = by_name.setdefault(
                name, {"name": name, "kinds": set(), "subsystems": set(),
                       "sites": 0})
            row["kinds"].add(str(site["kind"]))  # type: ignore[union-attr]
            if subsystem:
                row["subsystems"].add(subsystem)  # type: ignore
            row["sites"] = int(row["sites"]) + 1
    rows = []
    for name in sorted(by_name):
        row = by_name[name]
        rows.append({"name": name,
                     "kinds": sorted(row["kinds"]),  # type: ignore
                     "subsystems": sorted(row["subsystems"]),  # type: ignore
                     "sites": row["sites"]})
    return rows


def _obs_sites_of(graph: ProjectGraph,
                  name: str) -> List[Tuple[str, int, str, Optional[str]]]:
    """(path, line, kind, subsystem) of every site emitting ``name``."""
    sites = []
    for summary in graph.summaries.values():
        subsystem = subsystem_of(summary.module) if summary.module \
            else None
        for site in summary.obs_sites:
            if str(site["name"]) == name:
                sites.append((summary.path, int(site["line"]),
                              str(site["kind"]), subsystem))
    sites.sort()
    return sites


def obs_violations(graph: ProjectGraph) -> List[Violation]:
    """RL401 kind conflicts and RL402 cross-subsystem collisions."""
    found: List[Violation] = []
    for row in obs_inventory(graph):
        name = str(row["name"])
        kinds = list(row["kinds"])  # type: ignore[arg-type]
        classes = sorted({_KIND_CLASS[kind] for kind in kinds})
        sites = _obs_sites_of(graph, name)
        where = ", ".join(f"{path}:{line}" for path, line, _k, _s
                          in sites[:4])
        if len(classes) > 1:
            path, line = sites[0][0], sites[0][1]
            found.append(_violation(
                "RL401", path, line,
                f"obs name {name!r} is used with conflicting kinds "
                f"{'/'.join(sorted(kinds))} ({where}); one name must "
                f"stay one instrument"))
        subsystems = sorted(
            {s for _p, _l, _k, s in sites if s is not None})
        if len(subsystems) > 1:
            path, line = sites[0][0], sites[0][1]
            found.append(_violation(
                "RL402", path, line,
                f"obs name {name!r} is emitted from multiple "
                f"subsystems {'/'.join(subsystems)} ({where}); two "
                f"writers silently sum into one series — prefix the "
                f"name with its subsystem"))
    return found


# ------------------------------------------------------------- changed-only
def changed_files(root: str) -> Set[str]:
    """Root-relative paths git considers changed (diff vs HEAD + untracked).

    Any git failure (not a repository, no HEAD yet) degrades to the
    empty set, which callers treat as "nothing scoped" rather than an
    error.
    """
    changed: Set[str] = set()
    for args in (["git", "diff", "--name-only", "HEAD"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            out = subprocess.run(
                args, cwd=root, capture_output=True, text=True,
                timeout=30, check=True).stdout
        except (OSError, subprocess.SubprocessError):
            return set()
        changed.update(line.strip() for line in out.splitlines()
                       if line.strip())
    return changed


# ------------------------------------------------------------ orchestration
def lint_project(paths: Sequence[str], root: str = ".",
                 rules: Optional[Sequence[Rule]] = None,
                 cache_path: Optional[str] = None,
                 changed_only: bool = False) -> LintResult:
    """Whole-program lint: per-file rules + program families, one result.

    The graph is always built over *all* files under ``paths`` — scoped
    runs (``changed_only``) still see the full import graph and obs
    namespace, only the reported violations are filtered to files git
    considers changed.  With ``cache_path`` set, unchanged files (by
    content hash) skip parsing and rule traversal entirely; the cache
    is rewritten after every run.
    """
    root = os.path.abspath(root)
    active = list(RULES if rules is None else rules)
    cached = load_cache(cache_path, active) if cache_path else {}
    hits = misses = 0

    summaries: List[FileSummary] = []
    for path in collect_files(root, paths):
        with open(os.path.join(root, path), "rb") as handle:
            data = handle.read()
        sha = hashlib.sha256(data).hexdigest()
        entry = cached.get(path)
        if isinstance(entry, dict) and entry.get("sha256") == sha:
            summaries.append(FileSummary.from_dict(entry))
            hits += 1
        else:
            summaries.append(summarize_file(
                path, data.decode("utf-8"), rules=active))
            misses += 1
    if cache_path:
        save_cache(cache_path, summaries, active)

    graph = ProjectGraph(summaries)
    program_hits: Dict[str, List[Violation]] = defaultdict(list)
    for violation in (layering_violations(graph)
                      + cycle_violations(graph)
                      + registry_violations(graph)
                      + obs_violations(graph)):
        program_hits[violation.path].append(violation)

    result = LintResult(root=root, paths=list(paths),
                        whole_program=True)
    result.modules = {summary.module: summary.path
                      for summary in summaries if summary.module}
    result.import_edges = graph.edge_count()
    result.obs_inventory = obs_inventory(graph)
    result.cache_stats = {"hits": hits, "misses": misses}

    known_ids = [rule.id for rule in active] + ["RL000"] \
        + [rid for rid in PROGRAM_RULE_IDS
           if rid not in {rule.id for rule in active}]
    for summary in summaries:
        raw = summary.violations() + program_hits.get(summary.path, [])
        pragmas = summary.pragma_objects()
        surviving, suppressed = apply_pragmas(raw, pragmas,
                                              summary.extents)
        # Whole-program mode runs the full catalogue, so every pragma
        # must earn its keep: known == active.
        surviving.extend(pragma_hygiene(pragmas, known_ids))
        result.files.append(summary.path)
        result.violations.extend(surviving)
        result.suppressed.extend(suppressed)
        result.pragmas.extend(pragmas)

    if changed_only:
        scoped = changed_files(root)
        result.violations = [violation for violation in result.violations
                             if violation.path in scoped]
    result.violations.sort(
        key=lambda v: (v.path, v.line, v.col, v.rule))
    return result
