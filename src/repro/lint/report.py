"""Lint reporters: human-readable text and the stable JSON document.

The JSON form carries the ``repro.lint/report/v1`` schema tag, matching
the library's other versioned artifacts (run reports, checkpoints,
model manifests).  Its shape is a compatibility contract — tooling
diffs rule counts across commits — so fields are only ever *added*
under this schema id, never renamed or removed:

.. code-block:: json

    {"schema": "repro.lint/report/v1",
     "repro_version": "1.2.0",
     "root": "/abs/path",
     "paths": ["src", "tests"],
     "files_scanned": 142,
     "clean": true,
     "rules": {"RL001": {"title": "...", "guards": "...",
                         "violations": 0, "suppressed": 0}},
     "violations": [{"rule": "RL003", "file": "src/...", "line": 9,
                     "col": 4, "message": "..."}],
     "suppressions": [{"rules": ["RL003"], "file": "src/...",
                       "line": 195, "reason": "...", "used": 1}],
     "summary": {"violations": 0, "suppressions": 3,
                 "suppressed_hits": 3}}

``rules`` always lists the full catalogue (zero counts included) plus
an ``RL000`` entry when pragma-hygiene problems were found, so a diff
between two reports never confuses "rule removed" with "count zero".
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .engine import LintResult
from .rules import RULES

__all__ = [
    "REPORT_SCHEMA",
    "render_human",
    "render_json",
    "to_document",
]

REPORT_SCHEMA = "repro.lint/report/v1"


def to_document(result: LintResult) -> Dict[str, Any]:
    """The ``repro.lint/report/v1`` document for one lint run."""
    from .. import get_version

    by_rule = result.counts_by_rule()
    suppressed_by_rule: Dict[str, int] = {}
    for violation in result.suppressed:
        suppressed_by_rule[violation.rule] = \
            suppressed_by_rule.get(violation.rule, 0) + 1
    rules = {
        rule.id: {
            "title": rule.title,
            "guards": rule.guards,
            "violations": by_rule.get(rule.id, 0),
            "suppressed": suppressed_by_rule.get(rule.id, 0),
        }
        for rule in RULES
    }
    if by_rule.get("RL000"):
        rules["RL000"] = {
            "title": "pragma hygiene",
            "guards": "suppressions stay justified and live",
            "violations": by_rule["RL000"],
            "suppressed": 0,
        }
    return {
        "schema": REPORT_SCHEMA,
        "repro_version": get_version(),
        "root": result.root,
        "paths": list(result.paths),
        "files_scanned": len(result.files),
        "clean": result.clean,
        "rules": rules,
        "violations": [
            {"rule": v.rule, "file": v.path, "line": v.line, "col": v.col,
             "message": v.message}
            for v in result.violations
        ],
        "suppressions": [
            {"rules": list(p.rule_ids), "file": p.path, "line": p.line,
             "reason": p.reason, "used": p.used}
            for p in result.pragmas
        ],
        "summary": {
            "violations": len(result.violations),
            "suppressions": len(result.pragmas),
            "suppressed_hits": len(result.suppressed),
        },
    }


def render_json(result: LintResult) -> str:
    """The JSON report as an indented, newline-terminated string."""
    return json.dumps(to_document(result), indent=2, sort_keys=False) + "\n"


def render_human(result: LintResult) -> str:
    """Compiler-style report: one ``file:line:col RLxxx message`` per hit."""
    lines = []
    for violation in result.violations:
        lines.append(f"{violation.location()}: {violation.rule} "
                     f"{violation.message}")
    total = len(result.violations)
    if total:
        by_rule = result.counts_by_rule()
        breakdown = ", ".join(f"{rule} x{count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"repro lint: {total} violation"
                     f"{'s' if total != 1 else ''} in "
                     f"{len(result.files)} files ({breakdown})")
    else:
        lines.append(f"repro lint: {len(result.files)} files clean "
                     f"({len(result.pragmas)} suppression"
                     f"{'s' if len(result.pragmas) != 1 else ''} in use)")
    return "\n".join(lines) + "\n"
