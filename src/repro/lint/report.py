"""Lint reporters: human text, the stable JSON document, and SARIF.

The JSON form carries the ``repro.lint/report/v1`` schema tag, matching
the library's other versioned artifacts (run reports, checkpoints,
model manifests).  Its shape is a compatibility contract — tooling
diffs rule counts across commits — so fields are only ever *added*
under this schema id, never renamed or removed:

.. code-block:: json

    {"schema": "repro.lint/report/v1",
     "repro_version": "1.2.0",
     "root": "/abs/path",
     "paths": ["src", "tests"],
     "files_scanned": 142,
     "clean": true,
     "rules": {"RL001": {"title": "...", "guards": "...",
                         "violations": 0, "suppressed": 0}},
     "violations": [{"rule": "RL003", "file": "src/...", "line": 9,
                     "col": 4, "message": "..."}],
     "suppressions": [{"rules": ["RL003"], "file": "src/...",
                       "line": 195, "reason": "...", "used": 1}],
     "summary": {"violations": 0, "suppressions": 3,
                 "suppressed_hits": 3}}

``rules`` always lists the full catalogue (zero counts included) plus
an ``RL000`` entry when pragma-hygiene problems were found, so a diff
between two reports never confuses "rule removed" with "count zero".
A whole-program run (PR 10) adds a ``program`` section — module count,
import-edge count, cache hit/miss stats, and the generated obs-name
inventory — still under the additive-evolution contract.

:func:`render_sarif` emits SARIF 2.1.0 (the static-analysis interchange
format GitHub code scanning ingests): one run, one ``tool.driver`` with
the full rule catalogue, one ``result`` per surviving violation with a
physical location relative to the ``SRCROOT`` URI base.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..contracts import LINT_REPORT_V1
from ..errors import DataError
from .engine import LintResult
from .rules import PROGRAM_RULE_IDS, RULES

__all__ = [
    "REPORT_SCHEMA",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "load_report",
    "render_human",
    "render_json",
    "render_sarif",
    "to_document",
]

REPORT_SCHEMA = LINT_REPORT_V1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Program-rule metadata for reports (per-file rules carry their own
#: title/guards on the Rule object; these five live in repro.lint.program
#: and are described here so the catalogue is always complete).
_PROGRAM_RULE_INFO: Dict[str, Dict[str, str]] = {
    "RL101": {"title": "subsystem layering (imports point downward)",
              "guards": "the declared dependency DAG stays acyclic and "
                        "layered"},
    "RL102": {"title": "no import cycles",
              "guards": "module-scope imports form a DAG"},
    "RL302": {"title": "every registered format has a loader",
              "guards": "no write-only schema versions"},
    "RL401": {"title": "obs names keep one instrument kind",
              "guards": "a counter never aliases a timer"},
    "RL402": {"title": "obs names stay within one subsystem",
              "guards": "no cross-subsystem metric collisions"},
}


def to_document(result: LintResult) -> Dict[str, Any]:
    """The ``repro.lint/report/v1`` document for one lint run."""
    from .. import get_version

    by_rule = result.counts_by_rule()
    suppressed_by_rule: Dict[str, int] = {}
    for violation in result.suppressed:
        suppressed_by_rule[violation.rule] = \
            suppressed_by_rule.get(violation.rule, 0) + 1
    rules = {
        rule.id: {
            "title": rule.title,
            "guards": rule.guards,
            "violations": by_rule.get(rule.id, 0),
            "suppressed": suppressed_by_rule.get(rule.id, 0),
        }
        for rule in RULES
    }
    if result.whole_program:
        for rule_id in PROGRAM_RULE_IDS:
            info = _PROGRAM_RULE_INFO.get(rule_id, {})
            rules[rule_id] = {
                "title": info.get("title", rule_id),
                "guards": info.get("guards", ""),
                "violations": by_rule.get(rule_id, 0),
                "suppressed": suppressed_by_rule.get(rule_id, 0),
            }
    if by_rule.get("RL000"):
        rules["RL000"] = {
            "title": "pragma hygiene",
            "guards": "suppressions stay justified and live",
            "violations": by_rule["RL000"],
            "suppressed": 0,
        }
    document = {
        "schema": REPORT_SCHEMA,
        "repro_version": get_version(),
        "root": result.root,
        "paths": list(result.paths),
        "files_scanned": len(result.files),
        "clean": result.clean,
        "rules": rules,
        "violations": [
            {"rule": v.rule, "file": v.path, "line": v.line, "col": v.col,
             "message": v.message}
            for v in result.violations
        ],
        "suppressions": [
            {"rules": list(p.rule_ids), "file": p.path, "line": p.line,
             "reason": p.reason, "used": p.used}
            for p in result.pragmas
        ],
        "summary": {
            "violations": len(result.violations),
            "suppressions": len(result.pragmas),
            "suppressed_hits": len(result.suppressed),
        },
    }
    if result.whole_program:
        document["program"] = {
            "modules": len(result.modules),
            "import_edges": result.import_edges,
            "cache": dict(result.cache_stats),
            "obs_inventory": list(result.obs_inventory),
        }
    return document


def load_report(path: str) -> Dict[str, Any]:
    """Load and validate a persisted ``repro.lint/report/v1`` document.

    The registered loader for the format: checks the schema tag and the
    presence of every v1-required section, so downstream tooling
    (count-diffing, the CI guard) can trust the shape.

    Raises:
        DataError: unreadable file, wrong schema tag, missing section.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise DataError(f"cannot read lint report {path!r}: {exc}") \
            from exc
    found = document.get("schema") if isinstance(document, dict) \
        else None
    if found != REPORT_SCHEMA:
        raise DataError(
            f"{path!r} is not a {REPORT_SCHEMA} document "
            f"(schema={found!r})")
    for section in ("rules", "violations", "suppressions", "summary"):
        if section not in document:
            raise DataError(
                f"lint report {path!r} is missing required section "
                f"{section!r}")
    return document


def render_json(result: LintResult) -> str:
    """The JSON report as an indented, newline-terminated string."""
    return json.dumps(to_document(result), indent=2, sort_keys=False) + "\n"


# -------------------------------------------------------------------- SARIF
def _sarif_rules() -> List[Dict[str, Any]]:
    """The full rule catalogue as SARIF reportingDescriptor objects."""
    descriptors = [
        {"id": rule.id,
         "name": rule.title,
         "shortDescription": {"text": rule.title},
         "fullDescription": {"text": rule.guards},
         "defaultConfiguration": {"level": "error"}}
        for rule in RULES
    ]
    for rule_id in PROGRAM_RULE_IDS:
        info = _PROGRAM_RULE_INFO.get(rule_id, {})
        descriptors.append(
            {"id": rule_id,
             "name": info.get("title", rule_id),
             "shortDescription": {"text": info.get("title", rule_id)},
             "fullDescription": {"text": info.get("guards", "")},
             "defaultConfiguration": {"level": "error"}})
    descriptors.append(
        {"id": "RL000",
         "name": "pragma hygiene",
         "shortDescription": {"text": "pragma hygiene"},
         "fullDescription": {
             "text": "suppressions stay justified and live"},
         "defaultConfiguration": {"level": "error"}})
    return descriptors


def render_sarif(result: LintResult) -> str:
    """The run as a SARIF 2.1.0 log (GitHub code-scanning compatible).

    Columns are 1-based in SARIF; the engine's 0-based ``col`` is
    shifted.  Paths are emitted relative to the ``SRCROOT`` URI base so
    the log is machine-independent.
    """
    from .. import get_version

    rules = _sarif_rules()
    index_of = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for violation in result.violations:
        results.append({
            "ruleId": violation.rule,
            "ruleIndex": index_of.get(violation.rule, -1),
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        })
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/lint",
                    "semanticVersion": get_version(),
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": f"file://{result.root}/"},
            },
            "invocations": [{
                "executionSuccessful": True,
                "exitCode": 0 if result.clean else 1,
            }],
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=False) + "\n"


def render_human(result: LintResult) -> str:
    """Compiler-style report: one ``file:line:col RLxxx message`` per hit."""
    lines = []
    for violation in result.violations:
        lines.append(f"{violation.location()}: {violation.rule} "
                     f"{violation.message}")
    total = len(result.violations)
    if total:
        by_rule = result.counts_by_rule()
        breakdown = ", ".join(f"{rule} x{count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"repro lint: {total} violation"
                     f"{'s' if total != 1 else ''} in "
                     f"{len(result.files)} files ({breakdown})")
    else:
        lines.append(f"repro lint: {len(result.files)} files clean "
                     f"({len(result.pragmas)} suppression"
                     f"{'s' if len(result.pragmas) != 1 else ''} in use)")
    if result.whole_program:
        lines.append(f"whole-program: {len(result.modules)} modules, "
                     f"{result.import_edges} import edges, "
                     f"{len(result.obs_inventory)} obs names, cache "
                     f"{result.cache_stats.get('hits', 0)} hits / "
                     f"{result.cache_stats.get('misses', 0)} misses")
    return "\n".join(lines) + "\n"
