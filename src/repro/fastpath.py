"""Fast-kernel policy shared by the solver suite.

Every hot path in the library ships as a *kernel pair*: a retained
reference implementation (the ground-truth semantics, kept under
``tests/reference_kernels.py`` and equivalence-tested to 1e-12) and a
fast kernel (sparse/vectorized/blocked) that production code runs by
default.  A fast kernel may be unavailable — e.g. :mod:`scipy` failed to
import — in which case the solver silently degrades to an equivalent
slower path and counts the event under ``kernel.fallback.<name>``.

CI's perf-smoke job sets ``REPRO_REQUIRE_FAST_KERNELS=1`` to turn that
silent degradation into a hard :class:`~repro.errors.ConfigurationError`:
a build whose hot paths quietly run reference-speed code must fail,
not pass slowly.
"""

from __future__ import annotations

import os

from .errors import ConfigurationError
from .obs import inc

__all__ = ["ENV_REQUIRE", "fast_kernels_required", "kernel_fallback"]

#: Environment switch: when truthy, any fast-kernel fallback raises.
ENV_REQUIRE = "REPRO_REQUIRE_FAST_KERNELS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def fast_kernels_required() -> bool:
    """True when the environment forbids reference-path fallbacks."""
    return os.environ.get(ENV_REQUIRE, "").strip().lower() in _TRUTHY


def kernel_fallback(name: str, reason: str) -> None:
    """Record that the fast kernel ``name`` is being bypassed.

    Increments ``kernel.fallback.<name>`` so run reports surface silent
    degradation, and raises :class:`ConfigurationError` when
    ``REPRO_REQUIRE_FAST_KERNELS`` is set.

    Args:
        name: dotted kernel identifier, e.g. ``"cathy.m_step"``.
        reason: one-line human explanation of why the fast path is
            unavailable.
    """
    inc("kernel.fallback." + name)
    if fast_kernels_required():
        raise ConfigurationError(
            f"fast kernel {name!r} unavailable ({reason}) but "
            f"{ENV_REQUIRE} is set")
