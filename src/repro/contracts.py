"""Central registry of every versioned format this codebase persists.

Nine subsystems write versioned artifacts — model artifacts,
checkpoints, run reports, corpus shards, lint reports — and each format
is named by a string of the shape ``repro.<pkg>/<name>/v<N>``.  Those
strings are *contracts*: a reader sniffs them to decide how to decode a
file, and a writer stamps them so a future reader can refuse what it
does not understand.  Before this module existed each owning module
declared its own literal, which meant a typo or a drifted version
number was invisible until a load failed in production.

This module is the single source of truth.  Every format string is
registered exactly once, alongside the module that owns the format and
the loader entry point that can decode it; the constants defined here
(``MODEL_V1``, ``CHECKPOINT_V1``, ...) are what the rest of the tree
imports.  Two enforcement layers keep the registry honest:

* the whole-program linter (``repro lint``): rule RL301 flags any
  ``repro.<pkg>/<name>/v<N>`` string literal in ``src/`` outside this
  module, and RL302 checks every registered format names a loader that
  exists in the project;
* ``python -m repro.contracts`` re-validates at runtime — format shape,
  uniqueness, and that every loader actually imports — and is run as a
  CI guard step.

Registering a new format is three lines here plus importing the new
constant at the write site; forgetting any of those steps is a lint
failure, not a latent decode bug.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError

__all__ = [
    "CHECKPOINT_V1",
    "FORMAT_PATTERN",
    "LINT_CACHE_V1",
    "LINT_REPORT_V1",
    "MODEL_V1",
    "MODEL_V2",
    "MOMENT_SKETCH_V1",
    "PROFILE_V1",
    "REGISTRY",
    "RUN_REPORT_V1",
    "RUN_REPORT_V2",
    "SHARD_DIR_V1",
    "SHARD_V1",
    "SchemaSpec",
    "VOCAB_DELTA_V1",
    "check_registry",
    "constant_name_of",
    "get_spec",
    "registered_formats",
]

#: The shape every versioned format string must have.  The linter uses
#: the same pattern to find stray literals in ``src/``.
FORMAT_PATTERN = r"repro\.[a-z_]+(?:\.[a-z_]+)*/[a-z0-9-]+/v[0-9]+"

_FORMAT_RE = re.compile(f"^{FORMAT_PATTERN}$")


@dataclass(frozen=True)
class SchemaSpec:
    """One registered versioned format.

    Attributes:
        format: the ``repro.<pkg>/<name>/v<N>`` string written to disk.
        owner: dotted module that defines the format (writes it).
        loader: ``module:symbol`` entry point that decodes / validates a
            document of this format; ``symbol`` may be dotted
            (``Class.method``).  Every registered format must have one —
            a version nobody can load is a write-only contract.
        title: one-line human description.
    """

    format: str
    owner: str
    loader: str
    title: str

    def loader_parts(self) -> Tuple[str, str]:
        """``(module, symbol)`` split of the loader entry point."""
        module, _, symbol = self.loader.partition(":")
        return module, symbol


#: Format string → spec, in registration order.
REGISTRY: Dict[str, SchemaSpec] = {}


def _register(fmt: str, *, owner: str, loader: str, title: str) -> str:
    """Register one format; returns ``fmt`` so constants read naturally."""
    if not _FORMAT_RE.match(fmt):
        raise ConfigurationError(
            f"format string {fmt!r} does not match "
            f"'repro.<pkg>/<name>/v<N>'")
    if fmt in REGISTRY:
        raise ConfigurationError(f"format {fmt!r} registered twice")
    if ":" not in loader:
        raise ConfigurationError(
            f"loader for {fmt!r} must be 'module:symbol', got {loader!r}")
    REGISTRY[fmt] = SchemaSpec(fmt, owner, loader, title)
    return fmt


# ----------------------------------------------------------------- registry
MODEL_V1 = _register(
    "repro.serve/model/v1",
    owner="repro.serve.artifact",
    loader="repro.serve.artifact:load_model",
    title="canonical-JSON model artifact (CRC32 payload, manifest)")

MODEL_V2 = _register(
    "repro.serve/model/v2",
    owner="repro.serve.artifact_v2",
    loader="repro.serve.artifact_v2:load_model_v2",
    title="zero-copy mmap model artifact (aligned CRC'd binary sections)")

CHECKPOINT_V1 = _register(
    "repro.resilience/checkpoint/v1",
    owner="repro.resilience.checkpoint",
    loader="repro.resilience.checkpoint:load_checkpoint",
    title="CRC-framed solver checkpoint with config fingerprint guard")

RUN_REPORT_V1 = _register(
    "repro.obs/run-report/v1",
    owner="repro.obs.report",
    loader="repro.obs.report:upgrade_report",
    title="run telemetry report, v1 (upgraded to v2 by the loader shim)")

RUN_REPORT_V2 = _register(
    "repro.obs/run-report/v2",
    owner="repro.obs.report",
    loader="repro.obs.report:validate_report",
    title="run telemetry report with resources and top-span table")

PROFILE_V1 = _register(
    "repro.obs/profile/v1",
    owner="repro.obs.profile",
    loader="repro.obs.profile:validate_profile_report",
    title="per-span RSS/allocation profile ranked by self-time")

SHARD_V1 = _register(
    "repro.stream/shard/v1",
    owner="repro.stream.shards",
    loader="repro.stream.shards:ShardStore.load_shard",
    title="append-only CRC-framed corpus shard")

SHARD_DIR_V1 = _register(
    "repro.stream/shard-dir/v1",
    owner="repro.stream.shards",
    loader="repro.stream.shards:ShardStore",
    title="shard-store directory manifest (atomic commit point)")

VOCAB_DELTA_V1 = _register(
    "repro.stream/vocab-delta/v1",
    owner="repro.stream.shards",
    loader="repro.stream.shards:ShardStore._load_vocabulary",
    title="contiguous vocab-delta log replayed with corruption checks")

MOMENT_SKETCH_V1 = _register(
    "repro.strod/moment-sketch/v1",
    owner="repro.strod.moments",
    loader="repro.strod.moments:MomentSketch.from_state",
    title="mergeable per-doc count-row sketch with CRC fingerprint")

LINT_REPORT_V1 = _register(
    "repro.lint/report/v1",
    owner="repro.lint.report",
    loader="repro.lint.report:load_report",
    title="stable lint report (per-rule counts, violations, pragmas)")

LINT_CACHE_V1 = _register(
    "repro.lint/cache/v1",
    owner="repro.lint.graph",
    loader="repro.lint.graph:load_cache",
    title="content-hash-keyed per-file analysis cache for repro lint")


#: Format string → the public constant name defined in this module,
#: so lint messages can say exactly what to import.
_CONSTANT_NAMES: Dict[str, str] = {
    value: name
    for name, value in list(globals().items())
    if isinstance(value, str) and value in REGISTRY and name.isupper()
}


# ------------------------------------------------------------------ queries
def registered_formats() -> Tuple[str, ...]:
    """Every registered format string, in registration order."""
    return tuple(REGISTRY)


def get_spec(fmt: str) -> SchemaSpec:
    """The spec for ``fmt``; raises for an unregistered format."""
    try:
        return REGISTRY[fmt]
    except KeyError:
        raise ConfigurationError(
            f"format {fmt!r} is not registered in repro.contracts") \
            from None


def constant_name_of(fmt: str) -> Optional[str]:
    """The public constant exporting ``fmt`` (None if unregistered)."""
    return _CONSTANT_NAMES.get(fmt)


def check_registry() -> List[str]:
    """Runtime validation of the registry; returns problem strings.

    Checks every format string's shape, that each constant is exported,
    and — the expensive part — that every loader entry point imports and
    resolves.  Empty list means the registry and the code agree.
    """
    import importlib

    problems: List[str] = []
    for fmt, spec in REGISTRY.items():
        if not _FORMAT_RE.match(fmt):
            problems.append(f"{fmt}: malformed format string")
        if fmt not in _CONSTANT_NAMES:
            problems.append(f"{fmt}: no public constant exports it")
        module_name, symbol = spec.loader_parts()
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            problems.append(
                f"{fmt}: loader module {module_name!r} does not import "
                f"({exc})")
            continue
        target = module
        for part in symbol.split("."):
            target = getattr(target, part, None)
            if target is None:
                problems.append(
                    f"{fmt}: loader symbol {spec.loader!r} does not "
                    f"resolve (missing {part!r})")
                break
        else:
            if not callable(target):
                problems.append(
                    f"{fmt}: loader {spec.loader!r} is not callable")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.contracts`` — the CI registry guard.

    Exit 0 when the registry validates, 1 with one problem per line on
    stderr otherwise.
    """
    import sys

    del argv  # no flags: the guard either passes or it does not
    problems = check_registry()
    if problems:
        for problem in problems:
            print(f"repro.contracts: {problem}", file=sys.stderr)
        return 1
    print(f"repro.contracts: {len(REGISTRY)} registered formats, "
          f"all loaders resolve")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI guard
    import sys

    sys.exit(main())
