"""Deterministic per-task seed derivation for parallel execution.

Every fan-out point derives one :class:`numpy.random.SeedSequence` per
task with :meth:`SeedSequence.spawn` *in the parent*, before dispatch.
Spawning is deterministic given the root seed and the spawn call order,
and the parent's control flow is always serial — so a run with
``workers=1`` and a run with ``workers=8`` hand exactly the same seed to
every task, and parallel results reproduce serial results bit for bit.

Seed sequences are small and picklable, which makes them the natural
currency to ship to worker processes: the worker builds its own
:class:`~numpy.random.Generator` locally with :func:`rng_from`.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..utils import RandomState, ensure_rng

__all__ = [
    "rng_from",
    "seed_sequence_of",
    "spawn_generators",
    "spawn_seed_sequences",
]

SeedLike = Union[RandomState, np.random.SeedSequence]


def seed_sequence_of(rng: np.random.Generator) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` driving ``rng``.

    Spawning children from it advances its spawn counter, so repeated
    calls on the same generator yield fresh, non-overlapping streams —
    the parallel analogue of drawing from a shared generator twice.
    """
    bit_generator = rng.bit_generator
    seed_seq = getattr(bit_generator, "seed_seq", None)
    if seed_seq is None:  # numpy < 1.24 keeps it private
        seed_seq = bit_generator._seed_seq
    return seed_seq


def spawn_seed_sequences(seed: SeedLike, n: int,
                         ) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from ``seed``.

    ``seed`` may be ``None`` / an int / a Generator (the library-wide
    :data:`~repro.utils.RandomState` convention) or a SeedSequence.
    Deriving from a Generator consumes spawn state on its underlying
    sequence, not random draws, so interleaved ``.random()`` calls do
    not perturb the derived seeds.
    """
    if n <= 0:
        return []
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(n)
    return seed_sequence_of(ensure_rng(seed)).spawn(n)


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """``n`` independent generators derived from ``seed`` (see above)."""
    return [np.random.default_rng(s) for s in spawn_seed_sequences(seed, n)]


def rng_from(seed_seq: np.random.SeedSequence) -> np.random.Generator:
    """Build the task-local generator for one spawned seed sequence."""
    return np.random.default_rng(seed_seq)
