"""Execution backends: serial and process-pool map with chunking.

The layer exposes one primitive — :func:`pmap` — an order-preserving
map over picklable items.  Backend selection (``workers``):

1. an explicit ``workers=`` argument at the call site,
2. the process-wide default installed by :func:`set_workers`
   (the CLI's ``--workers`` flag lands here),
3. the ``REPRO_WORKERS`` environment variable,
4. serial (one worker).

Inside a worker process the resolution is pinned to serial, so nested
fan-out points (e.g. EM restarts inside a hierarchy-builder subtree
task) never create nested pools.

Work functions must be module-level (picklable by reference).  A
``shared`` payload — typically large read-only state such as phrase
counts — is shipped once per worker via the pool initializer rather
than once per task, and the function is then called as
``fn(shared, item)``.

Every dispatch records into :mod:`repro.obs`: the ``parallel.tasks``
counter, the ``parallel.workers`` gauge, and a ``parallel.<label>``
wall-time timer, so speedups are visible in run reports.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs import inc, set_gauge, timed

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "get_backend",
    "get_default_workers",
    "in_worker",
    "pmap",
    "resolve_workers",
    "set_workers",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START"

#: Process-wide default worker count (installed by the CLI's --workers).
_DEFAULT_WORKERS: Optional[int] = None

#: True inside a pool worker; pins nested resolution to serial.
_IN_WORKER = False

#: Sentinel distinguishing "no shared payload" from a shared ``None``.
_UNSET = object()

#: Worker-process slot holding the shared payload (set by the initializer).
_WORKER_SHARED = _UNSET


def set_workers(workers: Optional[int]) -> None:
    """Install the process-wide default worker count (None clears it)."""
    global _DEFAULT_WORKERS
    if workers is None:
        _DEFAULT_WORKERS = None
        return
    if int(workers) < 1:
        raise ConfigurationError("workers must be >= 1")
    _DEFAULT_WORKERS = int(workers)


def get_default_workers() -> Optional[int]:
    """The installed process-wide default (None when unset)."""
    return _DEFAULT_WORKERS


def in_worker() -> bool:
    """True when executing inside a pool worker process."""
    return _IN_WORKER


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring for order)."""
    if _IN_WORKER:
        return 1
    if workers is not None:
        if int(workers) < 1:
            raise ConfigurationError("workers must be >= 1")
        return int(workers)
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}") from None
        if value >= 1:
            return value
    return 1


# ---------------------------------------------------------------- backends
class ExecutionBackend:
    """Interface: an order-preserving map over items."""

    name = "abstract"

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None) -> List:
        """Apply ``fn`` to every item, preserving input order."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution; the reference semantics of every pmap."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None) -> List:
        if shared is _UNSET:
            return [fn(item) for item in items]
        return [fn(shared, item) for item in items]


def _worker_init(shared: object) -> None:
    """Pool initializer: stash the shared payload, pin nested maps serial."""
    global _IN_WORKER, _WORKER_SHARED
    _IN_WORKER = True
    _WORKER_SHARED = shared


def _run_chunk(payload) -> List:
    """Execute one chunk of items inside a worker process."""
    fn, chunk = payload
    if _WORKER_SHARED is _UNSET:
        return [fn(item) for item in chunk]
    return [fn(_WORKER_SHARED, item) for item in chunk]


class ProcessBackend(ExecutionBackend):
    """Chunked map over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        workers: pool size.
        start_method: multiprocessing start method; default is the
            ``REPRO_MP_START`` environment variable, then ``fork`` where
            available (cheap, inherits loaded modules), then the
            platform default.
    """

    name = "process"

    def __init__(self, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self.start_method = start_method or os.environ.get(START_METHOD_ENV)

    def _context(self):
        import multiprocessing

        if self.start_method:
            return multiprocessing.get_context(self.start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None) -> List:
        items = list(items)
        if not items:
            return []
        if chunk_size is None:
            # A few chunks per worker balances load without drowning the
            # pool in per-task pickling overhead.
            chunk_size = max(1, math.ceil(len(items) / (self.workers * 4)))
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        max_workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=self._context(),
                                 initializer=_worker_init,
                                 initargs=(shared,)) as pool:
            results: List = []
            for chunk_result in pool.map(_run_chunk,
                                         [(fn, chunk) for chunk in chunks]):
                results.extend(chunk_result)
        return results


def get_backend(workers: Optional[int] = None) -> ExecutionBackend:
    """The backend for an effective worker count (see :func:`resolve_workers`)."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialBackend()
    return ProcessBackend(count)


# ------------------------------------------------------------------- pmap
def pmap(fn: Callable, items: Iterable, *,
         workers: Optional[int] = None,
         chunk_size: Optional[int] = None,
         shared: object = _UNSET,
         label: Optional[str] = None) -> List:
    """Order-preserving map over ``items`` on the resolved backend.

    Args:
        fn: module-level function; called as ``fn(item)``, or
            ``fn(shared, item)`` when ``shared`` is given.
        items: the work list (materialized once).
        workers: explicit worker count; None defers to the
            :func:`resolve_workers` chain.
        chunk_size: items per worker task (process backend only);
            defaults to a few chunks per worker.
        shared: read-only payload shipped once per worker.
        label: timer suffix for the ``parallel.<label>`` phase metric;
            defaults to the function name.

    Single-item and single-worker maps short-circuit to the serial
    backend, so fan-out points can call pmap unconditionally.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count > 1 and len(items) > 1:
        backend: ExecutionBackend = ProcessBackend(count)
    else:
        backend = SerialBackend()
    inc("parallel.tasks", len(items))
    inc(f"parallel.tasks.{backend.name}", len(items))
    set_gauge("parallel.workers", count)
    with timed(f"parallel.{label or getattr(fn, '__name__', 'map')}"):
        return backend.map(fn, items, shared=shared, chunk_size=chunk_size)
