"""Execution backends: serial and fault-tolerant process-pool map.

The layer exposes one primitive — :func:`pmap` — an order-preserving
map over picklable items.  Backend selection (``workers``):

1. an explicit ``workers=`` argument at the call site,
2. the process-wide default installed by :func:`set_workers`
   (the CLI's ``--workers`` flag lands here),
3. the ``REPRO_WORKERS`` environment variable,
4. serial (one worker).

Inside a worker process the resolution is pinned to serial, so nested
fan-out points (e.g. EM restarts inside a hierarchy-builder subtree
task) never create nested pools.

Work functions must be module-level (picklable by reference).  A
``shared`` payload — typically large read-only state such as phrase
counts — is shipped once per worker via the pool initializer rather
than once per task, and the function is then called as
``fn(shared, item)``.

**Fault tolerance.**  Every map survives dying workers: when a chunk is
lost to a dead worker (``BrokenProcessPool``, e.g. an OOM-killed or
SIGKILLed child) or to the per-map ``timeout=``, the surviving chunk
results are kept and the lost chunks are re-run serially in the parent
— task results depend only on the items (seeds travel inside them), so
the degraded map returns exactly what the healthy map would have.  Each
degradation records the ``parallel.degraded`` /
``parallel.degraded_chunks`` counters via :mod:`repro.obs` and logs a
warning.  With ``on_failure="raise"`` the map instead raises a typed
:class:`~repro.errors.ExecutionError` carrying the map label, so a pool
failure never escapes as a raw ``BrokenProcessPool``.

**Pool reuse.**  Inside a :func:`pool_scope` (entered by
``LatentEntityMiner.fit``, ``HierarchyBuilder.build``, and the CLI), one
process pool is kept alive and reused across consecutive pmaps instead
of being re-spawned per map, amortizing process start-up for the many
small maps of a recursive hierarchy fit.  Reuse applies when the shared
payload pickles to at most :data:`SHARED_REUSE_LIMIT` bytes (it is then
shipped per chunk); larger payloads keep today's dedicated
pool-per-map, whose initializer ships them once per worker (free under
``fork``).  Scopes exist because forked workers inherit parent globals
at pool-creation time: enter one only after process-wide configuration
(workers, observability) is settled.

Every dispatch records into :mod:`repro.obs`: the ``parallel.tasks``
counter, the ``parallel.workers`` gauge, a ``parallel.<label>`` span
(doubling as the wall-time timer), and the ``parallel.pool_created`` /
``parallel.pool_reused`` counters, so speedups and degradations are
visible in run reports.

**Telemetry propagation.**  Each chunk payload carries the parent's
observability state; the worker adopts it, collects, and ships its
metrics snapshot, finished spans, and convergence traces back beside
the chunk results (see :mod:`repro.obs.propagate`).  The parent merges
packages in submission order — counter and quantile-sketch merging are
exact, and worker span trees graft under the map's ``parallel.<label>``
span — so observability is worker-count-invariant: a ``workers=8`` run
reports the same counter totals and one connected span tree, exactly
like ``workers=1``.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import time
from concurrent.futures import (BrokenExecutor, ProcessPoolExecutor,
                                TimeoutError as FuturesTimeout)
from contextlib import contextmanager
from typing import (Any, Callable, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from ..errors import ConfigurationError, ExecutionError
from ..obs import (apply_observability_state, capture_telemetry,
                   get_logger, inc, merge_telemetry, observability_state,
                   set_gauge, span)

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SHARED_REUSE_LIMIT",
    "SerialBackend",
    "get_backend",
    "get_default_workers",
    "in_worker",
    "pmap",
    "pool_scope",
    "resolve_workers",
    "set_workers",
    "shutdown_pool",
]

logger = get_logger("parallel")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START"

#: Largest pickled ``shared`` payload (bytes) still shipped per chunk on
#: the reusable pool; bigger payloads get a dedicated pool whose
#: initializer ships them once per worker.
SHARED_REUSE_LIMIT = 1 << 16

#: Process-wide default worker count (installed by the CLI's --workers).
_DEFAULT_WORKERS: Optional[int] = None

#: True inside a pool worker; pins nested resolution to serial.
_IN_WORKER = False

#: Sentinel distinguishing "no shared payload" from a shared ``None``.
#: Never crosses a process boundary — worker messages carry an explicit
#: has-shared flag instead, because an ``object()`` sentinel does not
#: survive pickling under the spawn start method.
_UNSET = object()

#: Worker-process slots holding the shared payload (set by the initializer).
_WORKER_HAS_SHARED = False
_WORKER_SHARED = None

#: The scope-cached reusable pool and its (workers, start-method) key.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[Tuple[int, str]] = None
_SCOPE_DEPTH = 0


def set_workers(workers: Optional[int]) -> None:
    """Install the process-wide default worker count (None clears it)."""
    global _DEFAULT_WORKERS
    if workers is None:
        _DEFAULT_WORKERS = None
        return
    if int(workers) < 1:
        raise ConfigurationError("workers must be >= 1")
    _DEFAULT_WORKERS = int(workers)


def get_default_workers() -> Optional[int]:
    """The installed process-wide default (None when unset)."""
    return _DEFAULT_WORKERS


def in_worker() -> bool:
    """True when executing inside a pool worker process."""
    return _IN_WORKER


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring for order)."""
    if _IN_WORKER:
        return 1
    if workers is not None:
        if int(workers) < 1:
            raise ConfigurationError("workers must be >= 1")
        return int(workers)
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}") from None
        if value >= 1:
            return value
    return 1


# ------------------------------------------------------------ pool lifecycle
@contextmanager
def pool_scope() -> Iterator[None]:
    """Keep one process pool alive across every pmap inside this scope.

    Scopes nest; the pool is shut down when the outermost scope exits.
    Outside any scope each map spins its own pool (the safe default:
    forked workers snapshot parent globals at pool creation, so reuse is
    only sound across maps that do not mutate process-wide state in
    between — which is what a single fit guarantees).
    """
    global _SCOPE_DEPTH
    _SCOPE_DEPTH += 1
    try:
        yield
    finally:
        _SCOPE_DEPTH -= 1
        if _SCOPE_DEPTH == 0:
            shutdown_pool()


def shutdown_pool() -> None:
    """Tear down the reusable pool (idempotent; killed if unresponsive)."""
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _kill_pool(_POOL)
        _POOL = None
        _POOL_KEY = None


atexit.register(shutdown_pool)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Stop a pool without waiting on hung or dead workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        if proc.is_alive():
            proc.terminate()
    for proc in list(processes.values()):
        proc.join(timeout=1.0)


def _reusable_pool(workers: int, context: Any) -> ProcessPoolExecutor:
    global _POOL, _POOL_KEY
    key = (workers, context.get_start_method())
    if _POOL is not None and _POOL_KEY == key \
            and not getattr(_POOL, "_broken", True):
        inc("parallel.pool_reused")
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context,
                                initializer=_worker_init,
                                initargs=(False, None))
    _POOL_KEY = key
    inc("parallel.pool_created")
    return _POOL


# ---------------------------------------------------------------- backends
class ExecutionBackend:
    """Interface: an order-preserving map over items."""

    name = "abstract"

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None,
            label: Optional[str] = None) -> List:
        """Apply ``fn`` to every item, preserving input order."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution; the reference semantics of every pmap."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None,
            label: Optional[str] = None) -> List:
        if shared is _UNSET:
            return [fn(item) for item in items]
        return [fn(shared, item) for item in items]


def _worker_init(has_shared: bool, shared: object) -> None:
    """Pool initializer: stash the shared payload, pin nested maps serial."""
    global _IN_WORKER, _WORKER_HAS_SHARED, _WORKER_SHARED
    _IN_WORKER = True
    _WORKER_HAS_SHARED = has_shared
    _WORKER_SHARED = shared


def _run_chunk(payload: Tuple[Any, ...]) -> Tuple[List, Optional[dict]]:
    """Execute one chunk against the initializer-installed shared payload.

    Returns ``(results, telemetry)``: the chunk's telemetry package is
    captured at task end and shipped back beside the results, so worker
    metrics, spans, and traces reach the parent registry instead of
    dying with the worker (see :mod:`repro.obs.propagate`).
    """
    fn, chunk, obs_state = payload
    apply_observability_state(obs_state)
    if not _WORKER_HAS_SHARED:
        results = [fn(item) for item in chunk]
    else:
        results = [fn(_WORKER_SHARED, item) for item in chunk]
    return results, capture_telemetry()


def _run_chunk_inline(payload: Tuple[Any, ...],
                      ) -> Tuple[List, Optional[dict]]:
    """Execute one chunk whose shared payload travels with the message."""
    fn, chunk, has_shared, shared, obs_state = payload
    apply_observability_state(obs_state)
    if not has_shared:
        results = [fn(item) for item in chunk]
    else:
        results = [fn(shared, item) for item in chunk]
    return results, capture_telemetry()


def _submit_and_collect(pool: ProcessPoolExecutor, runner: Callable,
                        payloads: List, results: List,
                        timeout: Optional[float],
                        ) -> Tuple[List[int], Optional[BaseException]]:
    """Submit every payload; gather results in order.

    Chunks lost to a broken pool or the map deadline land in the
    returned index list (with the first causal exception) instead of
    raising; exceptions raised by the work function itself propagate
    unchanged — they are deterministic errors, not infrastructure
    failures.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    futures = []
    failed: List[int] = []
    cause: Optional[BaseException] = None
    for idx, payload in enumerate(payloads):
        try:
            futures.append(pool.submit(runner, payload))
        except (BrokenExecutor, RuntimeError) as exc:
            # The pool died (or was shut down) mid-submission; everything
            # from this chunk on must be recovered.
            cause = cause or exc
            failed.extend(range(idx, len(payloads)))
            break
    for idx, future in enumerate(futures):
        remaining = None
        if deadline is not None:
            remaining = max(deadline - time.monotonic(), 0.0)
        try:
            results[idx] = future.result(timeout=remaining)
        except (BrokenExecutor, FuturesTimeout) as exc:
            cause = cause or exc
            failed.append(idx)
            future.cancel()
    return failed, cause


class ProcessBackend(ExecutionBackend):
    """Chunked map over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Args:
        workers: pool size.
        start_method: multiprocessing start method; default is the
            ``REPRO_MP_START`` environment variable, then ``fork`` where
            available (cheap, inherits loaded modules), then the
            platform default.
        timeout: default per-map deadline in seconds (None = no limit);
            chunks not finished by then count as lost.
        on_failure: ``"serial"`` re-runs lost chunks in the parent
            (graceful degradation, the default); ``"raise"`` raises
            :class:`~repro.errors.ExecutionError` instead.
    """

    name = "process"

    def __init__(self, workers: int,
                 start_method: Optional[str] = None,
                 timeout: Optional[float] = None,
                 on_failure: str = "serial") -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if on_failure not in ("serial", "raise"):
            raise ConfigurationError(
                "on_failure must be 'serial' or 'raise'")
        self.workers = workers
        self.start_method = start_method or os.environ.get(START_METHOD_ENV)
        self.timeout = timeout
        self.on_failure = on_failure

    def _context(self) -> Any:
        import multiprocessing

        if self.start_method:
            return multiprocessing.get_context(self.start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    @staticmethod
    def _reusable_shared(shared: object) -> bool:
        """Small-enough payloads ride the reusable pool, per chunk."""
        if shared is _UNSET:
            return True
        try:
            blob = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return len(blob) <= SHARED_REUSE_LIMIT

    def map(self, fn: Callable, items: Sequence, shared: object = _UNSET,
            chunk_size: Optional[int] = None,
            label: Optional[str] = None) -> List:
        items = list(items)
        if not items:
            return []
        if chunk_size is None:
            # A few chunks per worker balances load without drowning the
            # pool in per-task pickling overhead.
            chunk_size = max(1, math.ceil(len(items) / (self.workers * 4)))
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        results: List = [None] * len(chunks)

        obs_state = observability_state()
        if _SCOPE_DEPTH > 0 and self._reusable_shared(shared):
            pool = _reusable_pool(self.workers, self._context())
            has_shared = shared is not _UNSET
            payloads = [(fn, chunk, has_shared,
                         shared if has_shared else None, obs_state)
                        for chunk in chunks]
            failed, cause = _submit_and_collect(pool, _run_chunk_inline,
                                                payloads, results,
                                                self.timeout)
            if failed:
                # Broken or hung; drop it so the next map starts clean.
                shutdown_pool()
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                mp_context=self._context(),
                initializer=_worker_init,
                initargs=(shared is not _UNSET,
                          None if shared is _UNSET else shared))
            inc("parallel.pool_created")
            try:
                payloads = [(fn, chunk, obs_state) for chunk in chunks]
                failed, cause = _submit_and_collect(pool, _run_chunk,
                                                    payloads, results,
                                                    self.timeout)
            finally:
                _kill_pool(pool)

        if failed:
            self._recover(fn, chunks, sorted(set(failed)), results, shared,
                          cause, label)
        # Merge worker telemetry in submission order — deterministic, and
        # exact for counters/sketches, so totals match a serial run.
        flat: List = []
        for chunk_result, telemetry in results:
            flat.extend(chunk_result)
            merge_telemetry(telemetry)
        return flat

    def _recover(self, fn: Callable, chunks: List, failed: List[int],
                 results: List, shared: object,
                 cause: Optional[BaseException],
                 label: Optional[str]) -> None:
        """Serial re-run of lost chunks, or a typed ExecutionError."""
        name = label or getattr(fn, "__name__", "map")
        reason = (f"{type(cause).__name__}: {cause}" if cause
                  else "worker failure")
        if self.on_failure == "raise":
            raise ExecutionError(
                f"parallel map '{name}' failed: {len(failed)} of "
                f"{len(chunks)} chunks lost ({reason})",
                label=name) from cause
        inc("parallel.degraded")
        inc("parallel.degraded_chunks", len(failed))
        logger.warning(
            "parallel map %r lost %d of %d chunks (%s); re-running them "
            "serially", name, len(failed), len(chunks), reason)
        serial = SerialBackend()
        for idx in failed:
            # Recovered chunks run in the parent, where their metrics
            # land directly in the registry — no telemetry to merge.
            results[idx] = (serial.map(fn, chunks[idx], shared=shared),
                            None)


def get_backend(workers: Optional[int] = None) -> ExecutionBackend:
    """The backend for an effective worker count (see :func:`resolve_workers`)."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialBackend()
    return ProcessBackend(count)


# ------------------------------------------------------------------- pmap
def pmap(fn: Callable, items: Iterable, *,
         workers: Optional[int] = None,
         chunk_size: Optional[int] = None,
         shared: object = _UNSET,
         label: Optional[str] = None,
         timeout: Optional[float] = None,
         on_failure: str = "serial") -> List:
    """Order-preserving map over ``items`` on the resolved backend.

    Args:
        fn: module-level function; called as ``fn(item)``, or
            ``fn(shared, item)`` when ``shared`` is given.
        items: the work list (materialized once).
        workers: explicit worker count; None defers to the
            :func:`resolve_workers` chain.
        chunk_size: items per worker task (process backend only);
            defaults to a few chunks per worker.
        shared: read-only payload shipped once per worker.
        label: timer suffix for the ``parallel.<label>`` phase metric;
            defaults to the function name.
        timeout: map deadline in seconds (process backend only); chunks
            unfinished by then are treated like lost workers.
        on_failure: ``"serial"`` (default) re-runs chunks lost to dead
            workers or the timeout serially — results are identical
            because tasks depend only on their items; ``"raise"`` turns
            such losses into :class:`~repro.errors.ExecutionError`.

    Single-item and single-worker maps short-circuit to the serial
    backend, so fan-out points can call pmap unconditionally.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count > 1 and len(items) > 1:
        backend: ExecutionBackend = ProcessBackend(count, timeout=timeout,
                                                   on_failure=on_failure)
    else:
        backend = SerialBackend()
    inc("parallel.tasks", len(items))
    inc(f"parallel.tasks.{backend.name}", len(items))
    set_gauge("parallel.workers", count)
    # A span (not a bare timer) so shipped worker span trees graft under
    # this map's node in the parent's trace.
    with span(f"parallel.{label or getattr(fn, '__name__', 'map')}",
              items=len(items), workers=count, backend=backend.name):
        return backend.map(fn, items, shared=shared, chunk_size=chunk_size,
                           label=label)
