"""repro.parallel — the execution-backend layer.

The STROD chapter's scalability argument rests on the independence of
sibling subproblems: subtopic subnetworks, EM restarts, and per-document
segmentations share no state, so they can fan out across processes
without changing the mathematics.  This package supplies the mechanics:

* :func:`pmap` — a chunked, order-preserving map over a
  :class:`SerialBackend` or a :class:`ProcessBackend`
  (:class:`~concurrent.futures.ProcessPoolExecutor`), selected by the
  ``workers`` argument, the CLI's ``--workers`` flag
  (:func:`set_workers`), or the ``REPRO_WORKERS`` environment variable;
* deterministic per-task seeding (:func:`spawn_seed_sequences`) via
  :meth:`numpy.random.SeedSequence.spawn`, so parallel runs reproduce
  serial results exactly — same seed + any worker count → identical
  models and segmentations;
* fault tolerance: chunks lost to dead workers or a per-map ``timeout=``
  are re-run serially in the parent (graceful degradation, recorded as
  ``parallel.degraded``), or surfaced as a typed
  :class:`~repro.errors.ExecutionError` with ``on_failure="raise"`` —
  a raw ``BrokenProcessPool`` never reaches the caller;
* pool reuse: inside a :func:`pool_scope` consecutive pmaps share one
  process pool instead of re-spawning workers per map.

Nested fan-out is safe: inside a worker process every pmap resolves to
the serial backend, so pools never nest.

The seeding discipline is machine-enforced: ``repro lint`` rule RL001
bans global RNG state everywhere and confines
``default_rng``/``SeedSequence`` construction to :mod:`repro.utils` and
:mod:`repro.parallel.seeding`, so every stream provably derives from
the run seed.
"""

from .backend import (ExecutionBackend, ProcessBackend, SHARED_REUSE_LIMIT,
                      SerialBackend, START_METHOD_ENV, WORKERS_ENV,
                      get_backend, get_default_workers, in_worker, pmap,
                      pool_scope, resolve_workers, set_workers,
                      shutdown_pool)
from .seeding import (rng_from, seed_sequence_of, spawn_generators,
                      spawn_seed_sequences)

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SHARED_REUSE_LIMIT",
    "START_METHOD_ENV",
    "SerialBackend",
    "WORKERS_ENV",
    "get_backend",
    "get_default_workers",
    "in_worker",
    "pmap",
    "pool_scope",
    "resolve_workers",
    "rng_from",
    "seed_sequence_of",
    "set_workers",
    "shutdown_pool",
    "spawn_generators",
    "spawn_seed_sequences",
]
