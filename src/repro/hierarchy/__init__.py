"""Topical hierarchy substrate."""

from .topic import ROOT_NOTATION, Topic, notation_to_path, path_to_notation
from .tree import TopicalHierarchy

__all__ = [
    "Topic",
    "TopicalHierarchy",
    "path_to_notation",
    "notation_to_path",
    "ROOT_NOTATION",
]
