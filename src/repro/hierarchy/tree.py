"""The topical hierarchy container (Definition 2)."""

from __future__ import annotations

import json
from typing import Callable, Iterator, List, Optional, Union

from ..errors import DataError
from .topic import Path, Topic, notation_to_path


class TopicalHierarchy:
    """A tree of :class:`Topic` nodes rooted at topic ``o``.

    Provides path lookup, traversal, and the tree-shape quantities of
    Section 3.1 (width K, height h, topic count T).
    """

    def __init__(self, root: Optional[Topic] = None) -> None:
        self.root = root if root is not None else Topic(path=())
        if self.root.path != ():
            raise DataError("hierarchy root must have the empty path")

    # ------------------------------------------------------------- traversal
    def topics(self) -> Iterator[Topic]:
        """All topics in pre-order (root first)."""
        stack = [self.root]
        while stack:
            topic = stack.pop()
            yield topic
            stack.extend(reversed(topic.children))

    def leaves(self) -> List[Topic]:
        """All leaf topics in pre-order."""
        return [t for t in self.topics() if t.is_leaf]

    def topic(self, path: Union[Path, str]) -> Topic:
        """Look a topic up by path tuple or ``o/1/2`` notation."""
        if isinstance(path, str):
            path = notation_to_path(path)
        node = self.root
        for index in path:
            if not 0 <= index < len(node.children):
                raise DataError(f"no topic at path {path}")
            node = node.children[index]
        return node

    def parent_of(self, topic: Topic) -> Optional[Topic]:
        """The parent of ``topic`` (None for the root)."""
        if not topic.path:
            return None
        return self.topic(topic.path[:-1])

    # ------------------------------------------------------------ shape stats
    @property
    def height(self) -> int:
        """Maximal topic level h (root alone gives 0)."""
        return max(t.level for t in self.topics())

    @property
    def width(self) -> int:
        """Maximal number of children of any topic (tree width K)."""
        return max((len(t.children) for t in self.topics()), default=0)

    @property
    def num_topics(self) -> int:
        """Total number T of topics including the root."""
        return sum(1 for _ in self.topics())

    # ---------------------------------------------------------------- export
    def to_dict(self, max_items: int = 10) -> dict:
        """JSON-friendly dump of the full hierarchy."""
        return self.root.to_dict(max_items=max_items)

    def to_json(self, max_items: int = 10, indent: int = 2) -> str:
        """Serialized JSON dump of the hierarchy."""
        return json.dumps(self.to_dict(max_items=max_items), indent=indent)

    def render(self,
               max_phrases: int = 5,
               entity_types: Optional[List[str]] = None,
               max_entities: int = 3) -> str:
        """ASCII rendering in the style of Figures 3.3 / 3.4."""
        lines: List[str] = []
        self._render_topic(self.root, lines, max_phrases, entity_types,
                           max_entities)
        return "\n".join(lines)

    def _render_topic(self, topic: Topic, lines: List[str], max_phrases: int,
                      entity_types: Optional[List[str]],
                      max_entities: int) -> None:
        indent = "  " * topic.level
        phrases = " / ".join(topic.top_phrases(max(max_phrases, 0)))
        if not phrases:
            phrases = " / ".join(topic.top_words("term", max(max_phrases, 0)))
        if not phrases:
            # An undecorated node (empty hierarchy, or a topic that mined
            # no ranked phrases) still gets a well-formed line.
            phrases = "(no ranked phrases)"
        lines.append(f"{indent}[{topic.notation}] {phrases}")
        for etype in (entity_types or []):
            names = topic.top_entities(etype, max_entities)
            if names:
                lines.append(f"{indent}    {etype}: {', '.join(names)}")
        for child in topic.children:
            self._render_topic(child, lines, max_phrases, entity_types,
                               max_entities)

    def map_topics(self, fn: Callable[[Topic], None]) -> None:
        """Apply ``fn`` to every topic (pre-order)."""
        for topic in self.topics():
            fn(topic)

    def __repr__(self) -> str:
        return (f"TopicalHierarchy(topics={self.num_topics}, "
                f"height={self.height}, width={self.width})")
