"""Topic nodes of a topical hierarchy (Definition 2).

Each topic carries, per node type, a ranking distribution ``phi`` over the
named nodes of its associated network; a subtopic proportion ``rho``; an
ordered list of representative phrases; and ordered entity rankings.  The
topic also keeps a handle to the subnetwork it was mined from so the
recursion (Step 2 of CATHY) can continue from any node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataError

Path = Tuple[int, ...]

ROOT_NOTATION = "o"


def path_to_notation(path: Path) -> str:
    """Render a topic path as the paper's ``o/1/2`` notation.

    Child indices in the notation are 1-based, matching Figure 3.1.
    """
    if not path:
        return ROOT_NOTATION
    return ROOT_NOTATION + "/" + "/".join(str(i + 1) for i in path)


def notation_to_path(notation: str) -> Path:
    """Parse ``o/1/2`` notation back into a 0-based path tuple."""
    parts = notation.strip().split("/")
    if not parts or parts[0] != ROOT_NOTATION:
        raise DataError(f"topic notation must start with 'o': {notation!r}")
    try:
        return tuple(int(p) - 1 for p in parts[1:])
    except ValueError:
        raise DataError(f"malformed topic notation: {notation!r}") from None


@dataclass
class Topic:
    """One node of a topical hierarchy.

    Attributes:
        path: 0-based child-index path from the root; ``()`` is the root.
        rho: expected share of the parent's links attributed to this topic.
        phi: per node type, a dict mapping node *name* to its probability in
            this topic's ranking distribution (Section 3.2.1).  Names are
            used instead of indices because subnetworks renumber nodes.
        phrases: ranked (phrase, score) pairs, best first (Chapter 4).
        entity_ranks: per entity type, ranked (name, score) pairs (Chapter 5).
        network: the subnetwork associated with this topic, when retained.
        children: subtopics in index order.
    """

    path: Path = ()
    rho: float = 1.0
    phi: Dict[str, Dict[str, float]] = field(default_factory=dict)
    phrases: List[Tuple[str, float]] = field(default_factory=list)
    entity_ranks: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)
    network: Optional[object] = None
    children: List["Topic"] = field(default_factory=list)

    @property
    def notation(self) -> str:
        """The ``o/1/2`` style name of this topic."""
        return path_to_notation(self.path)

    @property
    def level(self) -> int:
        """Depth of the topic; the root is level 0."""
        return len(self.path)

    @property
    def is_leaf(self) -> bool:
        """True when the topic has no children."""
        return not self.children

    def add_child(self, topic: "Topic") -> "Topic":
        """Append a child and fix up its path to extend this topic's path."""
        topic.path = self.path + (len(self.children),)
        self.children.append(topic)
        return topic

    def top_words(self, node_type: str, k: int = 10) -> List[str]:
        """The ``k`` most probable node names of ``node_type``."""
        dist = self.phi.get(node_type, {})
        ranked = sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))
        return [name for name, _ in ranked[:k]]

    def top_phrases(self, k: int = 10) -> List[str]:
        """The ``k`` best phrases of this topic."""
        return [phrase for phrase, _ in self.phrases[:k]]

    def top_entities(self, entity_type: str, k: int = 10) -> List[str]:
        """The ``k`` top-ranked entities of ``entity_type``."""
        return [name for name, _ in self.entity_ranks.get(entity_type, [])[:k]]

    def phi_vector(self, node_type: str, names: Sequence[str]) -> np.ndarray:
        """The phi distribution restricted to ``names``, in that order."""
        dist = self.phi.get(node_type, {})
        return np.array([dist.get(name, 0.0) for name in names], dtype=float)

    def to_dict(self, max_items: int = 10) -> dict:
        """A JSON-friendly summary of the topic (and its subtree)."""
        return {
            "notation": self.notation,
            "rho": self.rho,
            "phrases": self.phrases[:max_items],
            "entities": {etype: ranks[:max_items]
                         for etype, ranks in self.entity_ranks.items()},
            "children": [child.to_dict(max_items) for child in self.children],
        }

    def __repr__(self) -> str:
        head = ", ".join(self.top_phrases(3)) or ", ".join(
            self.top_words("term", 3))
        return f"Topic({self.notation}: {head})"
