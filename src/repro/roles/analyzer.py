"""Entity topical role analysis (Chapter 5).

Answers the two question types of Section 1.3.1 against a constructed
topical hierarchy:

* **Type A** (role of given entities): entity-specific phrase ranking
  (Eq. 5.1, combined with phrase quality as Eq. 5.2) and the entity's
  frequency distribution over subtopics (Eq. 5.3–5.6).
* **Type B** (entities for given roles): ranking the entities of a type
  within a topic by popularity x purity (ERankPop+Pur, Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import ConfigurationError
from ..hierarchy import Topic, TopicalHierarchy
from ..phrases import (PhraseCounts, compute_topic_phrase_frequencies,
                       document_phrase_instances, phrase_rank_score,
                       render_phrase)
from ..phrases.frequent import Phrase
from ..utils import EPS


class RoleAnalyzer:
    """Role analysis over a phrase-decorated topical hierarchy.

    Args:
        hierarchy: a built hierarchy whose topics carry term phi
            distributions (from :class:`~repro.cathy.HierarchyBuilder`).
        corpus: the text-attached corpus the hierarchy was mined from.
        counts: pre-mined phrase counts (mined here when omitted).
        min_support / max_phrase_length / gamma: forwarded to phrase
            frequency computation.
    """

    def __init__(self, hierarchy: TopicalHierarchy, corpus: Corpus,
                 counts: Optional[PhraseCounts] = None,
                 min_support: int = 5, max_phrase_length: int = 6,
                 gamma: float = 0.5) -> None:
        self.hierarchy = hierarchy
        self.corpus = corpus
        self._table, self.counts = compute_topic_phrase_frequencies(
            hierarchy, corpus, counts=counts, min_support=min_support,
            max_phrase_length=max_phrase_length, gamma=gamma)
        self._doc_instances = document_phrase_instances(
            corpus, self.counts, max_length=max_phrase_length)
        self._doc_freq: Optional[List[Dict[str, float]]] = None
        self._entity_freq_cache: Dict[str, Dict[str, Dict[str, float]]] = {}

    # ----------------------------------------------------- document position
    def document_topic_frequencies(self) -> List[Dict[str, float]]:
        """f_t(d) per document and topic notation (Eq. 5.4–5.5).

        The root frequency of every document is 1; a topic's frequency
        splits among its children in proportion to the total normalized
        phrase frequency TPF, and documents with no frequent phrase in
        any child contribute nothing below that topic.
        """
        if self._doc_freq is not None:
            return self._doc_freq
        result: List[Dict[str, float]] = []
        for doc_id in range(len(self.corpus)):
            freqs: Dict[str, float] = {}
            self._descend_document(self.hierarchy.root, doc_id, 1.0, freqs)
            result.append(freqs)
        self._doc_freq = result
        return result

    def _descend_document(self, topic: Topic, doc_id: int, mass: float,
                          out: Dict[str, float]) -> None:
        out[topic.notation] = mass
        if not topic.children or mass <= 0:
            return
        phrases = self._doc_instances[doc_id]
        if not phrases:
            return
        child_tables = [self._table.get(c.notation, {})
                        for c in topic.children]
        tpf = np.zeros(len(topic.children))
        for phrase in phrases:
            shares = np.array([table.get(phrase, 0.0)
                               for table in child_tables])
            total = shares.sum()
            if total > 0:
                tpf += shares / total
        tpf_total = tpf.sum()
        if tpf_total <= 0:
            return
        for child, share in zip(topic.children, tpf / tpf_total):
            self._descend_document(child, doc_id, mass * float(share), out)

    # ------------------------------------------------------- entity position
    def entity_topic_frequencies(self, entity_type: str,
                                 ) -> Dict[str, Dict[str, float]]:
        """f_t(E) per entity: summed document frequencies (Eq. 5.6).

        Returns ``{entity name: {topic notation: frequency}}``; the root
        entry is the entity's total document count.  Cached per entity
        type (the underlying document attribution never changes).
        """
        cached = self._entity_freq_cache.get(entity_type)
        if cached is not None:
            return cached
        doc_freqs = self.document_topic_frequencies()
        result: Dict[str, Dict[str, float]] = {}
        for doc_id, doc in enumerate(self.corpus):
            for name in doc.entity_list(entity_type):
                bucket = result.setdefault(name, {})
                for notation, f in doc_freqs[doc_id].items():
                    bucket[notation] = bucket.get(notation, 0.0) + f
        self._entity_freq_cache[entity_type] = result
        return result

    def entity_distribution(self, entity_type: str, name: str,
                            topic: str = "o") -> Dict[str, float]:
        """The entity's normalized distribution over ``topic``'s children."""
        frequencies = self.entity_topic_frequencies(entity_type).get(name, {})
        node = self.hierarchy.topic(topic)
        shares = {child.notation: frequencies.get(child.notation, 0.0)
                  for child in node.children}
        total = sum(shares.values())
        if total <= 0:
            return {notation: 0.0 for notation in shares}
        return {notation: value / total for notation, value in shares.items()}

    # -------------------------------------------- entity-specific phrases (A)
    def entity_phrases(self, topic: str, entity_type: str,
                       names: Sequence[str], alpha: float = 0.5,
                       top_k: int = 10) -> List[Tuple[str, float]]:
        """Phrases characterizing entities' role in a topic (Eq. 5.1–5.2).

        Combines the entity-specific pointwise KL uprank r(P|t,E) with the
        generic phrase quality r(P|t), weighted by ``alpha``.
        """
        if not 0 <= alpha <= 1:
            raise ConfigurationError("alpha must be in [0, 1]")
        node = self.hierarchy.topic(topic)
        freq = self._table.get(node.notation, {})
        if not freq:
            return []
        total = max(sum(freq.values()), EPS)

        parent = self.hierarchy.parent_of(node)
        if parent is None:
            parent_freq: Dict[Phrase, float] = freq
        else:
            parent_freq = self._table.get(parent.notation, {})
        parent_total = max(sum(parent_freq.values()), EPS)

        doc_freqs = self.document_topic_frequencies()
        name_set = set(names)
        entity_doc_ids = [doc.doc_id for doc in self.corpus
                          if name_set & set(doc.entity_list(entity_type))]

        # f_t(P, E): topic-t mass of E's documents containing P.
        entity_phrase_freq: Dict[Phrase, float] = {}
        entity_total = 0.0
        for doc_id in entity_doc_ids:
            doc_mass = doc_freqs[doc_id].get(node.notation, 0.0)
            if doc_mass <= 0:
                continue
            entity_total += doc_mass
            for phrase in set(self._doc_instances[doc_id]):
                if phrase in freq:
                    entity_phrase_freq[phrase] = \
                        entity_phrase_freq.get(phrase, 0.0) + doc_mass
        entity_total = max(entity_total, EPS)

        scored: List[Tuple[Phrase, float]] = []
        for phrase, f in freq.items():
            p_t = f / total
            quality = phrase_rank_score(f, total,
                                        parent_freq.get(phrase, 0.0),
                                        parent_total)
            p_te = entity_phrase_freq.get(phrase, 0.0) / entity_total
            specific = p_t * float(np.log(max(p_te, EPS) / max(p_t, EPS)))
            combined = alpha * specific + (1 - alpha) * quality
            scored.append((phrase, combined))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return [(render_phrase(p, self.corpus.vocabulary), s)
                for p, s in scored[:top_k]]

    # ----------------------------------------------- entities for a role (B)
    def rank_entities(self, topic: str, entity_type: str,
                      top_k: int = 10, purity: bool = True,
                      ) -> List[Tuple[str, float]]:
        """ERankPop+Pur over the siblings of ``topic`` (Section 5.2).

        With ``purity=False`` this degenerates to ranking by coverage
        p(e|t) alone — the comparison row of Table 5.3.
        """
        node = self.hierarchy.topic(topic)
        parent = self.hierarchy.parent_of(node)
        siblings = ([] if parent is None else
                    [c for c in parent.children if c.notation != node.notation])

        frequencies = self.entity_topic_frequencies(entity_type)
        totals: Dict[str, float] = {}
        for notation in [node.notation] + [s.notation for s in siblings]:
            totals[notation] = sum(
                bucket.get(notation, 0.0) for bucket in frequencies.values())

        scored: List[Tuple[str, float]] = []
        for name, bucket in frequencies.items():
            f_t = bucket.get(node.notation, 0.0)
            if f_t <= 0:
                continue
            p_t = f_t / max(totals[node.notation], EPS)
            if not purity or not siblings:
                scored.append((name, p_t))
                continue
            contrast = 0.0
            for sibling in siblings:
                f_s = bucket.get(sibling.notation, 0.0)
                mixed_total = totals[node.notation] + totals[sibling.notation]
                contrast = max(contrast,
                               (f_t + f_s) / max(mixed_total, EPS))
            score = p_t * float(np.log(max(p_t, EPS) / max(contrast, EPS)))
            scored.append((name, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_k]
