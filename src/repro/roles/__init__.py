"""Entity topical role analysis (Chapter 5)."""

from .analyzer import RoleAnalyzer

__all__ = ["RoleAnalyzer"]
