"""Mutual information MI_K between phrase-labeled topics and true labels
(Section 4.4.1, Fig. 4.2).

Each of a method's top-K phrases (across topics) is labeled with the
topic in which it ranks highest.  Every document is then checked for the
labeled phrases it contains: if any are present, the joint event counts
(topic t, category c) are updated with the averaged topic counts of the
contained phrases; otherwise the document contributes uniformly over
topics.  MI_K is the mutual information of the resulting joint
distribution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..utils import EPS


def label_top_phrases(rankings: Sequence[Sequence[Tuple[str, float]]],
                      k: int) -> Dict[str, int]:
    """Assign each top-K phrase to the topic where it ranks highest.

    ``rankings[t]`` is a ranked (phrase, score) list for topic t; a
    phrase appearing in several topics is labeled with the topic giving
    it the best score.
    """
    best: Dict[str, Tuple[float, int]] = {}
    for t, ranking in enumerate(rankings):
        for phrase, score in list(ranking)[:k]:
            current = best.get(phrase)
            if current is None or score > current[0]:
                best[phrase] = (score, t)
    return {phrase: t for phrase, (_, t) in best.items()}


def mutual_information_at_k(corpus: Corpus,
                            rankings: Sequence[Sequence[Tuple[str, float]]],
                            k: int) -> float:
    """MI_K of the method's top-K phrase labeling against document labels."""
    num_topics = len(rankings)
    labels = sorted({doc.label for doc in corpus if doc.label is not None})
    label_index = {lab: i for i, lab in enumerate(labels)}
    if not labels or num_topics == 0:
        return 0.0
    phrase_topics = label_top_phrases(rankings, k)

    joint = np.zeros((num_topics, len(labels)))
    for doc in corpus:
        if doc.label is None:
            continue
        c = label_index[doc.label]
        text = " " + " ".join(corpus.vocabulary.decode(doc.tokens)) + " "
        contained = [t for phrase, t in phrase_topics.items()
                     if " " + phrase + " " in text]
        if contained:
            for t in contained:
                joint[t, c] += 1.0 / len(contained)
        else:
            joint[:, c] += 1.0 / num_topics

    total = joint.sum()
    if total <= 0:
        return 0.0
    joint = joint / total
    p_topic = joint.sum(axis=1, keepdims=True)
    p_label = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / np.maximum(p_topic @ p_label, EPS)
        terms = np.where(joint > 0, joint * np.log2(np.maximum(ratio, EPS)),
                         0.0)
    return float(terms.sum())
