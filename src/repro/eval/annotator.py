"""Simulated annotators for the human-judgment tasks.

The dissertation's intrusion, nKQM and coherence experiments rely on
human judges.  Offline, we substitute annotators whose judgments are
driven by the *same quantity the humans judged* — topical affinity
against the generator's ground truth — perturbed by independent noise per
annotator.  Comparative outcomes (which method wins) are therefore
preserved while absolute agreement rates depend on the noise level.

An item (phrase or entity) is represented by its distribution over
ground-truth document labels: the labels of the documents it occurs in.
Items from one coherent topic have similar label distributions; an
intruder from a sibling topic does not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..utils import EPS, RandomState, ensure_rng


class LabelAffinity:
    """Item -> ground-truth-label distributions for one corpus."""

    def __init__(self, corpus: Corpus) -> None:
        # Label space includes every ancestor prefix of the document
        # labels ("o/1/2" also activates "o/1" and "o"), so two items
        # from sibling subtopics of one area are measurably more similar
        # than items from different areas — matching how a human judge
        # perceives topical distance in a hierarchy.
        prefixes = set()
        for doc in corpus:
            if doc.label is None:
                continue
            parts = doc.label.split("/")
            for stop in range(1, len(parts) + 1):
                prefixes.add("/".join(parts[:stop]))
        labels = sorted(prefixes)
        self.labels = labels
        self._label_index = {lab: i for i, lab in enumerate(labels)}
        full_labels = {doc.label for doc in corpus if doc.label is not None}
        #: Indices of complete (leaf-level) document labels.
        self.leaf_label_indices = [i for i, lab in enumerate(labels)
                                   if lab in full_labels]
        #: Indices of top-level (area) labels — the shallowest non-root
        #: prefix level, e.g. "o/1".
        self.area_label_indices = [i for i, lab in enumerate(labels)
                                   if lab.count("/") == 1]
        self._doc_prefix_ids: List[List[int]] = []
        for doc in corpus:
            if doc.label is None:
                self._doc_prefix_ids.append([])
                continue
            parts = doc.label.split("/")
            self._doc_prefix_ids.append(
                [self._label_index["/".join(parts[:stop])]
                 for stop in range(1, len(parts) + 1)])
        self._phrase_cache: Dict[str, np.ndarray] = {}
        self._entity_cache: Dict[Tuple[str, str], np.ndarray] = {}

        # Pre-index documents by token text and entities.
        self._doc_texts: List[str] = []
        for doc in corpus:
            words = corpus.vocabulary.decode(doc.tokens)
            self._doc_texts.append(" " + " ".join(words) + " ")
        self._entity_docs: Dict[Tuple[str, str], List[int]] = {}
        for doc in corpus:
            for etype, names in doc.entities.items():
                for name in names:
                    self._entity_docs.setdefault((etype, name),
                                                 []).append(doc.doc_id)

    @property
    def num_labels(self) -> int:
        """Size of the (prefix-extended) label space."""
        return len(self.labels)

    def phrase_distribution(self, phrase: str) -> np.ndarray:
        """Label distribution of documents containing ``phrase``."""
        cached = self._phrase_cache.get(phrase)
        if cached is not None:
            return cached
        needle = " " + phrase + " "
        counts = np.zeros(max(self.num_labels, 1))
        for text, prefix_ids in zip(self._doc_texts, self._doc_prefix_ids):
            if prefix_ids and needle in text:
                counts[prefix_ids] += 1
        total = counts.sum()
        dist = counts / total if total > 0 else np.full_like(
            counts, 1.0 / max(len(counts), 1))
        self._phrase_cache[phrase] = dist
        return dist

    def entity_distribution(self, entity_type: str,
                            name: str) -> np.ndarray:
        """Label distribution of documents linked to the entity."""
        key = (entity_type, name)
        cached = self._entity_cache.get(key)
        if cached is not None:
            return cached
        counts = np.zeros(max(self.num_labels, 1))
        for doc_id in self._entity_docs.get(key, []):
            prefix_ids = self._doc_prefix_ids[doc_id]
            if prefix_ids:
                counts[prefix_ids] += 1
        total = counts.sum()
        dist = counts / total if total > 0 else np.full_like(
            counts, 1.0 / max(len(counts), 1))
        self._entity_cache[key] = dist
        return dist


def jensen_shannon(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen–Shannon divergence between two label distributions."""
    p = np.maximum(np.asarray(p, dtype=float), EPS)
    q = np.maximum(np.asarray(q, dtype=float), EPS)
    p = p / p.sum()
    q = q / q.sum()
    mix = 0.5 * (p + q)
    return float(0.5 * np.sum(p * np.log(p / mix))
                 + 0.5 * np.sum(q * np.log(q / mix)))


class SimulatedAnnotator:
    """One annotator with an independent noise stream.

    Args:
        affinity: ground-truth label affinity index.
        noise: standard deviation of Gaussian noise added to divergence
            judgments; 0 makes the annotator a perfect oracle of topical
            separation.
        seed: RNG seed or generator.
    """

    def __init__(self, affinity: LabelAffinity, noise: float = 0.08,
                 seed: RandomState = None) -> None:
        self.affinity = affinity
        self.noise = noise
        self._rng = ensure_rng(seed)

    def pick_intruder(self, distributions: Sequence[np.ndarray]) -> int:
        """Choose the option most dissimilar from the rest.

        For each option, the annotator considers its average divergence
        from the other options and picks the maximum (with noise).
        """
        n = len(distributions)
        scores = np.zeros(n)
        for i in range(n):
            others = [jensen_shannon(distributions[i], distributions[j])
                      for j in range(n) if j != i]
            scores[i] = float(np.mean(others)) if others else 0.0
        scores = scores + self._rng.normal(0.0, self.noise, size=n)
        return int(scores.argmax())

    def pick_phrase_intruder(self, phrases: Sequence[str]) -> int:
        """Pick the intruder among phrase strings."""
        return self.pick_intruder(
            [self.affinity.phrase_distribution(p) for p in phrases])

    def pick_entity_intruder(self, entity_type: str,
                             names: Sequence[str]) -> int:
        """Pick the intruder among entity names of one type."""
        return self.pick_intruder(
            [self.affinity.entity_distribution(entity_type, n)
             for n in names])
