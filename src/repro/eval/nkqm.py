"""nKQM@K and simulated expert judges (Section 4.4.1).

The normalized phrase quality measure is an nDCG-style aggregate of
judge scores over each method's top-K phrases per topic, with each
phrase's score weighted by inter-judge agreement.  Offline we substitute
judges whose base score is derived from the generator's ground truth —
a phrase that *is* a planted topical collocation scores high, an
incomplete fragment or random concatenation scores low — plus independent
per-judge noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import tokenize
from ..datasets.ground_truth import GroundTruth
from ..datasets.vocabularies import BACKGROUND_UNIGRAMS
from ..utils import RandomState, ensure_rng


class SimulatedPhraseJudge:
    """Scores phrases 1-5 from ground-truth phrase structure.

    Scoring rubric (before noise):
        5.0  exact planted topical phrase (leaf or area level),
        3.0  a standalone topical unigram,
        2.0  an incomplete fragment of a planted phrase
             ("vector machines"), or a background word,
        2.5  a planted phrase plus extra words (over-complete),
        1.5  anything else (random concatenations).
    """

    def __init__(self, truth: GroundTruth, noise: float = 0.6,
                 seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)
        self.noise = noise
        self._exact: set = set()
        self._fragments: set = set()
        self._unigrams: set = set()
        for path in truth.paths:
            for phrase in truth.normalized_phrases(path):
                self._exact.add(phrase)
                words = phrase.split()
                for n in range(1, len(words)):
                    for start in range(len(words) - n + 1):
                        self._fragments.add(
                            " ".join(words[start:start + n]))
            spec = truth.paths[path]
            for word in spec.unigrams:
                tokens = tokenize(word)
                if tokens:
                    self._unigrams.add(tokens[0])
        self._background = set(BACKGROUND_UNIGRAMS)

    def base_score(self, phrase: str) -> float:
        """The noise-free rubric score of a phrase string."""
        phrase = phrase.strip()
        if phrase in self._exact:
            return 5.0
        words = phrase.split()
        if any(exact in phrase and exact != phrase
               for exact in self._exact):
            return 2.5
        if len(words) == 1:
            if phrase in self._unigrams:
                return 3.0
            if phrase in self._fragments:
                return 2.0
            if phrase in self._background:
                return 2.0
            return 1.5
        if phrase in self._fragments:
            return 2.0
        return 1.5

    def score(self, phrase: str) -> int:
        """One judge's noisy 1-5 Likert rating."""
        value = self.base_score(phrase) + self._rng.normal(0.0, self.noise)
        return int(np.clip(round(value), 1, 5))


def agreement_weight(scores: Sequence[int]) -> float:
    """Per-item agreement weight in [0, 1].

    Stands in for the per-phrase weighted-Cohen's-kappa factor of the
    paper's score_aw: (3,3,3) weighs more than (1,3,5) at the same mean.
    The weight is 1 - (score spread / maximal spread on the 1-5 scale).
    """
    arr = np.asarray(scores, dtype=float)
    if len(arr) < 2:
        return 1.0
    max_std = 2.0  # std of the extreme (1, 5, ...) patterns, approx.
    return float(np.clip(1.0 - arr.std() / max_std, 0.0, 1.0))


def weighted_cohens_kappa(ratings_a: Sequence[int],
                          ratings_b: Sequence[int],
                          num_levels: int = 5) -> float:
    """Linear-weighted Cohen's kappa between two raters over many items."""
    a = np.asarray(ratings_a, dtype=int) - 1
    b = np.asarray(ratings_b, dtype=int) - 1
    if len(a) != len(b) or len(a) == 0:
        return 0.0
    weights = 1.0 - np.abs(
        np.arange(num_levels)[:, None]
        - np.arange(num_levels)[None, :]) / (num_levels - 1)
    observed = np.zeros((num_levels, num_levels))
    for x, y in zip(a, b):
        observed[x, y] += 1
    observed /= len(a)
    marg_a = observed.sum(axis=1)
    marg_b = observed.sum(axis=0)
    expected = np.outer(marg_a, marg_b)
    po = float((weights * observed).sum())
    pe = float((weights * expected).sum())
    if pe >= 1.0:
        return 1.0
    return (po - pe) / (1.0 - pe)


def judge_phrases(phrases: Sequence[str], judges: Sequence[SimulatedPhraseJudge],
                  ) -> Dict[str, List[int]]:
    """All judges rate all phrases; returns phrase -> score list."""
    return {phrase: [judge.score(phrase) for judge in judges]
            for phrase in phrases}


def nkqm_at_k(method_rankings: Sequence[Sequence[str]],
              judged: Dict[str, List[int]],
              k: int,
              ideal_pool: Optional[Sequence[str]] = None) -> float:
    """nKQM@K for one method (Section 4.4.1).

    Args:
        method_rankings: per topic, the method's ranked phrase strings.
        judged: phrase -> judge scores (from :func:`judge_phrases`).
        k: cutoff K.
        ideal_pool: phrases over which the ideal DCG is computed;
            defaults to all judged phrases.
    """
    def score_aw(phrase: str) -> float:
        scores = judged.get(phrase, [1])
        return float(np.mean(scores)) * agreement_weight(scores)

    pool = list(ideal_pool) if ideal_pool is not None else list(judged)
    ideal_scores = sorted((score_aw(p) for p in pool), reverse=True)[:k]
    ideal = sum(s / np.log2(j + 2) for j, s in enumerate(ideal_scores))
    if ideal <= 0:
        return 0.0
    total = 0.0
    for ranking in method_rankings:
        dcg = sum(score_aw(phrase) / np.log2(j + 2)
                  for j, phrase in enumerate(list(ranking)[:k]))
        total += dcg / ideal
    return total / max(len(method_rankings), 1)


def coherence_score(phrases: Sequence[str], affinity, noise: float = 0.4,
                    rng: Optional[np.random.Generator] = None) -> float:
    """Simulated-expert topical coherence rating on a 1-10 scale (Fig. 4.4).

    Coherence is the homogeneity of the list's thematic structure: the
    mean pairwise Jensen–Shannon *similarity* of the phrases'
    ground-truth label distributions, mapped to [1, 10] with noise.
    """
    rng = ensure_rng(rng)
    if not phrases:
        return 1.0
    # Judge coherence at area granularity (the level methods cluster at);
    # fall back to leaf labels for flat corpora.
    dims = (getattr(affinity, "area_label_indices", None)
            or getattr(affinity, "leaf_label_indices", None))
    distributions = []
    for phrase in phrases:
        dist = np.asarray(affinity.phrase_distribution(phrase), dtype=float)
        if dims:
            dist = dist[dims]
        total = dist.sum()
        distributions.append(dist / total if total > 0
                             else np.full_like(dist, 1.0 / len(dist)))
    # Modal mass of the list's mean leaf-label distribution: high only
    # when the phrases concentrate on one ground-truth topic.  (Pairwise
    # similarity alone would reward lists of broad background phrases.)
    mean_dist = np.mean(distributions, axis=0)
    value = 1.0 + 9.0 * float(mean_dist.max())
    return float(np.clip(value + rng.normal(0.0, noise), 1.0, 10.0))


def phrase_quality_score(phrases: Sequence[str],
                         judge: SimulatedPhraseJudge,
                         noise: float = 0.4,
                         rng: Optional[np.random.Generator] = None) -> float:
    """Simulated-expert phrase quality rating on a 1-10 scale (Fig. 4.5)."""
    rng = ensure_rng(rng)
    if not phrases:
        return 1.0
    mean_base = float(np.mean([judge.base_score(p) for p in phrases]))
    value = 2.0 * mean_base  # 1-5 rubric -> 2-10 scale
    return float(np.clip(value + rng.normal(0.0, noise), 1.0, 10.0))


def z_scores(values_by_method: Dict[str, List[float]]) -> Dict[str, float]:
    """Standardize per-item ratings across methods (Figs. 4.4/4.5)."""
    all_values = [v for values in values_by_method.values() for v in values]
    mean = float(np.mean(all_values)) if all_values else 0.0
    std = float(np.std(all_values)) or 1.0
    return {method: float(np.mean([(v - mean) / std for v in values]))
            if values else 0.0
            for method, values in values_by_method.items()}
