"""Intruder-detection tasks (Sections 3.3.2 and 4.4.2).

Three tasks: Phrase Intrusion, Entity Intrusion, Topic Intrusion.  Each
question shows X options, X-1 drawn from one topic and one from a sibling
topic; simulated annotators (three, with independent noise) must spot the
intruder.  A question counts as answered correctly when the annotators'
majority answer is the true intruder — the stand-in for the paper's
"choose incorrectly or inconsistently -> failure" rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..hierarchy import TopicalHierarchy
from ..utils import RandomState, ensure_rng
from .annotator import LabelAffinity, SimulatedAnnotator, jensen_shannon


@dataclass
class IntrusionQuestion:
    """One question: options plus the index of the planted intruder."""

    options: List[str]
    intruder_index: int
    entity_type: Optional[str] = None


SiblingGroups = Sequence[Sequence[Sequence[str]]]


def generate_intrusion_questions(groups: SiblingGroups,
                                 num_questions: int,
                                 options_per_question: int = 5,
                                 entity_type: Optional[str] = None,
                                 top_k: int = 10,
                                 seed: RandomState = None,
                                 ) -> List[IntrusionQuestion]:
    """Sample intrusion questions from sibling topic groups.

    Args:
        groups: sibling groups; each group is a list of topics; each
            topic is its ranked item list (phrases or entity names).
            For flat methods there is a single group of k topics.
        num_questions: how many questions to sample.
        options_per_question: X (the paper uses 5).
        entity_type: set for entity questions (stored on the question).
        top_k: items are drawn from each topic's top-k.
    """
    rng = ensure_rng(seed)
    usable: List[Tuple[List[str], List[str]]] = []
    for group in groups:
        topics = [list(t[:top_k]) for t in group if len(t) >= 2]
        for i, topic in enumerate(topics):
            for j, sibling in enumerate(topics):
                if i == j:
                    continue
                intruders = [item for item in sibling if item not in topic]
                if len(topic) >= options_per_question - 1 and intruders:
                    usable.append((topic, intruders))
    questions: List[IntrusionQuestion] = []
    if not usable:
        return questions
    for _ in range(num_questions):
        topic, intruders = usable[int(rng.integers(len(usable)))]
        own = [topic[i] for i in rng.choice(
            len(topic), size=options_per_question - 1, replace=False)]
        intruder = intruders[int(rng.integers(len(intruders)))]
        options = own + [intruder]
        order = rng.permutation(len(options))
        shuffled = [options[i] for i in order]
        questions.append(IntrusionQuestion(
            options=shuffled,
            intruder_index=int(np.where(order == len(options) - 1)[0][0]),
            entity_type=entity_type))
    return questions


def run_intrusion_task(questions: Sequence[IntrusionQuestion],
                       corpus: Corpus,
                       num_annotators: int = 3,
                       noise: float = 0.08,
                       seed: RandomState = None,
                       affinity: Optional[LabelAffinity] = None) -> float:
    """Fraction of questions whose majority answer is the true intruder."""
    rng = ensure_rng(seed)
    if affinity is None:
        affinity = LabelAffinity(corpus)
    annotators = [SimulatedAnnotator(affinity, noise=noise, seed=rng)
                  for _ in range(num_annotators)]
    if not questions:
        return 0.0
    correct = 0
    for question in questions:
        answers = []
        for annotator in annotators:
            if question.entity_type is None:
                answers.append(
                    annotator.pick_phrase_intruder(question.options))
            else:
                answers.append(annotator.pick_entity_intruder(
                    question.entity_type, question.options))
        counts = np.bincount(answers, minlength=len(question.options))
        majority = int(counts.argmax())
        if counts[majority] >= (num_annotators + 1) // 2 and \
                majority == question.intruder_index:
            correct += 1
    return correct / len(questions)


def hierarchy_phrase_groups(hierarchy: TopicalHierarchy,
                            top_k: int = 10) -> List[List[List[str]]]:
    """Sibling groups of phrase lists from a built hierarchy."""
    groups = []
    for topic in hierarchy.topics():
        if len(topic.children) >= 2:
            groups.append([child.top_phrases(top_k)
                           for child in topic.children])
    return groups


def hierarchy_entity_groups(hierarchy: TopicalHierarchy, entity_type: str,
                            top_k: int = 10,
                            max_parent_level: Optional[int] = None,
                            ) -> List[List[List[str]]]:
    """Sibling groups of entity rankings from a built hierarchy.

    ``max_parent_level`` restricts question generation to sibling groups
    whose parent is at most that level — useful when entities only carry
    topical signal down to a certain granularity (e.g. venues distinguish
    areas but not subareas).
    """
    groups = []
    for topic in hierarchy.topics():
        if max_parent_level is not None and topic.level > max_parent_level:
            continue
        if len(topic.children) >= 2:
            groups.append([child.top_entities(entity_type, top_k)
                           for child in topic.children])
    return groups


@dataclass
class TopicIntrusionQuestion:
    """One topic-intrusion question: candidate subtopics of a parent."""

    parent_items: List[str]
    candidates: List[List[str]]
    intruder_index: int


def generate_topic_intrusion_questions(hierarchy: TopicalHierarchy,
                                       num_questions: int,
                                       candidates_per_question: int = 4,
                                       top_k: int = 5,
                                       seed: RandomState = None,
                                       ) -> List[TopicIntrusionQuestion]:
    """Parent + (X-1) true children + 1 non-child (Section 3.3.2)."""
    rng = ensure_rng(seed)
    parents = [t for t in hierarchy.topics()
               if len(t.children) >= candidates_per_question - 1
               and t.phrases]
    questions: List[TopicIntrusionQuestion] = []
    if not parents:
        return questions
    all_topics = [t for t in hierarchy.topics() if t.phrases]
    for _ in range(num_questions):
        parent = parents[int(rng.integers(len(parents)))]
        child_notations = {c.notation for c in parent.children}
        outsiders = [t for t in all_topics
                     if t.notation not in child_notations
                     and t.notation != parent.notation
                     and t.level == parent.level + 1]
        if not outsiders:
            continue
        chosen_children = [parent.children[i] for i in rng.choice(
            len(parent.children), size=candidates_per_question - 1,
            replace=False)]
        intruder = outsiders[int(rng.integers(len(outsiders)))]
        candidates = [c.top_phrases(top_k) for c in chosen_children]
        candidates.append(intruder.top_phrases(top_k))
        order = rng.permutation(len(candidates))
        shuffled = [candidates[i] for i in order]
        questions.append(TopicIntrusionQuestion(
            parent_items=parent.top_phrases(top_k),
            candidates=shuffled,
            intruder_index=int(np.where(
                order == len(candidates) - 1)[0][0])))
    return questions


def run_topic_intrusion_task(questions: Sequence[TopicIntrusionQuestion],
                             corpus: Corpus,
                             num_annotators: int = 3,
                             noise: float = 0.03,
                             seed: RandomState = None,
                             affinity: Optional[LabelAffinity] = None,
                             ) -> float:
    """Fraction of topic-intrusion questions answered correctly.

    The annotator represents each candidate topic by the average label
    distribution of its top phrases and flags the candidate farthest
    from the parent's distribution.
    """
    rng = ensure_rng(seed)
    if affinity is None:
        affinity = LabelAffinity(corpus)
    if not questions:
        return 0.0

    def topic_distribution(items: List[str]) -> np.ndarray:
        dists = [affinity.phrase_distribution(p) for p in items]
        if not dists:
            return np.full(max(affinity.num_labels, 1),
                           1.0 / max(affinity.num_labels, 1))
        return np.mean(dists, axis=0)

    correct = 0
    annotator_rngs = [ensure_rng(rng.integers(2 ** 32))
                      for _ in range(num_annotators)]
    for question in questions:
        parent_dist = topic_distribution(question.parent_items)
        divergences = np.array([
            jensen_shannon(parent_dist, topic_distribution(candidate))
            for candidate in question.candidates])
        answers = []
        for annotator_rng in annotator_rngs:
            noisy = divergences + annotator_rng.normal(
                0.0, noise, size=len(divergences))
            answers.append(int(noisy.argmax()))
        counts = np.bincount(answers, minlength=len(question.candidates))
        majority = int(counts.argmax())
        if counts[majority] >= (num_annotators + 1) // 2 and \
                majority == question.intruder_index:
            correct += 1
    return correct / len(questions)
