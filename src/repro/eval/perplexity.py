"""Held-out perplexity for flat topic models.

Section 3.3.1 notes that PMI "is generally preferred over other
quantitative metrics such as perplexity or the likelihood of held-out
data" — but perplexity remains the standard sanity metric for topic
model fit, so the library provides it: documents are split into an
observed half (used to fold in a document-topic mixture) and a held-out
half (scored under the folded-in mixture).
"""

from __future__ import annotations

import warnings
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import inc
from ..phrases.ranking import FlatTopicModel
from ..utils import EPS, RandomState, ensure_rng


def split_document(doc: Sequence[int], rng: np.random.Generator,
                   observed_fraction: float = 0.5,
                   ) -> Tuple[List[int], List[int]]:
    """Randomly split one document's tokens into observed and held-out."""
    tokens = list(doc)
    rng.shuffle(tokens)
    cut = max(1, int(len(tokens) * observed_fraction))
    return tokens[:cut], tokens[cut:]


def fold_in(model: FlatTopicModel, observed: Sequence[int],
            iterations: int = 30) -> np.ndarray:
    """EM fold-in: estimate a document's topic mixture from its words.

    phi stays fixed; only the document mixture theta is optimized, so
    held-out scoring never trains on test words.
    """
    k = model.num_topics
    theta = np.full(k, 1.0 / k)
    if len(observed) == 0:
        return theta
    word_ids = np.asarray(observed, dtype=np.int64)
    word_probs = model.phi[:, word_ids]  # (k, n)
    for _ in range(iterations):
        responsibilities = theta[:, None] * word_probs
        responsibilities /= np.maximum(
            responsibilities.sum(axis=0, keepdims=True), EPS)
        theta = responsibilities.sum(axis=1)
        theta /= max(theta.sum(), EPS)
    return theta


def held_out_perplexity(model: FlatTopicModel,
                        docs: Sequence[Sequence[int]],
                        observed_fraction: float = 0.5,
                        fold_iterations: int = 30,
                        seed: RandomState = None) -> float:
    """Document-completion perplexity of ``model`` on ``docs``.

    Lower is better; a uniform model over V words scores exactly V.

    Documents too short to split (fewer than 2 tokens, or whose split
    leaves no held-out half) cannot be scored and are skipped; skipped
    documents raise a :class:`RuntimeWarning` and are counted under the
    ``eval.perplexity.skipped_docs`` metric.  When *every* document is
    skipped there is no held-out token to score, and the function
    returns the sentinel ``float("inf")`` — "no evidence", which orders
    after every finite perplexity — rather than raising.
    """
    if not 0 < observed_fraction < 1:
        raise ConfigurationError("observed_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    log_likelihood = 0.0
    token_count = 0
    skipped = 0
    for doc in docs:
        if len(doc) < 2:
            skipped += 1
            continue
        observed, held_out = split_document(doc, rng, observed_fraction)
        if not held_out:
            skipped += 1
            continue
        theta = fold_in(model, observed, iterations=fold_iterations)
        probs = theta @ model.phi[:, np.asarray(held_out, dtype=np.int64)]
        log_likelihood += float(np.log(np.maximum(probs, EPS)).sum())
        token_count += len(held_out)
    if skipped:
        inc("eval.perplexity.skipped_docs", skipped)
        warnings.warn(
            f"held_out_perplexity skipped {skipped} of {len(docs)} "
            f"documents too short to split into observed and held-out "
            f"halves", RuntimeWarning, stacklevel=2)
    if token_count == 0:
        return float("inf")
    return float(np.exp(-log_likelihood / token_count))
