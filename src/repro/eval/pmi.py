"""Pointwise mutual information metrics (Eq. 3.44–3.45).

PMI measures the semantic coherence of a topic's top words by their
corpus co-occurrence; HPMI extends it to multi-typed topics by scoring
every (type x, type y) pair of top-ranked object lists.  Probabilities
are document-level: p(v) is the fraction of documents containing v, and
p(v, u) the fraction containing both.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..network import TERM_TYPE
from ..utils import EPS


class CooccurrenceStatistics:
    """Document-level occurrence sets for terms and entities.

    Built once per corpus; all PMI/HPMI queries run against it.
    """

    def __init__(self, corpus: Corpus, smoothing: float = 0.25) -> None:
        self.num_documents = max(len(corpus), 1)
        self.smoothing = smoothing
        self._doc_sets: Dict[Tuple[str, str], set] = {}
        for doc in corpus:
            for tok in set(doc.tokens):
                word = corpus.vocabulary.word_of(tok)
                self._doc_sets.setdefault((TERM_TYPE, word),
                                          set()).add(doc.doc_id)
            for etype, names in doc.entities.items():
                for name in names:
                    self._doc_sets.setdefault((etype, name),
                                              set()).add(doc.doc_id)

    def probability(self, node_type: str, name: str) -> float:
        """p(v): fraction of documents containing the item."""
        docs = self._doc_sets.get((node_type, name))
        return len(docs) / self.num_documents if docs else 0.0

    def joint_probability(self, type_a: str, name_a: str,
                          type_b: str, name_b: str) -> float:
        """p(v, u): fraction of documents containing both items."""
        docs_a = self._doc_sets.get((type_a, name_a))
        docs_b = self._doc_sets.get((type_b, name_b))
        if not docs_a or not docs_b:
            return 0.0
        return len(docs_a & docs_b) / self.num_documents

    def pmi(self, type_a: str, name_a: str,
            type_b: str, name_b: str) -> float:
        """log p(a,b) / (p(a) p(b)) with additive smoothing.

        Smoothing keeps never-co-occurring pairs finite: they penalize a
        topic without annihilating it (standard practice for empirical
        PMI on sparse co-occurrence data).
        """
        s = self.smoothing
        n = self.num_documents
        p_a = (self.probability(type_a, name_a) * n + s) / (n + s)
        p_b = (self.probability(type_b, name_b) * n + s) / (n + s)
        # Jelinek-Mercer smoothing of the joint toward independence:
        # never-co-occurring pairs bottom out at log(s / (1 + s)) rather
        # than -inf, and frequently co-occurring pairs are barely
        # perturbed.
        raw_joint = self.joint_probability(type_a, name_a, type_b, name_b)
        joint = (raw_joint + s * p_a * p_b) / (1.0 + s)
        return float(np.log(joint / (p_a * p_b)))


TopicRepresentation = Mapping[str, Sequence[str]]


def hpmi(stats: CooccurrenceStatistics,
         topic: TopicRepresentation,
         type_x: str, type_y: str,
         top_k: int = 20) -> float:
    """HPMI(v^x, v^y) of Eq. 3.45 for one topic and one link type."""
    nodes_x = list(topic.get(type_x, []))[:top_k]
    nodes_y = list(topic.get(type_y, []))[:top_k]
    if type_x == type_y:
        pairs = list(combinations(nodes_x, 2))
        scores = [stats.pmi(type_x, a, type_y, b) for a, b in pairs]
    else:
        scores = [stats.pmi(type_x, a, type_y, b)
                  for a in nodes_x for b in nodes_y]
    if not scores:
        return 0.0
    return float(np.mean(scores))


def hpmi_table(stats: CooccurrenceStatistics,
               topics: Sequence[TopicRepresentation],
               link_types: Sequence[Tuple[str, str]],
               top_k: int = 20,
               top_k_overrides: Optional[Mapping[str, int]] = None,
               ) -> Dict[str, float]:
    """Average HPMI per link type plus the overall score (Tables 3.2–3.3).

    Args:
        topics: one representation (type -> ranked names) per topic.
        link_types: the (x, y) pairs to report.
        top_k_overrides: per-type K (the paper uses K=3 for venues since
            only 20 exist).

    Returns a mapping with one entry per ``"x-y"`` link type and an
    ``"overall"`` average.
    """
    overrides = dict(top_k_overrides or {})
    results: Dict[str, float] = {}
    per_type_scores: List[float] = []
    for type_x, type_y in link_types:
        k_x = overrides.get(type_x, top_k)
        k_y = overrides.get(type_y, top_k)
        scores = []
        for topic in topics:
            limited = {
                type_x: list(topic.get(type_x, []))[:k_x],
                type_y: list(topic.get(type_y, []))[:k_y],
            }
            scores.append(hpmi(stats, limited, type_x, type_y,
                               top_k=max(k_x, k_y)))
        value = float(np.mean(scores)) if scores else 0.0
        results["-".join((type_x, type_y))] = value
        per_type_scores.append(value)
    results["overall"] = float(np.mean(per_type_scores)) \
        if per_type_scores else 0.0
    return results


def top_frequency_topic(corpus: Corpus, entity_types: Sequence[str],
                        top_k: int = 20) -> Dict[str, List[str]]:
    """The TopK pseudo-topic baseline of Section 3.3.1.

    Simply the globally most frequent nodes of each type — the floor any
    real method must beat.
    """
    term_counts = corpus.word_counts()
    ranked_terms = sorted(term_counts.items(), key=lambda kv: -kv[1])
    topic: Dict[str, List[str]] = {
        TERM_TYPE: [corpus.vocabulary.word_of(w)
                    for w, _ in ranked_terms[:top_k]]}
    for etype in entity_types:
        counts: Dict[str, int] = {}
        for doc in corpus:
            for name in doc.entity_list(etype):
                counts[name] = counts.get(name, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        topic[etype] = [name for name, _ in ranked[:top_k]]
    return topic
