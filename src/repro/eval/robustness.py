"""Run-to-run robustness of topic inference (Section 7.4.2).

STROD's moment-based inference is deterministic up to tensor-power
restarts, while Gibbs sampling and EM depend on random initialization.
Robustness is quantified as the average per-topic L1 discrepancy between
the topic-word matrices of repeated runs, after greedy topic alignment.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np


def align_topics(reference: np.ndarray, candidate: np.ndarray) -> np.ndarray:
    """Greedy-match candidate topics to reference topics by L1 distance.

    Returns the candidate matrix with rows permuted to best match the
    reference.  Greedy matching is adequate for well-separated topics and
    avoids a Hungarian dependency.
    """
    k = reference.shape[0]
    used = set()
    order = np.empty(k, dtype=np.int64)
    for z in range(k):
        distances = [(float(np.abs(reference[z] - candidate[j]).sum()), j)
                     for j in range(k) if j not in used]
        _, best = min(distances)
        used.add(best)
        order[z] = best
    return candidate[order]


def pairwise_discrepancy(phis: Sequence[np.ndarray]) -> float:
    """Mean aligned per-topic L1 distance over all run pairs."""
    runs = list(phis)
    if len(runs) < 2:
        return 0.0
    k = runs[0].shape[0]
    total, count = 0.0, 0
    for i in range(len(runs)):
        for j in range(i + 1, len(runs)):
            aligned = align_topics(runs[i], runs[j])
            total += float(np.abs(runs[i] - aligned).sum()) / k
            count += 1
    return total / max(count, 1)


def recovery_error(phi_true: np.ndarray, phi_hat: np.ndarray) -> float:
    """Mean per-topic L1 error against planted topics, after alignment."""
    aligned = align_topics(phi_true, phi_hat)
    return float(np.abs(phi_true - aligned).sum()) / phi_true.shape[0]


def run_variability(fit_fn: Callable[[int], np.ndarray],
                    num_runs: int = 3,
                    seeds: Sequence[int] = (0, 1, 2)) -> float:
    """Fit ``num_runs`` times with different seeds; return discrepancy.

    ``fit_fn(seed)`` must return a (k, V) topic-word matrix.
    """
    phis: List[np.ndarray] = [fit_fn(int(seed))
                              for seed in list(seeds)[:num_runs]]
    return pairwise_discrepancy(phis)
