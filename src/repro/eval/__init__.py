"""Evaluation harness: metrics and simulated-judgment tasks."""

from .annotator import LabelAffinity, SimulatedAnnotator, jensen_shannon
from .intrusion import (IntrusionQuestion, TopicIntrusionQuestion,
                        generate_intrusion_questions,
                        generate_topic_intrusion_questions,
                        hierarchy_entity_groups, hierarchy_phrase_groups,
                        run_intrusion_task, run_topic_intrusion_task)
from .mutual_info import label_top_phrases, mutual_information_at_k
from .nkqm import (SimulatedPhraseJudge, agreement_weight, coherence_score,
                   judge_phrases, nkqm_at_k, phrase_quality_score,
                   weighted_cohens_kappa, z_scores)
from .perplexity import fold_in, held_out_perplexity, split_document
from .pmi import (CooccurrenceStatistics, hpmi, hpmi_table,
                  top_frequency_topic)
from .robustness import (align_topics, pairwise_discrepancy, recovery_error,
                         run_variability)

__all__ = [
    "CooccurrenceStatistics",
    "hpmi",
    "hpmi_table",
    "top_frequency_topic",
    "LabelAffinity",
    "SimulatedAnnotator",
    "jensen_shannon",
    "IntrusionQuestion",
    "TopicIntrusionQuestion",
    "generate_intrusion_questions",
    "generate_topic_intrusion_questions",
    "hierarchy_phrase_groups",
    "hierarchy_entity_groups",
    "run_intrusion_task",
    "run_topic_intrusion_task",
    "SimulatedPhraseJudge",
    "judge_phrases",
    "agreement_weight",
    "weighted_cohens_kappa",
    "nkqm_at_k",
    "coherence_score",
    "phrase_quality_score",
    "z_scores",
    "label_top_phrases",
    "mutual_information_at_k",
    "align_topics",
    "pairwise_discrepancy",
    "recovery_error",
    "run_variability",
    "held_out_perplexity",
    "fold_in",
    "split_document",
]
