"""Synthetic dataset generators with ground truth."""

from .ground_truth import AdvisingRecord, GroundTruth, SyntheticDataset
from .io import (dataset_from_dict, dataset_to_dict, load_dataset,
                 save_dataset)
from .planted_lda import PlantedLDA, generate_planted_lda, make_separated_topics
from .synthetic_dblp import DBLPConfig, generate_dblp, generate_dblp_area
from .synthetic_news import NewsConfig, generate_news, generate_news_subset
from .vocabularies import (BACKGROUND_UNIGRAMS, NEWS_FOUR_TOPIC_SUBSET,
                           TopicSpec, computer_science_hierarchy,
                           hierarchy_paths, news_stories)

__all__ = [
    "AdvisingRecord",
    "GroundTruth",
    "SyntheticDataset",
    "save_dataset",
    "load_dataset",
    "dataset_to_dict",
    "dataset_from_dict",
    "DBLPConfig",
    "generate_dblp",
    "generate_dblp_area",
    "NewsConfig",
    "generate_news",
    "generate_news_subset",
    "PlantedLDA",
    "generate_planted_lda",
    "make_separated_topics",
    "TopicSpec",
    "computer_science_hierarchy",
    "news_stories",
    "hierarchy_paths",
    "BACKGROUND_UNIGRAMS",
    "NEWS_FOUR_TOPIC_SUBSET",
]
