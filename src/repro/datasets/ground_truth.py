"""Ground-truth containers shared by the synthetic generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..corpus import Corpus, tokenize
from ..hierarchy import path_to_notation
from .vocabularies import TopicSpec, hierarchy_paths

Path = Tuple[int, ...]


@dataclass
class AdvisingRecord:
    """One ground-truth advisor–advisee relationship with its interval."""

    advisee: str
    advisor: str
    start: int
    end: int


@dataclass
class GroundTruth:
    """Everything the evaluation harness needs about a synthetic dataset."""

    hierarchy: TopicSpec
    doc_topic_paths: List[Path] = field(default_factory=list)
    entity_topics: Dict[str, Dict[str, Path]] = field(default_factory=dict)
    advising: List[AdvisingRecord] = field(default_factory=list)

    @property
    def paths(self) -> Dict[Path, TopicSpec]:
        """Map every topic path to its spec."""
        return hierarchy_paths(self.hierarchy)

    def topic_of_document(self, doc_id: int) -> Path:
        """The leaf topic path that generated document ``doc_id``."""
        return self.doc_topic_paths[doc_id]

    def topic_of_entity(self, entity_type: str, name: str) -> Optional[Path]:
        """The home topic path of an entity (None when unknown)."""
        return self.entity_topics.get(entity_type, {}).get(name)

    def normalized_phrases(self, path: Path) -> List[str]:
        """Generating phrases of a topic, post-tokenization.

        Mined phrases are compared in tokenizer-normalized space (e.g.
        ``"part of speech tagging"`` becomes ``"part speech tagging"``
        after stopword removal), so the ground truth must be normalized
        the same way.
        """
        spec = self.paths[path]
        normalized = []
        for phrase in spec.phrases:
            tokens = tokenize(phrase)
            if tokens:
                normalized.append(" ".join(tokens))
        return normalized

    def advisor_of(self, author: str) -> Optional[str]:
        """Ground-truth advisor of ``author`` (None for forest roots)."""
        for record in self.advising:
            if record.advisee == author:
                return record.advisor
        return None

    def notation_of_document(self, doc_id: int) -> str:
        """Leaf topic of a document in ``o/1/2`` notation."""
        return path_to_notation(self.doc_topic_paths[doc_id])


@dataclass
class SyntheticDataset:
    """A generated corpus together with its ground truth."""

    name: str
    corpus: Corpus
    ground_truth: GroundTruth

    def __repr__(self) -> str:
        return (f"SyntheticDataset({self.name!r}, docs={len(self.corpus)}, "
                f"vocab={len(self.corpus.vocabulary)})")
