"""Persistence for synthetic datasets (JSON).

Saving a generated dataset pins the exact corpus and ground truth used
by an experiment, so results can be regenerated without re-running the
generator (or compared across library versions).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..corpus import Corpus
from ..errors import DataError
from ..resilience import atomic_write_json
from .ground_truth import AdvisingRecord, GroundTruth, SyntheticDataset
from .vocabularies import TopicSpec

FORMAT_VERSION = 1


def _spec_to_dict(spec: TopicSpec) -> dict:
    return {
        "name": spec.name,
        "phrases": list(spec.phrases),
        "unigrams": list(spec.unigrams),
        "children": [_spec_to_dict(child) for child in spec.children],
    }


def _spec_from_dict(data: dict) -> TopicSpec:
    return TopicSpec(
        name=data["name"],
        phrases=list(data["phrases"]),
        unigrams=list(data["unigrams"]),
        children=[_spec_from_dict(child) for child in data["children"]])


def dataset_to_dict(dataset: SyntheticDataset) -> dict:
    """Serialize a dataset (corpus + ground truth) to plain data.

    ``repro_version`` records the library that generated the file (for
    traceability); :func:`dataset_from_dict` ignores it, so datasets
    written by any 1.x version stay mutually loadable.
    """
    from .. import get_version

    corpus = dataset.corpus
    truth = dataset.ground_truth
    return {
        "version": FORMAT_VERSION,
        "repro_version": get_version(),
        "name": dataset.name,
        "vocabulary": list(corpus.vocabulary),
        "documents": [
            {
                "chunks": [list(chunk) for chunk in doc.chunks],
                "entities": {k: list(v) for k, v in doc.entities.items()},
                "year": doc.year,
                "label": doc.label,
            }
            for doc in corpus
        ],
        "ground_truth": {
            "hierarchy": _spec_to_dict(truth.hierarchy),
            "doc_topic_paths": [list(p) for p in truth.doc_topic_paths],
            "entity_topics": {
                etype: {name: list(path) for name, path in mapping.items()}
                for etype, mapping in truth.entity_topics.items()
            },
            "advising": [
                {"advisee": r.advisee, "advisor": r.advisor,
                 "start": r.start, "end": r.end}
                for r in truth.advising
            ],
        },
    }


def dataset_from_dict(data: dict) -> SyntheticDataset:
    """Deserialize a dataset written by :func:`dataset_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise DataError(f"unsupported dataset format version: "
                        f"{data.get('version')!r}")
    from ..corpus import Vocabulary

    corpus = Corpus(vocabulary=Vocabulary(data["vocabulary"]))
    for record in data["documents"]:
        corpus.add_document(
            chunks=[list(chunk) for chunk in record["chunks"]],
            entities={k: list(v)
                      for k, v in record.get("entities", {}).items()},
            year=record.get("year"),
            label=record.get("label"))

    truth_data = data["ground_truth"]
    truth = GroundTruth(
        hierarchy=_spec_from_dict(truth_data["hierarchy"]),
        doc_topic_paths=[tuple(p)
                         for p in truth_data["doc_topic_paths"]],
        entity_topics={
            etype: {name: tuple(path) for name, path in mapping.items()}
            for etype, mapping in truth_data["entity_topics"].items()
        },
        advising=[AdvisingRecord(**record)
                  for record in truth_data["advising"]])
    return SyntheticDataset(name=data["name"], corpus=corpus,
                            ground_truth=truth)


def save_dataset(dataset: SyntheticDataset, path: str,
                 indent: Optional[int] = None) -> None:
    """Write a dataset to a JSON file.

    The write is atomic (temp file + rename): a crash mid-write leaves
    any existing file at ``path`` untouched instead of truncated.

    Raises:
        DataError: when ``path`` is a streaming shard directory
            (``repro.stream.ShardStore``) — a one-shot dataset file
            must not clobber an append-only log; append a batch with
            ``repro ingest`` instead.
    """
    if os.path.isdir(path):
        from ..stream.shards import is_shard_dir

        if is_shard_dir(path):
            raise DataError(
                f"{path} is a streaming shard store; refusing to "
                f"overwrite it with a one-shot dataset file (use "
                f"'repro ingest --shard-dir {path}' to append to the "
                f"stream instead)")
        raise DataError(f"{path} is a directory, not a dataset file")
    atomic_write_json(path, dataset_to_dict(dataset), indent=indent)


def load_dataset(path: str) -> SyntheticDataset:
    """Read a dataset from a JSON file written by :func:`save_dataset`.

    Raises:
        DataError: when the file is not valid JSON or not a dataset.
        OSError: when the file cannot be read.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DataError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise DataError(f"{path} does not contain a dataset object")
    try:
        return dataset_from_dict(data)
    except (KeyError, TypeError, AttributeError) as exc:
        raise DataError(
            f"{path} is not a valid dataset file: {exc!r}") from exc
