"""Synthetic news corpus in the image of the dissertation's NEWS dataset.

The NEWS dataset (Section 3.3) consists of article titles on 16 top
stories with automatically extracted person and location entities.  The
entities were extracted by an IE system, so links are noisier than DBLP's
curated author/venue links; the generator reproduces this with cross-story
entity borrowing and a higher background-word rate.  Topics are flat —
stories have no subareas — matching the paper's setting where subtopic
discovery splits each story into aspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..corpus import Corpus
from ..hierarchy import path_to_notation
from ..utils import RandomState, ensure_rng
from .ground_truth import GroundTruth, Path, SyntheticDataset
from .vocabularies import (BACKGROUND_UNIGRAMS, NEWS_FOUR_TOPIC_SUBSET,
                           hierarchy_paths, news_stories)


@dataclass
class NewsConfig:
    """Knobs for :func:`generate_news`."""

    num_stories: int = 16
    articles_per_story: int = 120
    phrases_per_title: int = 2
    unigrams_per_title: int = 2
    background_prob: float = 0.5
    persons_per_article: int = 2
    locations_per_article: int = 2
    entity_noise_prob: float = 0.12


def generate_news(config: Optional[NewsConfig] = None,
                  seed: RandomState = 0,
                  story_names: Optional[List[str]] = None,
                  ) -> SyntheticDataset:
    """Generate a synthetic news dataset with person/location entities.

    Args:
        config: generation knobs.
        seed: RNG seed or generator.
        story_names: restrict to these stories (e.g. the 4-topic subset of
            Section 3.3.1); defaults to the first ``config.num_stories``.
    """
    config = config or NewsConfig()
    rng = ensure_rng(seed)

    hierarchy = news_stories(num_stories=16)
    if story_names is not None:
        chosen = [s for s in hierarchy.children if s.name in story_names]
    else:
        chosen = hierarchy.children[:config.num_stories]
    hierarchy.children = chosen
    paths = hierarchy_paths(hierarchy)
    leaves = [p for p, spec in paths.items() if p]

    texts: List[str] = []
    entities: List[Dict[str, List[str]]] = []
    labels: List[str] = []
    doc_topic_paths: List[Path] = []

    def pick_entities(pool: List[str], other_pools: List[List[str]],
                      count: int) -> List[str]:
        """Sample entities mostly from the story, with IE-style noise."""
        chosen_names: List[str] = []
        for _ in range(min(count, len(pool))):
            if other_pools and rng.random() < config.entity_noise_prob:
                other = other_pools[int(rng.integers(len(other_pools)))]
                chosen_names.append(str(rng.choice(other)))
            else:
                chosen_names.append(str(rng.choice(pool)))
        # Deduplicate while preserving order.
        seen = set()
        unique = []
        for name in chosen_names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    all_person_pools = [spec.persons for spec in hierarchy.children]
    all_location_pools = [spec.locations for spec in hierarchy.children]

    for leaf_index, leaf in enumerate(leaves):
        spec = paths[leaf]
        other_persons = (all_person_pools[:leaf_index]
                         + all_person_pools[leaf_index + 1:])
        other_locations = (all_location_pools[:leaf_index]
                           + all_location_pools[leaf_index + 1:])
        for _ in range(config.articles_per_story):
            n_phrases = min(config.phrases_per_title, len(spec.phrases))
            phrase_idx = rng.choice(len(spec.phrases), size=n_phrases,
                                    replace=False)
            parts = [spec.phrases[i] for i in phrase_idx]
            for _ in range(config.unigrams_per_title):
                parts.append(str(rng.choice(spec.unigrams)))
            if rng.random() < config.background_prob:
                parts.append(str(rng.choice(BACKGROUND_UNIGRAMS)))
            order = rng.permutation(len(parts))
            texts.append(" ".join(parts[i] for i in order))
            entities.append({
                "person": pick_entities(spec.persons, other_persons,
                                        config.persons_per_article),
                "location": pick_entities(spec.locations, other_locations,
                                          config.locations_per_article),
            })
            labels.append(path_to_notation(leaf))
            doc_topic_paths.append(leaf)

    corpus = Corpus.from_texts(texts, entities=entities, labels=labels)

    entity_topics: Dict[str, Dict[str, Path]] = {"person": {}, "location": {}}
    for leaf_index, leaf in enumerate(leaves):
        spec = paths[leaf]
        for person in spec.persons:
            entity_topics["person"].setdefault(person, leaf)
        for location in spec.locations:
            entity_topics["location"].setdefault(location, leaf)

    truth = GroundTruth(hierarchy=hierarchy,
                        doc_topic_paths=doc_topic_paths,
                        entity_topics=entity_topics)
    return SyntheticDataset(name="synthetic-news", corpus=corpus,
                            ground_truth=truth)


def generate_news_subset(seed: RandomState = 0,
                         config: Optional[NewsConfig] = None,
                         ) -> SyntheticDataset:
    """The 4-story subset of Section 3.3.1 (Bill Clinton, Boston Marathon,
    Earthquake, Egypt)."""
    dataset = generate_news(config=config, seed=seed,
                            story_names=NEWS_FOUR_TOPIC_SUBSET)
    dataset.name = "synthetic-news-4"
    return dataset
