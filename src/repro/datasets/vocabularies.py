"""Topic specifications used by the synthetic data generators.

Each topic is described by a name, a list of multi-word *phrases* (the
collocations the generator emits contiguously, so phrase mining has real
signal to find), and a list of single *unigrams*.  The computer-science
hierarchy mirrors the six areas of the dissertation's DBLP dataset
(Section 3.3), and the news stories mirror its 16-story NEWS dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TopicSpec:
    """A ground-truth topic: its language model and its children."""

    name: str
    phrases: List[str] = field(default_factory=list)
    unigrams: List[str] = field(default_factory=list)
    children: List["TopicSpec"] = field(default_factory=list)

    def all_words(self) -> List[str]:
        """Every distinct word appearing in this topic's own language."""
        words = []
        seen = set()
        for phrase in self.phrases:
            for word in phrase.split():
                if word not in seen:
                    seen.add(word)
                    words.append(word)
        for word in self.unigrams:
            if word not in seen:
                seen.add(word)
                words.append(word)
        return words

    def leaves(self, prefix: Tuple[int, ...] = ()) -> List[Tuple[Tuple[int, ...], "TopicSpec"]]:
        """(path, spec) pairs for all leaf descendants (or self if leaf)."""
        if not self.children:
            return [(prefix, self)]
        result = []
        for i, child in enumerate(self.children):
            result.extend(child.leaves(prefix + (i,)))
        return result

    def find(self, path: Tuple[int, ...]) -> "TopicSpec":
        """The descendant spec at ``path`` (self for the empty path)."""
        node = self
        for index in path:
            node = node.children[index]
        return node


#: Background vocabulary mixed into every document at a small rate.
BACKGROUND_UNIGRAMS: List[str] = [
    "approach", "method", "analysis", "study", "novel", "framework",
    "efficient", "evaluation", "model", "system", "problem", "results",
    "technique", "application", "design", "based", "new", "improved",
]


def _topic(name: str, phrases: List[str], unigrams: List[str],
           children: Optional[List[TopicSpec]] = None) -> TopicSpec:
    return TopicSpec(name=name, phrases=phrases, unigrams=unigrams,
                     children=children or [])


def computer_science_hierarchy() -> TopicSpec:
    """A 2-level topic hierarchy over the six CS areas of Section 3.3."""
    databases = _topic(
        "databases",
        ["database systems", "data management"],
        ["database", "data", "relational", "schema", "storage"],
        [
            _topic("query processing",
                   ["query processing", "query optimization",
                    "deductive databases", "materialized views"],
                   ["query", "queries", "optimizer", "views", "plans"]),
            _topic("transactions",
                   ["concurrency control", "main memory",
                    "transaction management", "distributed database systems"],
                   ["transactions", "locking", "recovery", "logging",
                    "throughput"]),
            _topic("data integration",
                   ["data integration", "data warehousing", "schema matching",
                    "entity resolution"],
                   ["integration", "warehouse", "mediator", "mappings",
                    "cleaning"]),
        ])
    data_mining = _topic(
        "data mining",
        ["data mining", "knowledge discovery"],
        ["mining", "patterns", "clusters", "discovery", "datasets"],
        [
            _topic("frequent patterns",
                   ["association rules", "frequent patterns",
                    "mining association rules", "frequent itemsets"],
                   ["itemsets", "apriori", "rules", "support", "lattice"]),
            _topic("stream mining",
                   ["data streams", "mining data streams", "outlier detection",
                    "anomaly detection"],
                   ["streams", "sliding", "window", "outliers", "drift"]),
            _topic("graph mining",
                   ["large graphs", "social networks", "graph mining",
                    "community detection"],
                   ["graphs", "vertices", "communities", "subgraph",
                    "centrality"]),
        ])
    machine_learning = _topic(
        "machine learning",
        ["machine learning", "learning algorithms"],
        ["learning", "training", "classifier", "features", "labels"],
        [
            _topic("kernel methods",
                   ["support vector machines", "kernel methods",
                    "feature selection", "dimensionality reduction"],
                   ["kernel", "margin", "svm", "regularization", "sparse"]),
            _topic("probabilistic models",
                   ["graphical models", "hidden markov models",
                    "conditional random fields", "bayesian networks"],
                   ["inference", "posterior", "latent", "variational",
                    "sampling"]),
            _topic("reinforcement learning",
                   ["reinforcement learning", "markov decision processes",
                    "policy gradient", "temporal difference learning"],
                   ["policy", "reward", "agent", "exploration", "bandit"]),
        ])
    information_retrieval = _topic(
        "information retrieval",
        ["information retrieval", "retrieval models"],
        ["retrieval", "search", "ranking", "documents", "relevance"],
        [
            _topic("web search",
                   ["web search", "search engine", "world wide web",
                    "web pages"],
                   ["web", "crawler", "hyperlinks", "pagerank", "snippets"]),
            _topic("retrieval feedback",
                   ["relevance feedback", "query expansion",
                    "document retrieval", "language modeling"],
                   ["feedback", "expansion", "smoothing", "pseudo", "terms"]),
            _topic("recommendation",
                   ["collaborative filtering", "recommender systems",
                    "matrix factorization", "implicit feedback"],
                   ["recommendation", "ratings", "users", "items",
                    "preferences"]),
        ])
    natural_language = _topic(
        "natural language processing",
        ["natural language", "language processing"],
        ["language", "text", "words", "sentences", "corpus"],
        [
            _topic("machine translation",
                   ["machine translation", "statistical machine translation",
                    "word alignment", "phrase based translation"],
                   ["translation", "bilingual", "decoder", "alignment",
                    "fluency"]),
            _topic("parsing",
                   ["dependency parsing", "part of speech tagging",
                    "syntactic parsing", "context free grammars"],
                   ["parsing", "grammar", "treebank", "syntax", "tagger"]),
            _topic("information extraction",
                   ["information extraction", "named entity recognition",
                    "relation extraction", "word sense disambiguation"],
                   ["extraction", "entities", "mentions", "annotation",
                    "coreference"]),
        ])
    artificial_intelligence = _topic(
        "artificial intelligence",
        ["artificial intelligence", "intelligent systems"],
        ["reasoning", "knowledge", "planning", "agents", "logic"],
        [
            _topic("search and planning",
                   ["heuristic search", "constraint satisfaction",
                    "automated planning", "local search"],
                   ["heuristic", "constraints", "satisfiability", "solver",
                    "backtracking"]),
            _topic("knowledge representation",
                   ["knowledge representation", "description logics",
                    "belief revision", "answer set programming"],
                   ["ontology", "axioms", "semantics", "entailment",
                    "defaults"]),
            _topic("multiagent systems",
                   ["multiagent systems", "game theory",
                    "mechanism design", "social choice"],
                   ["auctions", "equilibrium", "negotiation", "voting",
                    "coalitions"]),
        ])
    return _topic(
        "computer science",
        [],
        [],
        [databases, data_mining, machine_learning, information_retrieval,
         natural_language, artificial_intelligence])


#: (story name, phrases, unigrams, persons, locations) for the NEWS corpus.
_NEWS_STORIES: List[Tuple[str, List[str], List[str], List[str], List[str]]] = [
    ("egypt",
     ["muslim brotherhood", "tahrir square", "imf loan", "president morsi"],
     ["egypt", "protests", "cairo", "constitution", "military"],
     ["mohamed morsi", "hosni mubarak", "mohamed elbaradei"],
     ["egypt", "cairo", "tahrir square", "port said"]),
    ("boston marathon",
     ["boston marathon", "finish line", "pressure cooker", "bomb squad"],
     ["explosion", "runners", "investigation", "suspects", "manhunt"],
     ["dzhokhar tsarnaev", "tamerlan tsarnaev", "deval patrick"],
     ["boston", "watertown", "massachusetts", "cambridge"]),
    ("earthquake",
     ["magnitude earthquake", "death toll", "rescue teams", "aftershocks felt"],
     ["earthquake", "damage", "epicenter", "survivors", "tremor"],
     ["ban ki moon", "red cross", "geological survey"],
     ["sichuan", "iran", "pakistan", "tehran"]),
    ("bill clinton",
     ["bill clinton", "clinton foundation", "campaign trail",
      "democratic convention"],
     ["speech", "fundraiser", "endorsement", "initiative", "charity"],
     ["bill clinton", "hillary clinton", "barack obama"],
     ["washington", "new york", "arkansas", "charlotte"]),
    ("gaza",
     ["gaza strip", "rocket fire", "cease fire", "air strikes"],
     ["gaza", "militants", "border", "casualties", "truce"],
     ["benjamin netanyahu", "khaled meshaal", "mahmoud abbas"],
     ["gaza", "israel", "jerusalem", "rafah"]),
    ("iran",
     ["nuclear program", "uranium enrichment", "economic sanctions",
      "nuclear talks"],
     ["iran", "centrifuges", "diplomats", "negotiations", "embargo"],
     ["mahmoud ahmadinejad", "ali khamenei", "saeed jalili"],
     ["iran", "tehran", "geneva", "vienna"]),
    ("israel",
     ["israeli election", "prime minister", "coalition government",
      "west bank"],
     ["israel", "parliament", "settlements", "knesset", "ballot"],
     ["benjamin netanyahu", "ehud barak", "yair lapid"],
     ["israel", "jerusalem", "tel aviv", "west bank"]),
    ("joe biden",
     ["joe biden", "vice president", "gun control", "task force"],
     ["debate", "legislation", "amendment", "background", "checks"],
     ["joe biden", "barack obama", "paul ryan"],
     ["washington", "delaware", "danville", "white house"]),
    ("microsoft",
     ["windows phone", "microsoft office", "surface tablet", "windows release"],
     ["microsoft", "software", "devices", "launch", "licensing"],
     ["steve ballmer", "bill gates", "steven sinofsky"],
     ["redmond", "seattle", "silicon valley", "new york"]),
    ("mitt romney",
     ["mitt romney", "presidential campaign", "swing states",
      "republican party"],
     ["campaign", "votes", "polls", "debate", "nomination"],
     ["mitt romney", "paul ryan", "barack obama"],
     ["ohio", "florida", "boston", "iowa"]),
    ("nuclear power",
     ["nuclear power", "nuclear plant", "radiation levels", "reactor core"],
     ["reactor", "energy", "safety", "shutdown", "fuel"],
     ["naoto kan", "yukiya amano", "gregory jaczko"],
     ["fukushima", "japan", "tokyo", "chernobyl"]),
    ("steve jobs",
     ["steve jobs", "apple founder", "medical leave", "stanford speech"],
     ["apple", "iphone", "visionary", "biography", "resignation"],
     ["steve jobs", "tim cook", "steve wozniak"],
     ["cupertino", "california", "san francisco", "palo alto"]),
    ("sudan",
     ["south sudan", "oil fields", "border clashes", "peace agreement"],
     ["sudan", "independence", "refugees", "conflict", "militia"],
     ["omar al bashir", "salva kiir", "george clooney"],
     ["sudan", "juba", "khartoum", "darfur"]),
    ("syria",
     ["syrian regime", "civil war", "chemical weapons", "opposition forces"],
     ["syria", "rebels", "shelling", "uprising", "refugees"],
     ["bashar al assad", "kofi annan", "lakhdar brahimi"],
     ["syria", "damascus", "aleppo", "homs"]),
    ("unemployment",
     ["unemployment rate", "jobs report", "labor market", "payroll growth"],
     ["unemployment", "hiring", "economy", "jobless", "claims"],
     ["ben bernanke", "jack lew", "alan krueger"],
     ["washington", "new york", "detroit", "chicago"]),
    ("us crime",
     ["death penalty", "crime scene", "police department", "court ruling"],
     ["shooting", "trial", "verdict", "sentencing", "homicide"],
     ["george zimmerman", "jerry sandusky", "drew peterson"],
     ["florida", "chicago", "texas", "los angeles"]),
]


def news_stories(num_stories: int = 16) -> TopicSpec:
    """A flat hierarchy over up to 16 news stories (Section 3.3).

    Each story's persons and locations are encoded in its spec as extra
    attributes consumed by the NEWS generator.
    """
    stories = []
    for name, phrases, unigrams, persons, locations in \
            _NEWS_STORIES[:num_stories]:
        spec = _topic(name, phrases, unigrams)
        spec.persons = persons            # type: ignore[attr-defined]
        spec.locations = locations        # type: ignore[attr-defined]
        stories.append(spec)
    return _topic("news", [], [], stories)


#: Names of the four-story subset used in Section 3.3.1.
NEWS_FOUR_TOPIC_SUBSET: List[str] = [
    "bill clinton", "boston marathon", "earthquake", "egypt",
]


def hierarchy_paths(root: TopicSpec) -> Dict[Tuple[int, ...], TopicSpec]:
    """Map every path (including the root's empty path) to its spec."""
    paths: Dict[Tuple[int, ...], TopicSpec] = {}

    def visit(spec: TopicSpec, path: Tuple[int, ...]) -> None:
        paths[path] = spec
        for i, child in enumerate(spec.children):
            visit(child, path + (i,))

    visit(root, ())
    return paths
