"""Synthetic bibliographic network in the image of the DBLP dataset.

The dissertation evaluates on DBLP paper titles linked to authors and
venues, with hidden advisor–advisee relations (Sections 3.3, 4.4, 5, 6).
This generator produces an equivalent corpus with *known* latent structure:

* a ground-truth topic hierarchy (areas and subareas, each with its own
  phrase-structured language model),
* venues concentrated in one area but spread across its subareas —
  reproducing the "venue links matter at level 1, not level 2" effect of
  Figure 3.8,
* an advisor forest evolving over time: advisors take students, students
  co-publish with their advisor during the advising interval and graduate
  into advisors themselves — reproducing the publication-correlation and
  imbalance signals TPFG exploits (Section 6.1.3),
* titles built by concatenating contiguous topical phrases, so frequent
  phrase mining has genuine collocations to discover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..corpus import Corpus
from ..hierarchy import path_to_notation
from ..utils import RandomState, ensure_rng
from .ground_truth import AdvisingRecord, GroundTruth, Path, SyntheticDataset
from .vocabularies import (BACKGROUND_UNIGRAMS, TopicSpec,
                           computer_science_hierarchy, hierarchy_paths)


@dataclass
class DBLPConfig:
    """Knobs for :func:`generate_dblp`.

    Defaults are sized so a full CATHYHIN hierarchy build runs in seconds
    while still exhibiting the statistical effects benchmarked in
    Chapters 3–6.
    """

    num_areas: int = 6
    subareas_per_area: int = 3
    venues_per_area: int = 3
    seniors_per_leaf: int = 2
    start_year: int = 1990
    end_year: int = 2012
    max_authors: int = 400
    student_take_prob: float = 0.35
    advising_years: int = 5
    postdoc_gap_years: int = 2
    same_leaf_prob: float = 0.85
    papers_per_advising_year: Tuple[int, int] = (1, 3)
    papers_per_graduate_year: Tuple[int, int] = (0, 2)
    phrases_per_title: Tuple[int, int] = (2, 3)
    parent_phrase_prob: float = 0.4
    unigrams_per_title: Tuple[int, int] = (1, 2)
    background_prob: float = 0.3
    # Confounders for relation mining: a secondary senior collaborator
    # ("mentor") who is not the advisor but co-publishes with the student,
    # and papers the advisor does not appear on.  Without these, the
    # advisor is trivially the dominant early-career coauthor and every
    # method scores near 100%.
    mentor_prob: float = 0.45
    mentor_paper_prob: float = 0.65
    advisor_absent_prob: float = 0.25
    # A senior labmate — still being advised, two-plus years ahead — who
    # co-publishes heavily during the student's first years.  Fools raw
    # collaboration counting (RULE) and, because the labmate's own
    # advising interval overlaps, creates exactly the time conflicts
    # TPFG's constraint factors resolve (Assumption 6.1).
    labmate_mentor_prob: float = 0.55
    labmate_paper_prob: float = 0.9
    labmate_years: int = 3


@dataclass
class _Author:
    """Internal author state while the forest evolves."""

    name: str
    leaf: Path
    career_start: int
    advisor: Optional[str] = None
    advising_start: Optional[int] = None
    advising_end: Optional[int] = None
    students: List[str] = field(default_factory=list)
    mentor: Optional[str] = None
    labmate_mentor: Optional[str] = None

    def graduated_by(self, year: int) -> bool:
        """True when the author is no longer advised in ``year``."""
        return self.advising_end is None or year > self.advising_end

    def can_advise(self, year: int, gap: int) -> bool:
        """True when the author may take a student in ``year``."""
        if self.advising_end is None:
            return True  # forest root: a senior from the start
        return year >= self.advising_end + gap


def _truncate_hierarchy(root: TopicSpec, num_areas: int,
                        subareas: int) -> TopicSpec:
    """Limit the built-in CS hierarchy to the requested size."""
    areas = []
    for area in root.children[:num_areas]:
        areas.append(TopicSpec(name=area.name, phrases=list(area.phrases),
                               unigrams=list(area.unigrams),
                               children=area.children[:subareas]))
    return TopicSpec(name=root.name, phrases=[], unigrams=[], children=areas)


def _sample_title(leaf_spec: TopicSpec, area_spec: TopicSpec,
                  config: DBLPConfig, rng: np.random.Generator) -> str:
    """Compose one paper title from topical phrases and unigrams."""
    lo, hi = config.phrases_per_title
    n_phrases = int(rng.integers(lo, hi + 1))
    n_phrases = min(n_phrases, len(leaf_spec.phrases))
    phrase_idx = rng.choice(len(leaf_spec.phrases), size=n_phrases,
                            replace=False)
    parts = [leaf_spec.phrases[i] for i in phrase_idx]
    if area_spec.phrases and rng.random() < config.parent_phrase_prob:
        parts.append(str(rng.choice(area_spec.phrases)))
    lo, hi = config.unigrams_per_title
    n_unigrams = int(rng.integers(lo, hi + 1))
    pool = list(leaf_spec.unigrams) or list(area_spec.unigrams)
    for _ in range(n_unigrams):
        if pool:
            parts.append(str(rng.choice(pool)))
    if rng.random() < config.background_prob:
        parts.append(str(rng.choice(BACKGROUND_UNIGRAMS)))
    order = rng.permutation(len(parts))
    return " ".join(parts[i] for i in order)


def _grow_advisor_forest(leaves: List[Path], config: DBLPConfig,
                         rng: np.random.Generator) -> Dict[str, _Author]:
    """Evolve the author population year by year."""
    authors: Dict[str, _Author] = {}
    counter = 0

    def new_name() -> str:
        nonlocal counter
        counter += 1
        return f"author_{counter:04d}"

    for leaf in leaves:
        for _ in range(config.seniors_per_leaf):
            name = new_name()
            authors[name] = _Author(name=name, leaf=leaf,
                                    career_start=config.start_year)

    leaf_array = list(leaves)
    for year in range(config.start_year + 1, config.end_year + 1):
        if len(authors) >= config.max_authors:
            break
        eligible = [a for a in authors.values()
                    if a.career_start < year
                    and a.can_advise(year, config.postdoc_gap_years)
                    and sum(1 for s in a.students
                            if not authors[s].graduated_by(year)) < 3]
        rng.shuffle(eligible)
        for advisor in eligible:
            if len(authors) >= config.max_authors:
                break
            if rng.random() >= config.student_take_prob:
                continue
            if rng.random() < config.same_leaf_prob:
                leaf = advisor.leaf
            else:
                leaf = leaf_array[int(rng.integers(len(leaf_array)))]
            name = new_name()
            student = _Author(
                name=name, leaf=leaf, career_start=year, advisor=advisor.name,
                advising_start=year,
                advising_end=min(year + config.advising_years - 1,
                                 config.end_year))
            if rng.random() < config.mentor_prob:
                mentors = [a.name for a in authors.values()
                           if a.name != advisor.name
                           and a.career_start < year
                           and a.graduated_by(year)]
                if mentors:
                    student.mentor = str(rng.choice(mentors))
            if rng.random() < config.labmate_mentor_prob:
                seniors = [a.name for a in authors.values()
                           if a.advising_start is not None
                           and not a.graduated_by(year)
                           and a.career_start <= year - 2]
                if seniors:
                    student.labmate_mentor = str(rng.choice(seniors))
            authors[name] = student
            advisor.students.append(name)
    return authors


def generate_dblp(config: Optional[DBLPConfig] = None,
                  seed: RandomState = 0) -> SyntheticDataset:
    """Generate a synthetic DBLP-style dataset with full ground truth."""
    config = config or DBLPConfig()
    rng = ensure_rng(seed)

    hierarchy = _truncate_hierarchy(computer_science_hierarchy(),
                                    config.num_areas,
                                    config.subareas_per_area)
    paths = hierarchy_paths(hierarchy)
    leaves = [p for p, spec in paths.items() if not spec.children]

    # Venues: concentrated per area, shared across its subareas.
    venue_topics: Dict[str, Path] = {}
    venues_by_area: Dict[Path, List[str]] = {}
    for area_index, area in enumerate(hierarchy.children):
        area_path = (area_index,)
        prefix = "".join(word[0] for word in area.name.split()).upper()
        names = [f"{prefix}{area_index + 1}-{i + 1}"
                 for i in range(config.venues_per_area)]
        venues_by_area[area_path] = names
        for name in names:
            venue_topics[name] = area_path

    authors = _grow_advisor_forest(leaves, config, rng)

    # Emit papers year by year.
    texts: List[str] = []
    entities: List[Dict[str, List[str]]] = []
    years: List[int] = []
    labels: List[str] = []
    doc_topic_paths: List[Path] = []

    def emit_paper(first_author: _Author, coauthors: List[str],
                   year: int) -> None:
        leaf_spec = paths[first_author.leaf]
        area_spec = paths[first_author.leaf[:1]]
        title = _sample_title(leaf_spec, area_spec, config, rng)
        venue_pool = venues_by_area[first_author.leaf[:1]]
        venue = str(rng.choice(venue_pool))
        author_list = [first_author.name] + [
            a for a in coauthors if a != first_author.name]
        texts.append(title)
        entities.append({"author": author_list, "venue": [venue]})
        years.append(year)
        labels.append(path_to_notation(first_author.leaf))
        doc_topic_paths.append(first_author.leaf)

    for year in range(config.start_year, config.end_year + 1):
        for author in authors.values():
            if author.career_start > year:
                continue
            in_advising = (author.advising_start is not None
                           and author.advising_start <= year
                           <= (author.advising_end or year))
            if in_advising:
                lo, hi = config.papers_per_advising_year
                n_papers = int(rng.integers(lo, hi + 1))
                for _ in range(n_papers):
                    coauthors: List[str] = []
                    if author.advisor and \
                            rng.random() >= config.advisor_absent_prob:
                        coauthors.append(author.advisor)
                    if author.mentor and \
                            rng.random() < config.mentor_paper_prob:
                        coauthors.append(author.mentor)
                    if author.labmate_mentor and \
                            author.advising_start is not None and \
                            year < author.advising_start + \
                            config.labmate_years and \
                            rng.random() < config.labmate_paper_prob:
                        coauthors.append(author.labmate_mentor)
                    # Occasionally a labmate joins.
                    if author.advisor and rng.random() < 0.3:
                        labmates = [s for s in authors[author.advisor].students
                                    if s != author.name]
                        if labmates:
                            coauthors.append(
                                str(rng.choice(labmates)))
                    emit_paper(author, coauthors, year)
            elif author.graduated_by(year):
                lo, hi = config.papers_per_graduate_year
                n_papers = int(rng.integers(lo, hi + 1))
                for _ in range(n_papers):
                    # Collaborate with a same-leaf colleague sometimes.
                    coauthors: List[str] = []
                    if rng.random() < 0.4:
                        peers = [a.name for a in authors.values()
                                 if a.leaf == author.leaf
                                 and a.name != author.name
                                 and a.career_start <= year]
                        if peers:
                            coauthors.append(str(rng.choice(peers)))
                    emit_paper(author, coauthors, year)

    corpus = Corpus.from_texts(texts, entities=entities, years=years,
                               labels=labels)

    entity_topics: Dict[str, Dict[str, Path]] = {
        "author": {a.name: a.leaf for a in authors.values()},
        "venue": dict(venue_topics),
    }
    advising = [AdvisingRecord(advisee=a.name, advisor=a.advisor,
                               start=a.advising_start, end=a.advising_end)
                for a in authors.values() if a.advisor is not None]
    truth = GroundTruth(hierarchy=hierarchy,
                        doc_topic_paths=doc_topic_paths,
                        entity_topics=entity_topics,
                        advising=advising)
    return SyntheticDataset(name="synthetic-dblp", corpus=corpus,
                            ground_truth=truth)


def generate_dblp_area(area_index: int = 0,
                       config: Optional[DBLPConfig] = None,
                       seed: RandomState = 0) -> SyntheticDataset:
    """Generate the single-area variant (the 'Database area' of Table 3.2).

    Produces a dataset whose root *is* one area, with that area's subareas
    as its children — the lower-level-of-the-hierarchy evaluation setting.
    """
    config = config or DBLPConfig()
    full = generate_dblp(config=config, seed=seed)
    truth = full.ground_truth
    area_path = (area_index,)
    doc_ids = [i for i, p in enumerate(truth.doc_topic_paths)
               if p[:1] == area_path]
    corpus = full.corpus.subset(doc_ids)
    area_spec = truth.hierarchy.children[area_index]
    sub_truth = GroundTruth(
        hierarchy=area_spec,
        doc_topic_paths=[truth.doc_topic_paths[i][1:] for i in doc_ids],
        entity_topics={
            etype: {name: path[1:]
                    for name, path in mapping.items()
                    if path[:1] == area_path}
            for etype, mapping in truth.entity_topics.items()
        },
        advising=list(truth.advising),
    )
    return SyntheticDataset(name=f"synthetic-dblp-area-{area_index}",
                            corpus=corpus, ground_truth=sub_truth)
