"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or option combination was supplied."""


class DataError(ReproError):
    """The supplied data is malformed or inconsistent with the schema."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before fitting."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to make progress or produce a result."""


class ExecutionError(ReproError):
    """A parallel execution resource failed (dead worker, broken pool,
    or a map that exceeded its timeout) and the work could not be
    completed serially either.

    Attributes:
        label: the pmap label of the failing map, when known.
    """

    def __init__(self, message: str, label: Optional[str] = None) -> None:
        super().__init__(message)
        self.label = label
