"""repro.resilience — crash-safe persistence and checkpoint/resume.

Two pillars:

* **atomic writes** (:mod:`repro.resilience.atomic`): every on-disk
  artifact (datasets, run reports, checkpoints) is written via temp file
  + ``os.replace`` in the target directory, so an interrupted process
  never leaves a truncated file;
* a **versioned checkpoint protocol**
  (:mod:`repro.resilience.checkpoint`): iterative solvers persist their
  resume state through a :class:`CheckpointWriter` at a configurable
  iteration cadence, and a resumed fit replays the remaining iterations
  bit-for-bit.

Every iterative solver — CATHY EM, CATHYHIN EM, the hierarchy builder,
ToPMine's phrase-constrained Gibbs sampler, the STROD tensor power
method, and TPFG — accepts ``checkpoint=`` / ``resume=`` (or a
``checkpoint_dir``), surfaced on the CLI as ``--checkpoint-dir`` and
``--resume``.  Fault tolerance for the process pool itself lives in
:mod:`repro.parallel`.

Both pillars are machine-enforced by ``repro lint``: rule RL003 routes
every file write in ``src/repro`` through :mod:`repro.resilience.atomic`,
and rule RL006 requires every checkpoint writer outside this package to
pass a ``config=`` fingerprint so resumes are guarded.
"""

from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .checkpoint import (CHECKPOINT_SCHEMA, CheckpointWriter, checkpoint_in,
                         config_fingerprint, load_checkpoint, load_framed,
                         save_checkpoint, save_framed)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointWriter",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "checkpoint_in",
    "config_fingerprint",
    "load_checkpoint",
    "load_framed",
    "save_checkpoint",
    "save_framed",
]
