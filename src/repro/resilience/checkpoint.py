"""Versioned checkpoint protocol for every iterative solver.

A checkpoint file is a single atomic artifact::

    MAGIC (11 bytes) | crc32 (4 bytes, big-endian) | length (8 bytes) | payload

where ``payload`` is the pickle of a *document*::

    {"schema": "repro.resilience/checkpoint/v1",
     "solver": "cathy.hin_em",          # who wrote it
     "config": {...},                   # plain-data fingerprint of the run
     "iteration": 12,                   # last completed iteration
     "state": {...}}                    # solver-defined resume state

Atomic temp-file-then-rename persistence (:mod:`repro.resilience.atomic`)
means a crash mid-write leaves the previous checkpoint intact, and the
magic + CRC framing means a truncated or bit-flipped file is rejected
with a clear :class:`~repro.errors.DataError` instead of resuming from
garbage.

The ``config`` fingerprint guards against resuming a run under different
hyperparameters (or a different seed): :meth:`CheckpointWriter.load`
raises :class:`~repro.errors.DataError` when the stored fingerprint does
not match the current one, because a silent mismatch would break the
bit-for-bit resume guarantee.

Solvers interact through :class:`CheckpointWriter`: call
:meth:`~CheckpointWriter.maybe_save` once per iteration (the ``every``
cadence and the lazy ``state_fn`` keep the no-op case cheap) and
:meth:`~CheckpointWriter.load` before starting when resuming.  Every
write and load is recorded in :mod:`repro.obs` under the
``resilience.*`` metrics.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional

from ..contracts import CHECKPOINT_V1
from ..errors import ConfigurationError, DataError
from ..obs.registry import inc, timed
from .atomic import atomic_write_bytes

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointWriter",
    "checkpoint_in",
    "config_fingerprint",
    "load_checkpoint",
    "load_framed",
    "save_checkpoint",
    "save_framed",
]

CHECKPOINT_SCHEMA = CHECKPOINT_V1

#: File magic; the trailing byte is the binary format version.
_MAGIC = b"REPROCKPT\x00\x01"
_HEADER = struct.Struct(">IQ")  # crc32, payload length


def config_fingerprint(value: Any) -> Any:
    """Reduce a config value to comparable plain data (repr as fallback).

    The result is deterministic, JSON-encodable, and order-insensitive
    for mappings, so two runs configured identically always fingerprint
    identically.  Checkpoints and model artifacts both store this form
    and compare it on load.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): config_fingerprint(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [config_fingerprint(v) for v in value]
    return repr(value)


_plain = config_fingerprint


def save_framed(path: str, document: Dict[str, Any],
                magic: bytes = _MAGIC,
                metric: str = "resilience.framed_write") -> None:
    """Atomically persist a pickled document behind magic + CRC framing.

    The file layout is ``magic | crc32 (4 bytes BE) | length (8 bytes BE)
    | payload`` — the checkpoint protocol's framing, reusable under any
    ``magic`` (stream corpus shards share it), so every framed artifact
    in the library rejects truncation and bit rot the same way.
    """
    payload = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
    header = magic + _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                                  len(payload))
    with timed(metric):
        atomic_write_bytes(path, header + payload)


def load_framed(path: str, magic: bytes = _MAGIC,
                kind: str = "checkpoint") -> Dict[str, Any]:
    """Read and validate a file written by :func:`save_framed`.

    Raises:
        DataError: wrong magic (``kind`` names the artifact in the
            message), truncated header or payload, CRC mismatch, or an
            unreadable pickle payload.
        OSError: when the file cannot be read at all.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    prefix = len(magic) + _HEADER.size
    if not blob.startswith(magic):
        raise DataError(f"{path} is not a repro {kind} file")
    if len(blob) < prefix:
        raise DataError(f"{path} is truncated (incomplete header)")
    crc, length = _HEADER.unpack(blob[len(magic):prefix])
    payload = blob[prefix:]
    if len(payload) != length:
        raise DataError(f"{path} is truncated ({len(payload)} of {length} "
                        f"payload bytes)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise DataError(f"{path} is corrupted (checksum mismatch)")
    try:
        document = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise DataError(f"{path} holds an unreadable {kind} payload: "
                        f"{exc!r}") from exc
    if not isinstance(document, dict):
        raise DataError(f"{path} does not hold a {kind} document")
    return document


def save_checkpoint(path: str, document: Dict[str, Any]) -> None:
    """Atomically persist a checkpoint document (framed, CRC-protected)."""
    payload = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MAGIC + _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                                   len(payload))
    with timed("resilience.checkpoint_write"):
        atomic_write_bytes(path, header + payload)
    inc("resilience.checkpoints_written")


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint file.

    Raises:
        DataError: when the file is not a checkpoint, is truncated or
            corrupted (CRC mismatch), or carries an unsupported schema.
        OSError: when the file cannot be read at all.
    """
    document = load_framed(path, _MAGIC, kind="checkpoint")
    if document.get("schema") != CHECKPOINT_SCHEMA:
        raise DataError(f"{path} carries an unsupported checkpoint schema: "
                        f"{document.get('schema')!r}")
    return document


#: History files are named ``<path>.v<iteration>``, zero-padded so a
#: lexicographic sort is also a chronological one.
_HISTORY_SUFFIX = re.compile(r"\.v(\d{9})$")


class CheckpointWriter:
    """Periodic, atomic checkpoint persistence for one solver fit.

    The file at ``path`` is always the *latest* checkpoint, atomically
    replaced on every save.  Before each replacement the superseded
    checkpoint is archived next to it as ``<path>.v<iteration>`` (a
    hard link where possible, so archiving costs one directory entry,
    not a second write).  ``keep_last`` bounds that history:

    * ``None`` (default) — keep every superseded checkpoint;
    * ``0`` — keep no history at all (the pre-1.1 single-file behavior);
    * ``N >= 1`` — after each successful newer write, prune history down
      to the ``N`` most recent superseded files.

    Args:
        path: checkpoint file location (the latest checkpoint).
        solver: name of the solver writing it; loads reject files written
            by a different solver.
        config: plain-data fingerprint of everything that must match for
            a resume to be bit-identical (hyperparameters, seed entropy,
            problem size); loads reject mismatches.
        every: iteration cadence for :meth:`maybe_save` (1 = every
            iteration).
        keep_last: checkpoint-history retention (see above).
    """

    def __init__(self, path: str, solver: str,
                 config: Optional[Dict[str, Any]] = None,
                 every: int = 1, keep_last: Optional[int] = None) -> None:
        if every < 1:
            raise ConfigurationError("checkpoint every must be >= 1")
        if keep_last is not None and keep_last < 0:
            raise ConfigurationError("checkpoint keep_last must be >= 0")
        self.path = os.fspath(path)
        self.solver = solver
        self.config = _plain(config or {})
        self.every = every
        self.keep_last = keep_last
        self._last_iteration: Optional[int] = None

    def save(self, iteration: int, state: Dict[str, Any]) -> None:
        """Persist ``state`` unconditionally as the latest checkpoint."""
        self._archive_previous()
        save_checkpoint(self.path, {
            "schema": CHECKPOINT_SCHEMA,
            "solver": self.solver,
            "config": self.config,
            "iteration": int(iteration),
            "state": state,
        })
        self._last_iteration = int(iteration)
        self._prune()

    # ------------------------------------------------------------- history
    def history_paths(self) -> List[str]:
        """Archived (superseded) checkpoint files, oldest first."""
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        base = os.path.basename(self.path)
        found = []
        try:
            entries = os.listdir(directory)
        except FileNotFoundError:
            return []
        for entry in entries:
            if not entry.startswith(base):
                continue
            match = _HISTORY_SUFFIX.fullmatch(entry[len(base):])
            if match:
                found.append((int(match.group(1)),
                              os.path.join(directory, entry)))
        return [path for _, path in sorted(found)]

    def _archive_previous(self) -> None:
        """Keep the superseded checkpoint around as ``<path>.v<iter>``."""
        if self.keep_last == 0 or not os.path.exists(self.path):
            return
        iteration = self._last_iteration
        if iteration is None:
            # A fresh writer over an existing file (resume without load):
            # stamp past the newest archive so ordering stays monotone.
            history = self.history_paths()
            iteration = 0
            if history:
                match = _HISTORY_SUFFIX.search(history[-1])
                if match is not None:
                    iteration = int(match.group(1)) + 1
        archive = f"{self.path}.v{iteration:09d}"
        try:
            if os.path.exists(archive):
                os.unlink(archive)
            os.link(self.path, archive)
        except OSError:
            # Filesystems without hard links fall back to a real copy.
            try:
                # repro: noqa-RL003  advisory archive copy of an already
                # complete checkpoint; the authoritative latest file is
                # atomic, and a truncated archive is rejected by its CRC.
                shutil.copy2(self.path, archive)
            except OSError:
                return
        inc("resilience.checkpoints_archived")

    def _prune(self) -> None:
        """Drop history beyond ``keep_last`` after a successful write."""
        if self.keep_last is None:
            return
        history = self.history_paths()
        excess = history[:max(len(history) - self.keep_last, 0)]
        for path in excess:
            try:
                os.unlink(path)
            except OSError:
                continue
        if excess:
            inc("resilience.checkpoints_pruned", len(excess))

    def maybe_save(self, iteration: int,
                   state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Save at the configured cadence; ``state_fn`` is called lazily."""
        if (iteration + 1) % self.every != 0:
            return False
        self.save(iteration, state_fn())
        return True

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored document, or None when no checkpoint exists yet.

        Raises:
            DataError: corrupted file, wrong solver, or a config
                fingerprint mismatch (resuming under different
                hyperparameters or seed would not be bit-identical).
        """
        if not os.path.exists(self.path):
            return None
        document = load_checkpoint(self.path)
        if document.get("solver") != self.solver:
            raise DataError(
                f"{self.path} was written by solver "
                f"{document.get('solver')!r}, expected {self.solver!r}")
        if document.get("config") != self.config:
            raise DataError(
                f"{self.path} was written under a different configuration; "
                f"refusing to resume (delete the checkpoint directory to "
                f"start fresh)")
        inc("resilience.checkpoints_loaded")
        self._last_iteration = int(document.get("iteration", 0))
        return document

    def clear(self) -> None:
        """Remove the checkpoint file and its archived history."""
        for path in [self.path] + self.history_paths():
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        self._last_iteration = None


def checkpoint_in(directory: Optional[str], name: str, solver: str,
                  config: Optional[Dict[str, Any]] = None,
                  every: int = 1, keep_last: Optional[int] = None,
                  ) -> Optional[CheckpointWriter]:
    """A :class:`CheckpointWriter` for ``<directory>/<name>.ckpt``.

    Returns None when ``directory`` is None, so call sites can thread an
    optional ``checkpoint_dir`` straight through.  The directory is
    created on demand; ``name`` must already be filesystem-safe.
    """
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    return CheckpointWriter(os.path.join(directory, name + ".ckpt"),
                            solver, config=config, every=every,
                            keep_last=keep_last)
