"""Versioned checkpoint protocol for every iterative solver.

A checkpoint file is a single atomic artifact::

    MAGIC (11 bytes) | crc32 (4 bytes, big-endian) | length (8 bytes) | payload

where ``payload`` is the pickle of a *document*::

    {"schema": "repro.resilience/checkpoint/v1",
     "solver": "cathy.hin_em",          # who wrote it
     "config": {...},                   # plain-data fingerprint of the run
     "iteration": 12,                   # last completed iteration
     "state": {...}}                    # solver-defined resume state

Atomic temp-file-then-rename persistence (:mod:`repro.resilience.atomic`)
means a crash mid-write leaves the previous checkpoint intact, and the
magic + CRC framing means a truncated or bit-flipped file is rejected
with a clear :class:`~repro.errors.DataError` instead of resuming from
garbage.

The ``config`` fingerprint guards against resuming a run under different
hyperparameters (or a different seed): :meth:`CheckpointWriter.load`
raises :class:`~repro.errors.DataError` when the stored fingerprint does
not match the current one, because a silent mismatch would break the
bit-for-bit resume guarantee.

Solvers interact through :class:`CheckpointWriter`: call
:meth:`~CheckpointWriter.maybe_save` once per iteration (the ``every``
cadence and the lazy ``state_fn`` keep the no-op case cheap) and
:meth:`~CheckpointWriter.load` before starting when resuming.  Every
write and load is recorded in :mod:`repro.obs` under the
``resilience.*`` metrics.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Callable, Dict, Optional

from ..errors import ConfigurationError, DataError
from ..obs.registry import inc, timed
from .atomic import atomic_write_bytes

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointWriter",
    "checkpoint_in",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.resilience/checkpoint/v1"

#: File magic; the trailing byte is the binary format version.
_MAGIC = b"REPROCKPT\x00\x01"
_HEADER = struct.Struct(">IQ")  # crc32, payload length


def _plain(value: Any) -> Any:
    """Reduce a config value to comparable plain data (repr as fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items(),
                                                     key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    return repr(value)


def save_checkpoint(path: str, document: Dict[str, Any]) -> None:
    """Atomically persist a checkpoint document (framed, CRC-protected)."""
    payload = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MAGIC + _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                                   len(payload))
    with timed("resilience.checkpoint_write"):
        atomic_write_bytes(path, header + payload)
    inc("resilience.checkpoints_written")


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint file.

    Raises:
        DataError: when the file is not a checkpoint, is truncated or
            corrupted (CRC mismatch), or carries an unsupported schema.
        OSError: when the file cannot be read at all.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    prefix = len(_MAGIC) + _HEADER.size
    if not blob.startswith(_MAGIC):
        raise DataError(f"{path} is not a repro checkpoint file")
    if len(blob) < prefix:
        raise DataError(f"{path} is truncated (incomplete header)")
    crc, length = _HEADER.unpack(blob[len(_MAGIC):prefix])
    payload = blob[prefix:]
    if len(payload) != length:
        raise DataError(f"{path} is truncated ({len(payload)} of {length} "
                        f"payload bytes)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise DataError(f"{path} is corrupted (checksum mismatch)")
    try:
        document = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise DataError(f"{path} holds an unreadable checkpoint payload: "
                        f"{exc!r}") from exc
    if not isinstance(document, dict) \
            or document.get("schema") != CHECKPOINT_SCHEMA:
        raise DataError(f"{path} carries an unsupported checkpoint schema: "
                        f"{document.get('schema') if isinstance(document, dict) else None!r}")
    return document


class CheckpointWriter:
    """Periodic, atomic checkpoint persistence for one solver fit.

    Args:
        path: checkpoint file location (one file, atomically replaced).
        solver: name of the solver writing it; loads reject files written
            by a different solver.
        config: plain-data fingerprint of everything that must match for
            a resume to be bit-identical (hyperparameters, seed entropy,
            problem size); loads reject mismatches.
        every: iteration cadence for :meth:`maybe_save` (1 = every
            iteration).
    """

    def __init__(self, path: str, solver: str,
                 config: Optional[Dict[str, Any]] = None,
                 every: int = 1) -> None:
        if every < 1:
            raise ConfigurationError("checkpoint every must be >= 1")
        self.path = os.fspath(path)
        self.solver = solver
        self.config = _plain(config or {})
        self.every = every

    def save(self, iteration: int, state: Dict[str, Any]) -> None:
        """Persist ``state`` unconditionally as the latest checkpoint."""
        save_checkpoint(self.path, {
            "schema": CHECKPOINT_SCHEMA,
            "solver": self.solver,
            "config": self.config,
            "iteration": int(iteration),
            "state": state,
        })

    def maybe_save(self, iteration: int,
                   state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Save at the configured cadence; ``state_fn`` is called lazily."""
        if (iteration + 1) % self.every != 0:
            return False
        self.save(iteration, state_fn())
        return True

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored document, or None when no checkpoint exists yet.

        Raises:
            DataError: corrupted file, wrong solver, or a config
                fingerprint mismatch (resuming under different
                hyperparameters or seed would not be bit-identical).
        """
        if not os.path.exists(self.path):
            return None
        document = load_checkpoint(self.path)
        if document.get("solver") != self.solver:
            raise DataError(
                f"{self.path} was written by solver "
                f"{document.get('solver')!r}, expected {self.solver!r}")
        if document.get("config") != self.config:
            raise DataError(
                f"{self.path} was written under a different configuration; "
                f"refusing to resume (delete the checkpoint directory to "
                f"start fresh)")
        inc("resilience.checkpoints_loaded")
        return document

    def clear(self) -> None:
        """Remove the checkpoint file (after the protected fit completes)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def checkpoint_in(directory: Optional[str], name: str, solver: str,
                  config: Optional[Dict[str, Any]] = None,
                  every: int = 1) -> Optional[CheckpointWriter]:
    """A :class:`CheckpointWriter` for ``<directory>/<name>.ckpt``.

    Returns None when ``directory`` is None, so call sites can thread an
    optional ``checkpoint_dir`` straight through.  The directory is
    created on demand; ``name`` must already be filesystem-safe.
    """
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    return CheckpointWriter(os.path.join(directory, name + ".ckpt"),
                            solver, config=config, every=every)
