"""Atomic file persistence: temp file in the target directory + rename.

Every artifact the library writes to disk — datasets, run reports,
checkpoints — goes through these helpers so a crash (SIGKILL, OOM,
power loss) mid-write can never leave a truncated file behind: readers
see either the previous complete version or the new complete version,
never a prefix of one.

The recipe is the standard one: serialize fully in memory, write to a
uniquely named temporary file *in the same directory* as the target
(``os.replace`` is only atomic within a filesystem), fsync, then rename
over the destination.  On any failure the temporary file is removed and
the destination is untouched.

This module is intentionally pure-stdlib (no intra-package imports) so
it can be used from anywhere — including :mod:`repro.obs`, which the
rest of :mod:`repro.resilience` depends on — without import cycles.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Optional

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (all-or-nothing)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, obj: Any, indent: Optional[int] = None,
                      default: Optional[Callable[[Any], Any]] = None,
                      trailing_newline: bool = False) -> None:
    """Serialize ``obj`` as JSON and write it to ``path`` atomically.

    Serialization happens fully in memory before the target directory is
    touched, so an object that fails to encode leaves no artifact at all.
    """
    text = json.dumps(obj, indent=indent, default=default)
    if trailing_newline:
        text += "\n"
    atomic_write_text(path, text)
