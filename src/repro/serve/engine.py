"""Read-optimized query engine over a loaded model artifact.

:class:`ModelQueryEngine` answers the paper's end-user queries — browse
the topic tree (§3), ranked topical phrases (§4), entity topical roles
(§5) — from precomputed indexes built once at load time:

* ``topic id -> topic record`` (and parent / children maps),
* ``phrase -> [(topic, score)]`` inverted index plus a sorted phrase
  list for binary-search prefix matching,
* ``entity type -> entity -> {topic: frequency}`` role tables.

Every public query runs through an LRU result cache whose hit / miss
counts are kept locally (always, for the ``/metrics`` endpoint) and
mirrored into the :mod:`repro.obs` metrics registry (when enabled) as
``serve.cache.hits`` / ``serve.cache.misses``.

All answers are plain JSON data.  An engine built directly from an
in-memory :class:`~repro.core.MiningResult` returns byte-identical
answers to one built from the same model saved to disk and loaded back —
the round-trip invariant the serve test suite property-checks.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, DataError
from ..obs import inc, timed
from .artifact import ServedModel

__all__ = ["ModelQueryEngine"]

#: Query operations exposed through :meth:`ModelQueryEngine.batch`.
_BATCH_OPS = ("model_info", "topic", "children", "top_phrases",
              "search_phrases", "entity_roles")

_SEARCH_MODES = ("prefix", "substring")


class ModelQueryEngine:
    """Cached queries over one served model.

    Args:
        model: the artifact to serve (see :class:`ServedModel`).
        cache_size: LRU result-cache capacity (0 disables caching).
    """

    def __init__(self, model: ServedModel, cache_size: int = 1024) -> None:
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        self.model = model
        self._cache_capacity = cache_size
        self._cache: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        with timed("serve.index_build"):
            self._build_indexes()

    @classmethod
    def from_result(cls, result, config: Optional[Dict[str, Any]] = None,
                    cache_size: int = 1024) -> "ModelQueryEngine":
        """An engine over a fitted result, without touching the disk."""
        return cls(ServedModel.from_result(result, config=config),
                   cache_size=cache_size)

    # -------------------------------------------------------------- indexes
    def _build_indexes(self) -> None:
        self._topics: Dict[str, Dict[str, Any]] = {}
        self._children: Dict[str, List[str]] = {}
        self._parent: Dict[str, Optional[str]] = {}
        phrase_topics: Dict[str, List[Tuple[str, float]]] = {}

        def walk(record: Dict[str, Any], parent: Optional[str]) -> None:
            notation = record["notation"]
            self._topics[notation] = record
            self._parent[notation] = parent
            self._children[notation] = [child["notation"]
                                        for child in record["children"]]
            for phrase, score in record["phrases"]:
                phrase_topics.setdefault(phrase, []).append(
                    (notation, score))
            for child in record["children"]:
                walk(child, notation)

        walk(self.model.model["hierarchy"], None)
        for entries in phrase_topics.values():
            entries.sort(key=lambda pair: (-pair[1], pair[0]))
        self._phrase_topics = phrase_topics
        self._phrase_list = sorted(phrase_topics)
        self._entity_roles = self.model.entity_roles

    # -------------------------------------------------------------- caching
    def _cached(self, key: Tuple, compute) -> Any:
        if self._cache_capacity == 0:
            return compute()
        with self._cache_lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self._hits += 1
                inc("serve.cache.hits")
                return self._cache[key]
        value = compute()
        with self._cache_lock:
            self._misses += 1
            inc("serve.cache.misses")
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return value

    def cache_info(self) -> Dict[str, int]:
        """Hit / miss / occupancy counters of the LRU result cache."""
        with self._cache_lock:
            return {"hits": self._hits, "misses": self._misses,
                    "size": len(self._cache),
                    "capacity": self._cache_capacity}

    # -------------------------------------------------------------- queries
    def _record(self, topic_id: str) -> Dict[str, Any]:
        record = self._topics.get(topic_id)
        if record is None:
            raise DataError(f"no topic with id {topic_id!r}")
        return record

    def model_info(self) -> Dict[str, Any]:
        """Manifest plus tree-shape statistics."""
        return self._cached(("model_info",), self._compute_model_info)

    def _compute_model_info(self) -> Dict[str, Any]:
        depths = [len(r["path"]) for r in self._topics.values()]
        return {
            "manifest": self.model.manifest,
            "stats": {
                "num_topics": len(self._topics),
                "height": max(depths) if depths else 0,
                "width": max((len(c) for c in self._children.values()),
                             default=0),
                "num_phrases": len(self._phrase_list),
                "entity_types": sorted(self._entity_roles),
                "num_entities": {etype: len(entities) for etype, entities
                                 in sorted(self._entity_roles.items())},
            },
        }

    def topic(self, topic_id: str, max_phrases: int = 10,
              max_entities: int = 5, max_terms: int = 10) -> Dict[str, Any]:
        """Full detail of one topic node."""
        key = ("topic", topic_id, max_phrases, max_entities, max_terms)
        return self._cached(key, lambda: self._compute_topic(
            topic_id, max_phrases, max_entities, max_terms))

    def _compute_topic(self, topic_id: str, max_phrases: int,
                       max_entities: int, max_terms: int) -> Dict[str, Any]:
        record = self._record(topic_id)
        terms = record["phi"].get("term", {})
        top_terms = sorted(terms.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "topic": record["notation"],
            "level": len(record["path"]),
            "rho": record["rho"],
            "parent": self._parent[record["notation"]],
            "children": self._children[record["notation"]],
            "phrases": record["phrases"][:max(max_phrases, 0)],
            "num_phrases": len(record["phrases"]),
            "top_terms": [[name, p] for name, p
                          in top_terms[:max(max_terms, 0)]],
            "entity_ranks": {
                etype: ranks[:max(max_entities, 0)]
                for etype, ranks in record["entity_ranks"].items()},
        }

    def children(self, topic_id: str) -> Dict[str, Any]:
        """One-line summaries of a topic's direct subtopics."""
        return self._cached(("children", topic_id),
                            lambda: self._compute_children(topic_id))

    def _compute_children(self, topic_id: str) -> Dict[str, Any]:
        record = self._record(topic_id)
        summaries = []
        for child in record["children"]:
            label = child["phrases"][0][0] if child["phrases"] else None
            if label is None:
                terms = child["phi"].get("term", {})
                label = min(terms, key=lambda name: (-terms[name], name)) \
                    if terms else ""
            summaries.append({"topic": child["notation"],
                              "rho": child["rho"], "label": label})
        return {"topic": record["notation"], "children": summaries}

    def top_phrases(self, topic_id: str, k: int = 10) -> Dict[str, Any]:
        """The ``k`` best ranked phrases of one topic."""
        return self._cached(("top_phrases", topic_id, k),
                            lambda: self._compute_top_phrases(topic_id, k))

    def _compute_top_phrases(self, topic_id: str, k: int) -> Dict[str, Any]:
        record = self._record(topic_id)
        return {"topic": record["notation"],
                "phrases": record["phrases"][:max(k, 0)]}

    def search_phrases(self, query: str, mode: str = "prefix",
                       limit: int = 10) -> Dict[str, Any]:
        """Phrases matching ``query``, each with its ranked topics.

        ``mode="prefix"`` binary-searches the sorted phrase list;
        ``mode="substring"`` scans it.  Matches are ordered by their best
        topic score, then alphabetically.
        """
        if mode not in _SEARCH_MODES:
            raise ConfigurationError(
                f"unsupported search mode {mode!r} (one of {_SEARCH_MODES})")
        key = ("search_phrases", query, mode, limit)
        return self._cached(key, lambda: self._compute_search(
            query, mode, limit))

    def _compute_search(self, query: str, mode: str,
                        limit: int) -> Dict[str, Any]:
        limit = max(limit, 0)
        if mode == "prefix":
            start = bisect_left(self._phrase_list, query)
            matches = []
            for phrase in self._phrase_list[start:]:
                if not phrase.startswith(query):
                    break
                matches.append(phrase)
        else:
            matches = [p for p in self._phrase_list if query in p]
        matches.sort(key=lambda p: (-self._phrase_topics[p][0][1], p))
        return {
            "query": query,
            "mode": mode,
            "num_matches": len(matches),
            "matches": [{"phrase": phrase,
                         "topics": [[notation, score] for notation, score
                                    in self._phrase_topics[phrase]]}
                        for phrase in matches[:limit]],
        }

    def entity_roles(self, name: str, entity_type: Optional[str] = None,
                     topic: str = "o") -> Dict[str, Any]:
        """An entity's topical roles: frequencies plus the normalized
        distribution over ``topic``'s children (Eq. 5.3–5.6 read path).
        """
        key = ("entity_roles", name, entity_type, topic)
        return self._cached(key, lambda: self._compute_entity_roles(
            name, entity_type, topic))

    def _compute_entity_roles(self, name: str, entity_type: Optional[str],
                              topic: str) -> Dict[str, Any]:
        node = self._record(topic)
        if entity_type is not None:
            if entity_type not in self._entity_roles:
                raise DataError(f"no entity type {entity_type!r} in model")
            types = [entity_type]
        else:
            types = sorted(self._entity_roles)
        roles = {}
        for etype in types:
            frequencies = self._entity_roles[etype].get(name)
            if frequencies is None:
                continue
            shares = {child: frequencies.get(child, 0.0)
                      for child in self._children[node["notation"]]}
            total = sum(shares.values())
            distribution = ({c: v / total for c, v in shares.items()}
                            if total > 0 else {c: 0.0 for c in shares})
            roles[etype] = {
                "total": frequencies.get("o", 0.0),
                "frequencies": frequencies,
                "distribution": distribution,
            }
        if not roles:
            raise DataError(f"no entity named {name!r} in model"
                            + (f" under type {entity_type!r}"
                               if entity_type else ""))
        return {"entity": name, "topic": node["notation"], "roles": roles}

    # ---------------------------------------------------------------- batch
    def batch(self, requests: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Execute many queries in one call.

        Each request is ``{"op": <name>, "args": {...}}``; per-request
        failures are reported in-band so one bad lookup cannot fail the
        whole batch.
        """
        if not isinstance(requests, list):
            raise ConfigurationError("batch payload must be an array")
        results = []
        for request in requests:
            if not isinstance(request, dict) \
                    or request.get("op") not in _BATCH_OPS:
                results.append({"ok": False, "status": 400,
                                "error": f"unsupported batch op: "
                                         f"{request.get('op') if isinstance(request, dict) else request!r}"})
                continue
            args = request.get("args") or {}
            try:
                result = getattr(self, request["op"])(**args)
            except DataError as exc:
                results.append({"ok": False, "status": 404,
                                "error": str(exc)})
            except (ConfigurationError, TypeError) as exc:
                results.append({"ok": False, "status": 400,
                                "error": str(exc)})
            else:
                results.append({"ok": True, "result": result})
        return {"results": results}
