"""Read-optimized query engine over a loaded model artifact.

:class:`ModelQueryEngine` answers the paper's end-user queries — browse
the topic tree (§3), ranked topical phrases (§4), entity topical roles
(§5) — from read-optimized indexes, behind an LRU result cache whose
hit / miss counts are kept locally (always, for the ``/metrics``
endpoint) and mirrored into the :mod:`repro.obs` metrics registry (when
enabled) as ``serve.cache.hits`` / ``serve.cache.misses``.

The engine is backend-polymorphic over the two artifact formats:

* a **dict backend** over the v1 JSON payload (or an in-memory
  :class:`~repro.core.MiningResult`): indexes are built once at
  construction by walking the hierarchy, exactly as PR 4 shipped it;
* a **mapped backend** over a v2 artifact
  (:class:`~repro.serve.artifact_v2.MappedModel`): the topic skeleton
  and string tables come from the artifact header and the numeric data
  stays in the memory-mapped sections — construction touches none of
  the topic-word matrices, so engine cold start is ~O(mmap).

Both backends answer every query byte-identically — to each other and
to an engine built from the in-memory fit — the round-trip invariant
the serve test suite property-checks.

**Sharded phrase search**: with ``phrase_shards=N`` the phrase index is
hash-partitioned (CRC32 of the phrase, stable across processes) into N
sorted sub-lists.  :meth:`search_phrases` fans out across the shards
and merges the per-shard top-k by ``(-best score, phrase)``; each
shard's scan is wrapped in a ``serve.search.shard`` span and timed into
``serve.search.shard.<i>.latency``, so per-shard latency attribution
flows through :mod:`repro.obs` like every other phase.  Shard results
merge to exactly the unsharded answer.  The per-shard entry points
(:meth:`search_shard` / :meth:`merge_shard_matches`) are public so the
asyncio server can run the fan-out concurrently.

All answers are plain JSON data.
"""

from __future__ import annotations

import threading
import time
import zlib
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, DataError
from ..obs import get_logger, inc, observe, span, timed
from .artifact import ServedModel
from .artifact_v2 import MappedModel, _row

__all__ = ["ModelQueryEngine"]

#: Query operations exposed through :meth:`ModelQueryEngine.batch`.
_BATCH_OPS = ("model_info", "topic", "children", "top_phrases",
              "search_phrases", "entity_roles")

_SEARCH_MODES = ("prefix", "substring")

logger = get_logger("serve.engine")


def _shard_of(phrase: str, shards: int) -> int:
    """Stable shard assignment (CRC32, identical in every process)."""
    return zlib.crc32(phrase.encode("utf-8")) % shards


class _DictBackend:
    """Heavy-data access over the v1 JSON payload (walk-once indexes)."""

    def __init__(self, model: ServedModel) -> None:
        self._records: Dict[str, Dict[str, Any]] = {}
        self._meta: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        phrase_topics: Dict[str, List[Tuple[str, float]]] = {}

        def walk(record: Dict[str, Any], parent: Optional[str]) -> None:
            notation = record["notation"]
            self._records[notation] = record
            self._meta[notation] = {
                "path": record["path"],
                "rho": record["rho"],
                "parent": parent,
                "children": [child["notation"]
                             for child in record["children"]],
            }
            for phrase, score in record["phrases"]:
                phrase_topics.setdefault(phrase, []).append(
                    (notation, score))
            for child in record["children"]:
                walk(child, notation)

        walk(model.model["hierarchy"], None)
        for entries in phrase_topics.values():
            entries.sort(key=lambda pair: (-pair[1], pair[0]))
        self._phrase_topics = phrase_topics
        self.phrase_list = sorted(phrase_topics)
        self._entity_roles = model.entity_roles

    def meta(self, notation: str) -> Optional[Dict[str, Any]]:
        return self._meta.get(notation)

    def phrases(self, notation: str) -> List[List[Any]]:
        return self._records[notation]["phrases"]

    def top_terms(self, notation: str) -> List[Tuple[str, float]]:
        terms = self._records[notation]["phi"].get("term", {})
        return sorted(terms.items(), key=lambda kv: (-kv[1], kv[0]))

    def entity_ranks(self, notation: str) -> Dict[str, List[List[Any]]]:
        return self._records[notation]["entity_ranks"]

    def label(self, notation: str) -> str:
        record = self._records[notation]
        if record["phrases"]:
            return record["phrases"][0][0]
        top = self.top_terms(notation)
        return top[0][0] if top else ""

    def phrase_topics(self, phrase: str) -> List[List[Any]]:
        return [[notation, score]
                for notation, score in self._phrase_topics[phrase]]

    def best_phrase_score(self, phrase: str) -> float:
        return self._phrase_topics[phrase][0][1]

    def role_types(self) -> List[str]:
        return sorted(self._entity_roles)

    def has_role_type(self, entity_type: str) -> bool:
        return entity_type in self._entity_roles

    def num_entities(self, entity_type: str) -> int:
        return len(self._entity_roles[entity_type])

    def frequencies(self, entity_type: str,
                    name: str) -> Optional[Dict[str, float]]:
        return self._entity_roles[entity_type].get(name)


class _MappedBackend:
    """Heavy-data access over a memory-mapped v2 artifact.

    Construction reads only the header string tables (already parsed at
    load); every numeric value is materialized lazily, per query, from
    the mapped sections — so building an engine never faults in the
    topic-word matrices.
    """

    def __init__(self, model: MappedModel) -> None:
        self._model = model
        strings = model.strings
        self._topics = strings["topics"]
        self._index = {meta["notation"]: i
                       for i, meta in enumerate(self._topics)}
        self.phrase_list: List[str] = strings["phrases"]
        self._entities: Dict[str, List[str]] = strings["entities"]
        self._role_keys: List[str] = strings["role_keys"]
        self._phi_names: Dict[str, List[str]] = strings.get("phi_names", {})
        self._rank_names: Dict[str, List[str]] = strings.get(
            "rank_names", {})

    def meta(self, notation: str) -> Optional[Dict[str, Any]]:
        index = self._index.get(notation)
        if index is None:
            return None
        meta = self._topics[index]
        return {
            "path": meta["path"],
            "rho": meta["rho"],
            "parent": (None if meta["parent"] is None
                       else self._topics[meta["parent"]]["notation"]),
            "children": [self._topics[c]["notation"]
                         for c in meta["children"]],
        }

    def phrases(self, notation: str) -> List[List[Any]]:
        ids, scores = _row(self._model, "phrases", self._index[notation],
                           "scores")
        table = self.phrase_list
        return [[table[int(i)], float(s)] for i, s in zip(ids, scores)]

    def top_terms(self, notation: str) -> List[Tuple[str, float]]:
        meta = self._topics[self._index[notation]]
        if "term" not in meta["phi_types"]:
            return []
        names = self._phi_names["term"]
        ids, values = _row(self._model, "phi.term", self._index[notation])
        terms = [(names[int(i)], float(v)) for i, v in zip(ids, values)]
        terms.sort(key=lambda kv: (-kv[1], kv[0]))
        return terms

    def entity_ranks(self, notation: str) -> Dict[str, List[List[Any]]]:
        index = self._index[notation]
        meta = self._topics[index]
        ranks: Dict[str, List[List[Any]]] = {}
        for etype in meta["rank_types"]:
            names = self._rank_names[etype]
            ids, scores = _row(self._model, f"entity_ranks.{etype}",
                               index, "scores")
            ranks[etype] = [[names[int(i)], float(s)]
                            for i, s in zip(ids, scores)]
        return ranks

    def label(self, notation: str) -> str:
        phrases = self.phrases(notation)
        if phrases:
            return phrases[0][0]
        top = self.top_terms(notation)
        return top[0][0] if top else ""

    def _phrase_index(self, phrase: str) -> int:
        index = bisect_left(self.phrase_list, phrase)
        if index >= len(self.phrase_list) \
                or self.phrase_list[index] != phrase:
            raise DataError(f"no phrase {phrase!r} in model")
        return index

    def phrase_topics(self, phrase: str) -> List[List[Any]]:
        ids, scores = _row(self._model, "inverted",
                           self._phrase_index(phrase), "scores")
        return [[self._topics[int(i)]["notation"], float(s)]
                for i, s in zip(ids, scores)]

    def best_phrase_score(self, phrase: str) -> float:
        scores = _row(self._model, "inverted",
                      self._phrase_index(phrase), "scores")[1]
        return float(scores[0])

    def role_types(self) -> List[str]:
        return sorted(self._entities)

    def has_role_type(self, entity_type: str) -> bool:
        return entity_type in self._entities

    def num_entities(self, entity_type: str) -> int:
        return len(self._entities[entity_type])

    def frequencies(self, entity_type: str,
                    name: str) -> Optional[Dict[str, float]]:
        names = self._entities[entity_type]
        index = bisect_left(names, name)
        if index >= len(names) or names[index] != name:
            return None
        ids, values = _row(self._model, f"roles.{entity_type}", index)
        table = self._role_keys
        return {table[int(i)]: float(v) for i, v in zip(ids, values)}


class ModelQueryEngine:
    """Cached queries over one served model.

    Args:
        model: the artifact to serve — a :class:`ServedModel` (v1 /
            in-memory) or a :class:`~repro.serve.artifact_v2.MappedModel`
            (v2, zero-copy).
        cache_size: LRU result-cache capacity (0 disables caching).
        phrase_shards: number of hash shards for the phrase index
            (1 = unsharded; answers are identical for every value).
    """

    def __init__(self, model, cache_size: int = 1024,
                 phrase_shards: int = 1) -> None:
        if cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if phrase_shards < 1:
            raise ConfigurationError("phrase_shards must be >= 1")
        self.model = model
        self._cache_capacity = cache_size
        self._cache: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        with timed("serve.index_build"):
            if isinstance(model, MappedModel):
                self._backend = _MappedBackend(model)
            elif isinstance(model, ServedModel):
                self._backend = _DictBackend(model)
            else:
                raise ConfigurationError(
                    f"model must be a ServedModel or MappedModel, "
                    f"got {type(model).__name__}")
            self._build_topic_maps()
            self._build_shards(phrase_shards)

    @classmethod
    def from_result(cls, result, config: Optional[Dict[str, Any]] = None,
                    cache_size: int = 1024,
                    phrase_shards: int = 1) -> "ModelQueryEngine":
        """An engine over a fitted result, without touching the disk."""
        return cls(ServedModel.from_result(result, config=config),
                   cache_size=cache_size, phrase_shards=phrase_shards)

    # -------------------------------------------------------------- indexes
    def _build_topic_maps(self) -> None:
        """Notation -> light metadata (path/rho/parent/children)."""
        backend = self._backend
        if isinstance(backend, _DictBackend):
            self._meta = dict(backend._meta)
        else:
            self._meta = {}
            for topic_meta in backend._topics:
                notation = topic_meta["notation"]
                meta = backend.meta(notation)
                assert meta is not None
                self._meta[notation] = meta

    def _build_shards(self, phrase_shards: int) -> None:
        phrase_list = self._backend.phrase_list
        self.num_shards = phrase_shards
        if phrase_shards == 1:
            self._shards = [phrase_list]
        else:
            shards: List[List[str]] = [[] for _ in range(phrase_shards)]
            for phrase in phrase_list:  # sorted input -> sorted shards
                shards[_shard_of(phrase, phrase_shards)].append(phrase)
            self._shards = shards

    # -------------------------------------------------------------- caching
    def cache_get(self, key: Tuple) -> Tuple[bool, Any]:
        """``(True, value)`` on a cache hit for ``key``, else
        ``(False, None)`` — counting the hit, never the miss (the miss
        is counted when the computed value is stored).

        Public so an async frontend can wrap its own fan-out in the
        same cache: peek with ``cache_get``, compute concurrently,
        store with :meth:`cache_put`.
        """
        if self._cache_capacity == 0:
            return False, None
        with self._cache_lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self._hits += 1
                inc("serve.cache.hits")
                return True, self._cache[key]
        return False, None

    def cache_put(self, key: Tuple, value: Any) -> Any:
        """Store a freshly computed ``value`` (counts the miss)."""
        if self._cache_capacity == 0:
            return value
        with self._cache_lock:
            self._misses += 1
            inc("serve.cache.misses")
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return value

    def _cached(self, key: Tuple, compute) -> Any:
        hit, value = self.cache_get(key)
        if hit:
            return value
        return self.cache_put(key, compute())

    def cache_info(self) -> Dict[str, int]:
        """Hit / miss / occupancy counters of the LRU result cache."""
        with self._cache_lock:
            return {"hits": self._hits, "misses": self._misses,
                    "size": len(self._cache),
                    "capacity": self._cache_capacity}

    @property
    def artifact_format(self) -> str:
        """``"v2"`` over a memory-mapped artifact, else ``"v1"``."""
        return "v2" if isinstance(self.model, MappedModel) else "v1"

    def close(self) -> None:
        """Release the model's resources (unmap a v2 artifact).

        Idempotent; called by the servers once a hot-swapped-out engine
        has drained its last in-flight request.
        """
        close = getattr(self.model, "close", None)
        if callable(close):
            close()

    # -------------------------------------------------------------- queries
    def _meta_of(self, topic_id: str) -> Dict[str, Any]:
        meta = self._meta.get(topic_id)
        if meta is None:
            raise DataError(f"no topic with id {topic_id!r}")
        return meta

    def model_info(self) -> Dict[str, Any]:
        """Manifest plus provenance and tree-shape statistics."""
        return self._cached(("model_info",), self._compute_model_info)

    def _compute_model_info(self) -> Dict[str, Any]:
        depths = [len(m["path"]) for m in self._meta.values()]
        backend = self._backend
        manifest = self.model.manifest
        return {
            "manifest": manifest,
            "repro_version": manifest.get("repro_version"),
            "artifact_format": self.artifact_format,
            "config_fingerprint": manifest.get("config"),
            "model_version": int(manifest.get("model_version", 0)),
            "stats": {
                "num_topics": len(self._meta),
                "height": max(depths) if depths else 0,
                "width": max((len(m["children"])
                              for m in self._meta.values()), default=0),
                "num_phrases": len(backend.phrase_list),
                "entity_types": backend.role_types(),
                "num_entities": {etype: backend.num_entities(etype)
                                 for etype in backend.role_types()},
            },
        }

    def topic(self, topic_id: str, max_phrases: int = 10,
              max_entities: int = 5, max_terms: int = 10) -> Dict[str, Any]:
        """Full detail of one topic node."""
        key = ("topic", topic_id, max_phrases, max_entities, max_terms)
        return self._cached(key, lambda: self._compute_topic(
            topic_id, max_phrases, max_entities, max_terms))

    def _compute_topic(self, topic_id: str, max_phrases: int,
                       max_entities: int, max_terms: int) -> Dict[str, Any]:
        meta = self._meta_of(topic_id)
        phrases = self._backend.phrases(topic_id)
        top_terms = self._backend.top_terms(topic_id)
        return {
            "topic": topic_id,
            "level": len(meta["path"]),
            "rho": meta["rho"],
            "parent": meta["parent"],
            "children": meta["children"],
            "phrases": phrases[:max(max_phrases, 0)],
            "num_phrases": len(phrases),
            "top_terms": [[name, p] for name, p
                          in top_terms[:max(max_terms, 0)]],
            "entity_ranks": {
                etype: ranks[:max(max_entities, 0)]
                for etype, ranks
                in self._backend.entity_ranks(topic_id).items()},
        }

    def children(self, topic_id: str) -> Dict[str, Any]:
        """One-line summaries of a topic's direct subtopics."""
        return self._cached(("children", topic_id),
                            lambda: self._compute_children(topic_id))

    def _compute_children(self, topic_id: str) -> Dict[str, Any]:
        meta = self._meta_of(topic_id)
        summaries = []
        for child in meta["children"]:
            summaries.append({"topic": child,
                              "rho": self._meta[child]["rho"],
                              "label": self._backend.label(child)})
        return {"topic": topic_id, "children": summaries}

    def top_phrases(self, topic_id: str, k: int = 10) -> Dict[str, Any]:
        """The ``k`` best ranked phrases of one topic."""
        return self._cached(("top_phrases", topic_id, k),
                            lambda: self._compute_top_phrases(topic_id, k))

    def _compute_top_phrases(self, topic_id: str, k: int) -> Dict[str, Any]:
        self._meta_of(topic_id)
        return {"topic": topic_id,
                "phrases": self._backend.phrases(topic_id)[:max(k, 0)]}

    # --------------------------------------------------------------- search
    def search_phrases(self, query: str, mode: str = "prefix",
                       limit: int = 10) -> Dict[str, Any]:
        """Phrases matching ``query``, each with its ranked topics.

        ``mode="prefix"`` binary-searches the sorted phrase list(s);
        ``mode="substring"`` scans.  With ``phrase_shards > 1`` the
        search fans out across the hash shards and merges — matches are
        ordered by their best topic score, then alphabetically, exactly
        as in the unsharded case.
        """
        if mode not in _SEARCH_MODES:
            raise ConfigurationError(
                f"unsupported search mode {mode!r} (one of {_SEARCH_MODES})")
        key = ("search_phrases", query, mode, limit)
        return self._cached(key, lambda: self._compute_search(
            query, mode, limit))

    def _compute_search(self, query: str, mode: str,
                        limit: int) -> Dict[str, Any]:
        match_lists = [self.search_shard(index, query, mode)
                       for index in range(self.num_shards)]
        return self.merge_shard_matches(match_lists, query, mode, limit)

    def search_shard(self, shard: int, query: str,
                     mode: str) -> List[str]:
        """Matching phrases from one hash shard (span- and metric-timed).

        Public so an async front can run the per-shard scans
        concurrently; ``merge_shard_matches`` folds the results back
        into the canonical answer.
        """
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} out of range (engine has "
                f"{self.num_shards})")
        start_s = time.perf_counter()
        with span("serve.search.shard", shard=shard, mode=mode):
            phrases = self._shards[shard]
            if mode == "prefix":
                start = bisect_left(phrases, query)
                matches = []
                for phrase in phrases[start:]:
                    if not phrase.startswith(query):
                        break
                    matches.append(phrase)
            else:
                matches = [p for p in phrases if query in p]
        observe(f"serve.search.shard.{shard}.latency",
                time.perf_counter() - start_s)
        inc(f"serve.search.shard.{shard}.queries")
        return matches

    def merge_shard_matches(self, match_lists: List[List[str]],
                            query: str, mode: str,
                            limit: int) -> Dict[str, Any]:
        """Fold per-shard match lists into the canonical search answer."""
        limit = max(limit, 0)
        matches = [phrase for shard_matches in match_lists
                   for phrase in shard_matches]
        matches.sort(
            key=lambda p: (-self._backend.best_phrase_score(p), p))
        return {
            "query": query,
            "mode": mode,
            "num_matches": len(matches),
            "matches": [{"phrase": phrase,
                         "topics": self._backend.phrase_topics(phrase)}
                        for phrase in matches[:limit]],
        }

    # -------------------------------------------------------------- entities
    def entity_roles(self, name: str, entity_type: Optional[str] = None,
                     topic: str = "o") -> Dict[str, Any]:
        """An entity's topical roles: frequencies plus the normalized
        distribution over ``topic``'s children (Eq. 5.3–5.6 read path).
        """
        key = ("entity_roles", name, entity_type, topic)
        return self._cached(key, lambda: self._compute_entity_roles(
            name, entity_type, topic))

    def _compute_entity_roles(self, name: str, entity_type: Optional[str],
                              topic: str) -> Dict[str, Any]:
        meta = self._meta_of(topic)
        backend = self._backend
        if entity_type is not None:
            if not backend.has_role_type(entity_type):
                raise DataError(f"no entity type {entity_type!r} in model")
            types = [entity_type]
        else:
            types = backend.role_types()
        roles = {}
        for etype in types:
            frequencies = backend.frequencies(etype, name)
            if frequencies is None:
                continue
            shares = {child: frequencies.get(child, 0.0)
                      for child in meta["children"]}
            total = sum(shares.values())
            distribution = ({c: v / total for c, v in shares.items()}
                            if total > 0 else {c: 0.0 for c in shares})
            roles[etype] = {
                "total": frequencies.get("o", 0.0),
                "frequencies": frequencies,
                "distribution": distribution,
            }
        if not roles:
            raise DataError(f"no entity named {name!r} in model"
                            + (f" under type {entity_type!r}"
                               if entity_type else ""))
        return {"entity": name, "topic": topic, "roles": roles}

    # ---------------------------------------------------------------- batch
    def batch_op(self, request: Any) -> Dict[str, Any]:
        """Execute one batch entry, never letting its failure escape.

        Every malformed entry — a non-object request, an unknown
        ``op``, a non-object ``args`` — and every per-op exception maps
        to an in-band error record, so one bad entry can never turn the
        whole batch into a 500.
        """
        if not isinstance(request, dict):
            return {"ok": False, "status": 400,
                    "error": f"batch entry must be an object, got: "
                             f"{request!r}"}
        op = request.get("op")
        if op not in _BATCH_OPS:
            return {"ok": False, "status": 400,
                    "error": f"unsupported batch op: {op!r}"}
        args = request.get("args")
        if args is None:
            args = {}
        if not isinstance(args, dict) \
                or not all(isinstance(key, str) for key in args):
            return {"ok": False, "status": 400,
                    "error": f"batch op {op!r} args must be an object "
                             f"with string keys, got: {args!r}"}
        try:
            result = getattr(self, op)(**args)
        except DataError as exc:
            return {"ok": False, "status": 404, "error": str(exc)}
        except (ConfigurationError, TypeError, ValueError) as exc:
            return {"ok": False, "status": 400, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - in-band per-op error
            logger.error("batch op %r failed unexpectedly: %r", op, exc)
            return {"ok": False, "status": 500,
                    "error": f"internal error in batch op {op!r}: "
                             f"{exc!r}"}
        return {"ok": True, "result": result}

    def batch(self, requests: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Execute many queries in one call.

        Each request is ``{"op": <name>, "args": {...}}``; per-request
        failures are reported in-band, in order, so one bad entry keeps
        neither valid results nor their ordering from the client.
        """
        if not isinstance(requests, list):
            raise ConfigurationError("batch payload must be an array")
        return {"results": [self.batch_op(request)
                            for request in requests]}
