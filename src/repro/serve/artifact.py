"""Versioned model artifacts: the ``repro.serve/model/v1`` format.

A fitted :class:`~repro.core.MiningResult` dies with the process unless
it is persisted.  This module defines the read-path artifact: one JSON
document, written atomically (:mod:`repro.resilience.atomic`), holding
everything the query engine needs to answer the paper's end-user
queries — the topic tree with per-node ranking distributions
(Chapter 3), ranked topical phrases (Chapter 4), and entity topical
roles (Chapter 5) — without the corpus, the networks, or a re-run of EM.

Layout::

    {"schema": "repro.serve/model/v1",
     "manifest": {"schema": ..., "created_unix": ..., "repro_version": ...,
                  "config": {...},            # miner config fingerprint
                  "vocab_hash": "sha256:...", # of the stored vocabulary
                  "payload_crc32": ...,       # of the canonical model JSON
                  "vocab_size": V, "num_documents": N, "num_topics": T,
                  "entity_types": [...]},
     "model": {"vocabulary": [...],
               "hierarchy": {<topic record>},   # recursive
               "entity_roles": {etype: {entity: {notation: freq}}}}}

Every load re-derives ``payload_crc32`` and ``vocab_hash`` and compares
them against the manifest, so a truncated file, a bit-flipped payload,
or a manifest grafted onto the wrong model is rejected with a typed
:class:`~repro.errors.DataError` instead of serving garbage.

The canonical JSON form (sorted keys, no whitespace) makes the CRC
stable across save/load cycles: Python's shortest-repr float encoding
round-trips exactly, so re-encoding a parsed payload reproduces the
bytes that were hashed at save time.  Canonical encoding is strict
(``allow_nan=False``): a model containing a NaN or infinite weight is
rejected with a typed :class:`~repro.errors.DataError` at *save* time —
the non-standard ``NaN``/``Infinity`` tokens Python would otherwise
emit cannot be re-parsed by a conforming JSON parser, so such an
artifact's CRC could never be re-verified.

``save_model`` / ``load_model`` additionally speak the
``repro.serve/model/v2`` zero-copy binary format (``format="v2"``; see
:mod:`repro.serve.artifact_v2`): saves dispatch on the ``format``
argument and loads sniff the file, so a v2 artifact loads through the
same entry point with full v1 read compatibility.
"""

from __future__ import annotations

import hashlib
import json
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..contracts import MODEL_V1
from ..errors import ConfigurationError, DataError
from ..hierarchy import Topic, TopicalHierarchy
from ..obs import get_logger, timed
from ..resilience import atomic_write_json, config_fingerprint

__all__ = [
    "ARTIFACT_FORMATS",
    "MODEL_SCHEMA",
    "ServedModel",
    "build_document_from_parts",
    "build_model_document",
    "load_model",
    "migrate_model",
    "save_model",
    "save_model_document",
    "vocabulary_hash",
]

MODEL_SCHEMA = MODEL_V1

#: On-disk formats ``save_model`` / ``repro export-model`` can emit.
ARTIFACT_FORMATS = ("v1", "v2")

#: Manifest fields whose absence makes an artifact unusable.
_REQUIRED_MANIFEST = ("schema", "created_unix", "repro_version", "config",
                      "vocab_hash", "payload_crc32", "num_topics")

logger = get_logger("serve.artifact")


def vocabulary_hash(words: Iterable[str]) -> str:
    """Order-sensitive SHA-256 fingerprint of a vocabulary.

    Word ids are positional, so two vocabularies hash equal iff they map
    every id to the same word — exactly the condition under which phrase
    strings and phi names in an artifact stay meaningful.
    """
    digest = hashlib.sha256()
    for word in words:
        digest.update(word.encode("utf-8"))
        digest.update(b"\x00")
    return "sha256:" + digest.hexdigest()


def _canonical_payload(model: Dict[str, Any]) -> bytes:
    """The byte form of the model object that ``payload_crc32`` covers.

    Strict floats only: Python's default encoder would emit the
    non-standard ``NaN``/``Infinity`` tokens for non-finite weights,
    producing an artifact no conforming JSON parser can re-verify — so
    a model carrying one is rejected with a typed error instead.
    """
    try:
        return json.dumps(model, sort_keys=True, allow_nan=False,
                          separators=(",", ":")).encode("utf-8")
    except ValueError as exc:
        raise DataError(
            f"model payload contains a non-finite float (NaN/Infinity), "
            f"which has no canonical JSON form and would make the "
            f"artifact CRC unverifiable: {exc}") from exc


def _topic_record(topic: Topic) -> Dict[str, Any]:
    """One topic node as plain data (the subnetwork handle is dropped)."""
    return {
        "path": list(topic.path),
        "notation": topic.notation,
        "rho": float(topic.rho),
        "phi": {node_type: {name: float(p) for name, p in dist.items()}
                for node_type, dist in topic.phi.items()},
        "phrases": [[phrase, float(score)] for phrase, score in topic.phrases],
        "entity_ranks": {etype: [[name, float(score)] for name, score in ranks]
                         for etype, ranks in topic.entity_ranks.items()},
        "children": [_topic_record(child) for child in topic.children],
    }


def _topic_from_record(record: Dict[str, Any]) -> Topic:
    topic = Topic(
        path=tuple(record["path"]),
        rho=float(record["rho"]),
        phi={node_type: dict(dist)
             for node_type, dist in record["phi"].items()},
        phrases=[(phrase, score) for phrase, score in record["phrases"]],
        entity_ranks={etype: [(name, score) for name, score in ranks]
                      for etype, ranks in record["entity_ranks"].items()})
    for child_record in record["children"]:
        child = _topic_from_record(child_record)
        topic.children.append(child)
        child.path = tuple(child_record["path"])
    return topic


def build_document_from_parts(
        vocabulary: List[str],
        hierarchy: TopicalHierarchy,
        entity_roles: Dict[str, Dict[str, Dict[str, float]]],
        num_documents: int,
        config: Optional[Dict[str, Any]] = None,
        extra_manifest: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a model document from its already-computed pieces.

    The incremental path (:mod:`repro.stream`) produces a hierarchy and
    role table without ever holding a :class:`~repro.core.MiningResult`,
    so the document builder has to accept the parts directly.
    ``extra_manifest`` entries (e.g. a ``model_version`` counter) are
    merged into the manifest; they may not shadow the required fields.

    The returned document is fully JSON-normalized (every tuple already a
    list), so building a query engine from it gives byte-identical
    answers to one built from the document read back off disk.
    """
    from .. import get_version

    extra = dict(extra_manifest or {})
    shadowed = set(extra) & set(_REQUIRED_MANIFEST)
    if shadowed:
        raise ConfigurationError(
            f"extra_manifest may not override required manifest "
            f"fields: {sorted(shadowed)}")
    model = {
        "vocabulary": list(vocabulary),
        "hierarchy": _topic_record(hierarchy.root),
        "entity_roles": {
            etype: {name: dict(frequencies)
                    for name, frequencies in roles.items()}
            for etype, roles in entity_roles.items()
        },
    }
    # Round-trip through the canonical encoding so the in-memory document
    # is indistinguishable from one parsed back from disk.
    model = json.loads(_canonical_payload(model).decode("utf-8"))
    manifest = {
        "schema": MODEL_SCHEMA,
        "created_unix": time.time(),
        "repro_version": get_version(),
        "config": config_fingerprint(config or {}),
        "vocab_hash": vocabulary_hash(model["vocabulary"]),
        "payload_crc32": zlib.crc32(_canonical_payload(model)) & 0xFFFFFFFF,
        "vocab_size": len(model["vocabulary"]),
        "num_documents": num_documents,
        "num_topics": hierarchy.num_topics,
        "entity_types": sorted(model["entity_roles"]),
    }
    manifest.update(extra)
    return {"schema": MODEL_SCHEMA, "manifest": manifest, "model": model}


def build_model_document(result, config: Optional[Dict[str, Any]] = None,
                         ) -> Dict[str, Any]:
    """Serialize a fitted :class:`~repro.core.MiningResult` to an artifact.

    Args:
        result: the fitted mining result to persist.
        config: plain-data fingerprint of the configuration that produced
            it (stored in the manifest for traceability).

    Thin wrapper over :func:`build_document_from_parts`.
    """
    corpus = result.corpus
    entity_roles = {
        etype: {name: dict(frequencies)
                for name, frequencies
                in result.roles.entity_topic_frequencies(etype).items()}
        for etype in corpus.entity_types()
    }
    return build_document_from_parts(
        vocabulary=list(corpus.vocabulary),
        hierarchy=result.hierarchy,
        entity_roles=entity_roles,
        num_documents=len(corpus),
        config=config)


@dataclass
class ServedModel:
    """A loaded (or freshly built) model artifact, ready to query.

    Attributes:
        manifest: the artifact manifest (schema, fingerprints, metadata).
        model: the JSON-normalized model payload.
        path: where the artifact was loaded from, when applicable.
    """

    manifest: Dict[str, Any]
    model: Dict[str, Any]
    path: Optional[str] = None
    _hierarchy: Optional[TopicalHierarchy] = field(
        default=None, repr=False, compare=False)

    @property
    def vocabulary(self) -> List[str]:
        return self.model["vocabulary"]

    @property
    def entity_roles(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return self.model["entity_roles"]

    def hierarchy(self) -> TopicalHierarchy:
        """The topic tree rebuilt as first-class objects (cached)."""
        if self._hierarchy is None:
            self._hierarchy = TopicalHierarchy(
                root=_topic_from_record(self.model["hierarchy"]))
        return self._hierarchy

    @classmethod
    def from_result(cls, result,
                    config: Optional[Dict[str, Any]] = None) -> "ServedModel":
        """Wrap a fitted result without touching the filesystem."""
        document = build_model_document(result, config=config)
        return cls(manifest=document["manifest"], model=document["model"])


def save_model_document(document: Dict[str, Any], path: str,
                        format: str = "v1") -> Dict[str, Any]:
    """Write an already-built model document in the requested format.

    ``document`` is the object :func:`build_model_document` returns.
    ``format="v1"`` writes the canonical JSON artifact; ``format="v2"``
    writes the zero-copy binary artifact
    (:mod:`repro.serve.artifact_v2`).  Both writes are atomic (temp
    file + rename): a crash mid-export leaves any previous artifact at
    ``path`` intact.  Returns the manifest as written.
    """
    if format not in ARTIFACT_FORMATS:
        raise ConfigurationError(
            f"unsupported artifact format {format!r} "
            f"(one of {ARTIFACT_FORMATS})")
    if format == "v2":
        from .artifact_v2 import save_model_document_v2

        return save_model_document_v2(document, path)
    atomic_write_json(path, document, indent=2, trailing_newline=True)
    return document["manifest"]


def save_model(result, path: str, config: Optional[Dict[str, Any]] = None,
               format: str = "v1") -> Dict[str, Any]:
    """Persist a fitted result as a versioned model artifact.

    ``format`` selects the on-disk representation: ``"v1"`` (canonical
    JSON, the default) or ``"v2"`` (memory-mappable packed binary
    sections behind the same manifest/CRC contract).  The write is
    atomic either way.  Returns the manifest.
    """
    with timed("serve.export"):
        document = build_model_document(result, config=config)
        manifest = save_model_document(document, path, format=format)
    logger.info("exported model artifact (%d topics, format %s) -> %s",
                manifest["num_topics"], format, path)
    return manifest


def migrate_model(source: str, destination: str,
                  format: str = "v2") -> Dict[str, Any]:
    """Re-encode an existing artifact in another format, losslessly.

    The source format is sniffed (v1 JSON or v2 binary); the full model
    document is materialized and re-written as ``format``.  The
    manifest's ``payload_crc32`` / ``vocab_hash`` fingerprints carry
    over unchanged — they cover the canonical v1 payload in both
    formats — so the migration is verifiable: loading the destination
    re-checks the same checksums the source was saved under, and a v2
    write additionally self-checks that its sections reconstruct the
    payload bit for bit.  Returns the destination manifest.
    """
    from .artifact_v2 import MappedModel, model_document_from_mapped

    with timed("serve.migrate"):
        model = load_model(source)
        if isinstance(model, MappedModel):
            try:
                document = model_document_from_mapped(model)
            finally:
                model.close()
        else:
            document = {"schema": MODEL_SCHEMA, "manifest": model.manifest,
                        "model": model.model}
        manifest = save_model_document(document, destination,
                                       format=format)
    logger.info("migrated model artifact %s -> %s (format %s)", source,
                destination, format)
    return manifest


def _validate_manifest(manifest: Any, path: str) -> Dict[str, Any]:
    if not isinstance(manifest, dict):
        raise DataError(f"{path}: model manifest must be an object")
    for key in _REQUIRED_MANIFEST:
        if key not in manifest:
            raise DataError(f"{path}: model manifest missing field {key!r}")
    if manifest["schema"] != MODEL_SCHEMA:
        raise DataError(f"{path}: unsupported model schema "
                        f"{manifest['schema']!r} (expected {MODEL_SCHEMA!r})")
    return manifest


def load_model(path: str, verify_sections: bool = True):
    """Read and verify a model artifact written by :func:`save_model`.

    The format is sniffed from the file: a ``repro.serve/model/v2``
    binary artifact is memory-mapped (returning a
    :class:`~repro.serve.artifact_v2.MappedModel`; ``verify_sections``
    controls its CRC sweep), anything else is parsed as the v1 JSON
    artifact (returning a :class:`ServedModel`).  Both answer queries
    identically through :class:`~repro.serve.ModelQueryEngine`.

    Raises:
        DataError: when the file is not a model artifact, is truncated or
            otherwise not valid JSON, carries an unsupported schema
            version, fails its payload checksum, or its manifest
            vocabulary hash does not match the stored vocabulary.
        OSError: when the file cannot be read at all.
    """
    from .artifact_v2 import _MAGIC, load_model_v2

    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
    if magic == _MAGIC:
        return load_model_v2(path, verify_sections=verify_sections)
    with timed("serve.model_load"):
        with open(path, "rb") as handle:
            blob = handle.read()
        try:
            document = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DataError(f"{path} is not a valid model artifact "
                            f"(truncated or not JSON): {exc}") from exc
        if not isinstance(document, dict) \
                or document.get("schema") != MODEL_SCHEMA:
            schema = document.get("schema") if isinstance(document, dict) \
                else None
            raise DataError(f"{path}: unsupported model schema {schema!r} "
                            f"(expected {MODEL_SCHEMA!r})")
        manifest = _validate_manifest(document.get("manifest"), path)
        model = document.get("model")
        if not isinstance(model, dict):
            raise DataError(f"{path}: model payload must be an object")
        for key in ("vocabulary", "hierarchy", "entity_roles"):
            if key not in model:
                raise DataError(f"{path}: model payload missing {key!r}")
        crc = zlib.crc32(_canonical_payload(model)) & 0xFFFFFFFF
        if crc != manifest["payload_crc32"]:
            raise DataError(f"{path} is corrupted (payload checksum "
                            f"mismatch: {crc} != "
                            f"{manifest['payload_crc32']})")
        vocab_hash = vocabulary_hash(model["vocabulary"])
        if vocab_hash != manifest["vocab_hash"]:
            raise DataError(f"{path}: vocabulary hash mismatch (manifest "
                            f"{manifest['vocab_hash']!r}, stored vocabulary "
                            f"hashes to {vocab_hash!r})")
    logger.info("loaded model artifact %s (%d topics, repro %s)", path,
                manifest["num_topics"], manifest["repro_version"])
    return ServedModel(manifest=manifest, model=model, path=path)
