"""Transport-independent request routing and per-server state.

Both serving frontends — the threaded :class:`~repro.serve.http.ModelServer`
and the asyncio :class:`~repro.serve.aio.ModelAsyncServer` — answer the
same endpoint contract (DESIGN §5.2).  This module holds everything that
contract needs that is not transport:

* :func:`route_request` — map ``(method, path, query)`` to an engine
  call and its JSON answer.  Raising the library's typed errors
  (:class:`~repro.errors.DataError` → 404,
  :class:`~repro.errors.ConfigurationError` → 400) is the caller's
  status mapping, exactly as before;
* :class:`RequestRejected` — a request refused at the transport
  boundary *before* routing (missing Content-Length → 411, oversized
  body → 413, malformed length → 400), carrying its typed JSON error
  payload;
* :func:`validate_content_length` / :func:`parse_json_body` — the body
  hardening both frontends share, so their limits cannot drift;
* :class:`ServerStateMixin` — request IDs, the per-server
  :class:`~repro.obs.MetricsRegistry`, the ``/metrics`` payloads (JSON
  and Prometheus views of one combined snapshot), and the **hot-swap
  machinery**: the live engine sits behind an :class:`EngineHandle`
  with an in-flight lease count, so :meth:`ServerStateMixin.swap_engine`
  can atomically point new requests at a new engine while requests
  already running drain on the old one — zero dropped requests — and
  the old engine is closed (unmapping a v2 artifact) only when its last
  lease is released.  ``POST /v1/admin/reload`` (and SIGHUP, in the
  frontends) triggers the swap through a configured reloader.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from ..errors import ConfigurationError, DataError
from ..obs import MetricsRegistry, get_logger, inc, observe, render_prometheus
from .engine import ModelQueryEngine

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "EngineHandle",
    "PrometheusText",
    "RequestRejected",
    "ServerStateMixin",
    "parse_json_body",
    "route_request",
    "validate_content_length",
]

logger = get_logger("serve.router")

#: Default cap on POST bodies (1 MiB).  A batch of thousands of ops fits
#: comfortably; a runaway or hostile body does not get buffered.
DEFAULT_MAX_BODY_BYTES = 1 << 20


class PrometheusText:
    """Marker wrapping a text-exposition body through the router."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


class RequestRejected(Exception):
    """A request refused at the transport boundary, pre-routing.

    Carries the HTTP ``status`` and the typed JSON error ``payload``
    (``code`` plus context fields) to send back.
    """

    def __init__(self, status: int, code: str, message: str,
                 **context: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload: Dict[str, Any] = {"error": message, "code": code}
        self.payload.update(context)


def validate_content_length(raw: Optional[str],
                            max_body_bytes: int) -> int:
    """The validated Content-Length of a POST, or a typed rejection.

    * absent header → 411 (``length_required``): chunked or unframed
      bodies are not accepted, so the limit below cannot be bypassed;
    * non-integer or non-positive → 400 (``bad_content_length``);
    * larger than ``max_body_bytes`` → 413 (``body_too_large``), before
      a single body byte is read.
    """
    if raw is None or raw == "":
        raise RequestRejected(
            411, "length_required",
            "POST requires a Content-Length header (chunked or unframed "
            "bodies are not accepted)")
    try:
        length = int(raw)
    except ValueError:
        raise RequestRejected(
            400, "bad_content_length",
            f"Content-Length is not an integer: {raw!r}") from None
    if length <= 0:
        raise RequestRejected(
            400, "bad_content_length",
            f"Content-Length must be positive, got {length}")
    if length > max_body_bytes:
        raise RequestRejected(
            413, "body_too_large",
            f"request body of {length} bytes exceeds the server limit "
            f"of {max_body_bytes} bytes",
            content_length=length, max_body_bytes=max_body_bytes)
    return length


def parse_json_body(body: bytes) -> Any:
    """Decode a request body as JSON (ConfigurationError → 400)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"request body is not valid JSON: {exc}") from exc


class EngineHandle:
    """One served engine plus its in-flight lease count.

    A request leases the handle for its whole lifetime (acquire on
    arrival, release after the answer is written).  A hot swap retires
    the handle; the engine is closed only when the handle is retired
    *and* its last lease is gone — so requests started before the swap
    drain on the engine they started with, and none are dropped.
    """

    __slots__ = ("engine", "_leases", "_retired", "_lock")

    def __init__(self, engine: ModelQueryEngine) -> None:
        self.engine = engine
        self._leases = 0
        self._retired = False
        self._lock = threading.Lock()

    @property
    def leases(self) -> int:
        with self._lock:
            return self._leases

    def acquire(self) -> "EngineHandle":
        with self._lock:
            self._leases += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._leases -= 1
            close_now = self._retired and self._leases == 0
        if close_now:
            self._close()

    def retire(self) -> None:
        """Mark swapped-out; close immediately if already drained."""
        with self._lock:
            self._retired = True
            close_now = self._leases == 0
        if close_now:
            self._close()

    def _close(self) -> None:
        try:
            self.engine.close()
        except Exception as exc:  # noqa: BLE001 - drain must not fail
            logger.error("closing swapped-out engine failed: %r", exc)


def _int_param(params: Dict[str, list], name: str, default: int) -> int:
    values = params.get(name)
    if not values or values[0] == "":
        return default
    try:
        return int(values[0])
    except ValueError:
        raise ConfigurationError(
            f"query parameter {name!r} must be an integer: "
            f"{values[0]!r}") from None


def route_request(server: "ServerStateMixin", method: str, path: str,
                  accept: str = "",
                  read_body: Optional[Callable[[], Any]] = None,
                  engine: Optional[ModelQueryEngine] = None,
                  ) -> Tuple[int, Any, str]:
    """Answer one request against ``server``'s engine.

    ``read_body`` lazily produces the parsed JSON body; it is only
    called for endpoints that take one (``POST /v1/batch``), so GET
    handling never touches the body stream.  ``engine`` is the leased
    engine the transport acquired for this request (defaults to the
    server's current one) — passing the lease keeps a request pinned to
    one engine even when a hot swap lands mid-request.  Returns
    ``(status, payload, endpoint)`` where ``payload`` is JSON data or a
    :class:`PrometheusText`; unknown endpoints and bad parameters raise
    the library's typed errors for the transport to map to 404 / 400.
    """
    if engine is None:
        engine = server.engine
    parsed = urlparse(path)
    parts = [unquote(part) for part in parsed.path.strip("/").split("/")
             if part != ""]
    # keep_blank_values: "?q=" is an explicit (match-all) query, not
    # a missing parameter.
    params = parse_qs(parsed.query, keep_blank_values=True)

    if parts == ["healthz"]:
        return 200, {"status": "ok",
                     "uptime_s": time.time() - server.started_unix,
                     "model_version":
                         int(engine.model.manifest.get("model_version", 0)),
                     "num_topics":
                         engine.model.manifest["num_topics"]}, "healthz"
    if parts == ["metrics"]:
        # Content negotiation: JSON stays the default; Prometheus
        # text exposition via ?format=prometheus or an Accept header
        # preferring text/plain over JSON.
        fmt = params.get("format", [None])[0]
        wants_text = fmt == "prometheus" or (
            fmt is None and "text/plain" in accept
            and "application/json" not in accept)
        if wants_text:
            return (200, PrometheusText(server.prometheus_payload()),
                    "metrics")
        return 200, server.metrics_payload(), "metrics"
    if len(parts) >= 1 and parts[0] == "v1":
        if method == "POST":
            if parts == ["v1", "batch"]:
                if read_body is None:
                    raise ConfigurationError("request body required")
                return 200, engine.batch(read_body()), "batch"
            if parts == ["v1", "admin", "reload"]:
                return 200, server.reload_engine(), "reload"
            raise DataError(f"no POST endpoint at {parsed.path!r}")
        if parts == ["v1", "model"]:
            return 200, engine.model_info(), "model"
        if len(parts) >= 3 and parts[1] == "topics":
            notation = "/".join(parts[2:])
            return 200, engine.topic(
                notation,
                max_phrases=_int_param(params, "phrases", 10),
                max_entities=_int_param(params, "entities", 5),
                max_terms=_int_param(params, "terms", 10)), "topics"
        if parts == ["v1", "search"]:
            query = params.get("q")
            if not query:
                raise ConfigurationError(
                    "search requires a 'q' query parameter")
            mode = params.get("mode", ["prefix"])[0]
            return 200, engine.search_phrases(
                query[0], mode=mode,
                limit=_int_param(params, "limit", 10)), "search"
        if len(parts) >= 3 and parts[1] == "entities":
            name = "/".join(parts[2:])
            entity_type = params.get("type", [None])[0]
            topic = params.get("topic", ["o"])[0]
            return 200, engine.entity_roles(
                name, entity_type=entity_type, topic=topic), "entities"
    raise DataError(f"no endpoint at {parsed.path!r}")


class ServerStateMixin:
    """Per-server request IDs, metrics registry, /metrics payloads, and
    the engine hot-swap machinery.

    Mixed into both frontends' server objects so the two expose the
    same operational surface from one implementation.
    """

    registry: MetricsRegistry
    started_unix: float

    def _init_server_state(self, engine: ModelQueryEngine) -> None:
        self._engine_handle = EngineHandle(engine)
        self._engine_swap_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._reloader: Optional[Callable[[], ModelQueryEngine]] = None
        self._swap_count = 0
        self.registry = MetricsRegistry()
        self.started_unix = time.time()
        self._request_serial = itertools.count(1)

    # ------------------------------------------------------------- hot swap
    @property
    def engine(self) -> ModelQueryEngine:
        """The engine new requests are routed to right now."""
        return self._engine_handle.engine

    def acquire_engine(self) -> EngineHandle:
        """Lease the current engine for one request's lifetime.

        The caller must :meth:`EngineHandle.release` the returned
        handle when the request is done; until then the engine stays
        open even if a swap retires it.
        """
        with self._engine_swap_lock:
            return self._engine_handle.acquire()

    def swap_engine(self, engine: ModelQueryEngine) -> ModelQueryEngine:
        """Atomically route new requests to ``engine``.

        The previous engine keeps answering its in-flight requests and
        is closed when the last of them releases its lease.  Returns
        the previous engine (still draining, possibly).
        """
        new_handle = EngineHandle(engine)
        with self._engine_swap_lock:
            old_handle = self._engine_handle
            self._engine_handle = new_handle
            self._swap_count += 1
        old_handle.retire()
        self.registry.inc("serve.engine.swaps")
        inc("serve.engine.swaps")
        logger.info(
            "engine swapped (swap #%d, model_version %s -> %s, %d "
            "request(s) draining on the old engine)", self._swap_count,
            old_handle.engine.model.manifest.get("model_version", 0),
            engine.model.manifest.get("model_version", 0),
            old_handle.leases)
        return old_handle.engine

    def set_reloader(self,
                     reloader: Callable[[], ModelQueryEngine]) -> None:
        """Install the zero-argument factory ``reload_engine`` calls."""
        self._reloader = reloader

    def reload_engine(self) -> Dict[str, Any]:
        """Rebuild the engine via the reloader and hot-swap to it.

        Serialized: concurrent reload requests queue up rather than
        racing their artifact reads.  Raises
        :class:`~repro.errors.ConfigurationError` (-> 400) when no
        reloader is configured — e.g. a server built around an
        in-memory result that has no artifact to re-read.
        """
        if self._reloader is None:
            raise ConfigurationError(
                "no reloader configured (serve the model from an "
                "artifact path to enable hot reload)")
        with self._reload_lock:
            engine = self._reloader()
            self.swap_engine(engine)
        manifest = engine.model.manifest
        return {
            "status": "reloaded",
            "swaps": self._swap_count,
            "model_version": int(manifest.get("model_version", 0)),
            "artifact_format": engine.artifact_format,
            "num_topics": manifest.get("num_topics"),
        }

    @property
    def swap_count(self) -> int:
        return self._swap_count

    # ------------------------------------------------------------- requests
    def next_request_id(self) -> str:
        """A process-unique request / trace ID (no RNG involved)."""
        return f"req-{os.getpid():x}-{next(self._request_serial):x}"

    def record_request(self, endpoint: str, status: int,
                       elapsed: float) -> None:
        self.registry.inc("serve.http.requests")
        self.registry.inc(f"serve.http.status.{status}")
        self.registry.observe("serve.http.latency", elapsed)
        self.registry.observe(f"serve.http.{endpoint}.latency", elapsed)
        # Mirror into the global registry for run reports (no-op unless
        # observability is configured).
        inc("serve.http.requests")
        inc(f"serve.http.status.{status}")
        observe("serve.http.latency", elapsed)

    def _combined_snapshot(self) -> Dict[str, Any]:
        """Server registry snapshot plus cache counters, one code path.

        Both ``/metrics`` formats are views of this snapshot, so the
        JSON and Prometheus answers always agree; timer entries carry
        p50/p90/p99 from the quantile sketches.
        """
        snapshot = self.registry.snapshot()
        cache = self.engine.cache_info()
        snapshot["counters"]["serve.cache.hits"] = float(cache["hits"])
        snapshot["counters"]["serve.cache.misses"] = float(cache["misses"])
        snapshot["gauges"]["serve.cache.size"] = float(cache["size"])
        snapshot["gauges"]["serve.cache.capacity"] = float(
            cache["capacity"])
        snapshot["gauges"]["serve.uptime_s"] = \
            time.time() - self.started_unix
        # Model provenance as metrics: the version gauge moves on every
        # hot swap, the swap counter counts them.
        snapshot["gauges"]["serve.model.version"] = float(
            self.engine.model.manifest.get("model_version", 0))
        snapshot["counters"].setdefault("serve.engine.swaps",
                                        float(self._swap_count))
        return snapshot

    def _model_payload(self) -> Dict[str, Any]:
        engine = self.engine
        manifest = engine.model.manifest
        return {
            "version": int(manifest.get("model_version", 0)),
            "artifact_format": engine.artifact_format,
            "repro_version": manifest.get("repro_version"),
            "config_fingerprint": manifest.get("config"),
            "swaps": self._swap_count,
        }

    def metrics_payload(self) -> Dict[str, Any]:
        return {
            "uptime_s": time.time() - self.started_unix,
            "server": self.registry.snapshot(),
            "combined": self._combined_snapshot(),
            "cache": self.engine.cache_info(),
            "model": self._model_payload(),
        }

    def prometheus_payload(self) -> str:
        """The combined snapshot in Prometheus 0.0.4 text exposition."""
        return render_prometheus(self._combined_snapshot())
