"""Zero-copy model artifacts: the ``repro.serve/model/v2`` format.

The v1 artifact (:mod:`repro.serve.artifact`) is one canonical JSON
document: loading it parses every float of every topic-word
distribution, phrase ranking, and entity role table into fresh Python
objects, per process.  For a large model served by N workers that is N
full parses and N private heap copies of the same numbers.

v2 keeps the manifest / CRC / fingerprint contract but moves the large
numeric payload into aligned, memory-mappable packed binary sections so
that

* cold load is ~O(mmap): only the JSON *header* (manifest, string
  tables, topic skeleton, section table) is parsed; the numeric
  sections are mapped, not read, and
* N server processes mapping the same artifact share one page-cache
  copy of the numbers instead of N heap copies.

Layout (all integers little-endian)::

    offset 0   magic           b"REPROMV2"            (8 bytes)
    offset 8   header_len      u64                    (8 bytes)
    offset 16  header_crc32    u32                    (4 bytes)
    offset 20  reserved        4 zero bytes
    offset 24  header JSON     header_len bytes (utf-8)
    ...        zero padding to the next 64-byte boundary
    ...        sections, each starting 64-byte aligned

The header is one JSON object::

    {"schema": "repro.serve/model/v2",
     "manifest": {... same fields as v1; schema names v2 ...},
     "strings": {"vocabulary": [...],
                 "phrases": [...],          # global sorted phrase list
                 "phi_names": {ntype: [...]},
                 "rank_names": {etype: [...]},
                 "role_keys": [...],
                 "entities": {etype: [...]},   # role-table entities
                 "topics": [{"notation", "path", "rho", "parent",
                             "children", "phi_types", "rank_types"}]},
     "sections": [{"name", "dtype", "count", "offset", "crc32"}, ...]}

Numeric sections are CSR-style ragged arrays over the topic list (or the
entity list, for role tables): an ``indptr`` span array plus parallel
``ids`` / value arrays whose ids index the string tables above.  The
phrase inverted index — for every phrase, its ``(topic, score)`` pairs
ranked best-first — is precomputed at save time and stored the same
way, so the query engine does not have to walk the hierarchy at load.

Integrity is layered exactly like v1: ``manifest.payload_crc32`` is
still the CRC32 of the *canonical v1 JSON payload* the sections encode
(which makes v1→v2→v1 migration verifiably lossless), ``vocab_hash``
still covers the vocabulary, the header carries its own CRC32, and
every section carries one, verified on load (pass
``verify_sections=False`` to skip the section sweep and keep cold load
strictly O(mmap); the header CRC and vocabulary hash are always
checked).  At save time the writer reconstructs the canonical payload
from its own sections and refuses to emit an artifact whose CRC does
not round-trip.
"""

from __future__ import annotations

import json
import mmap
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..contracts import MODEL_V2
from ..errors import DataError
from ..obs import get_logger, timed
from ..resilience import atomic_write_bytes

__all__ = [
    "MODEL_SCHEMA_V2",
    "MappedModel",
    "build_v2_blob",
    "load_model_v2",
    "model_document_from_mapped",
    "save_model_document_v2",
]

MODEL_SCHEMA_V2 = MODEL_V2

_MAGIC = b"REPROMV2"
_ALIGN = 64
#: Fixed-size preamble: magic, header length (u64), header crc32 (u32),
#: 4 reserved zero bytes.
_PREAMBLE = struct.Struct("<8sQI4x")

#: dtypes a conforming v2 artifact may use for its sections.
_SECTION_DTYPES = {"<i4", "<i8", "<f8"}

logger = get_logger("serve.artifact_v2")


def _canonical(obj: Any) -> bytes:
    """Canonical JSON bytes (sorted keys, compact, strict floats)."""
    try:
        return json.dumps(obj, sort_keys=True, allow_nan=False,
                          separators=(",", ":")).encode("utf-8")
    except ValueError as exc:
        raise DataError(
            f"model payload contains a non-finite float (NaN/Infinity), "
            f"which has no canonical JSON form: {exc}") from exc


# =====================================================================
# Writing
# =====================================================================

class _Ragged:
    """Accumulates one CSR-style ragged section triple."""

    def __init__(self) -> None:
        self.indptr: List[int] = [0]
        self.ids: List[int] = []
        self.values: List[float] = []

    def append_row(self, ids: Sequence[int],
                   values: Sequence[float]) -> None:
        self.ids.extend(ids)
        self.values.extend(values)
        self.indptr.append(len(self.ids))

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (np.asarray(self.indptr, dtype="<i8"),
                np.asarray(self.ids, dtype="<i4"),
                np.asarray(self.values, dtype="<f8"))


def _flatten_topics(hierarchy: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The topic records in depth-first preorder (the v1 walk order)."""
    ordered: List[Dict[str, Any]] = []

    def walk(record: Dict[str, Any]) -> None:
        ordered.append(record)
        for child in record["children"]:
            walk(child)

    walk(hierarchy)
    return ordered


def _name_table(names: Sequence[str]) -> Tuple[List[str], Dict[str, int]]:
    ordered = sorted(set(names))
    return ordered, {name: i for i, name in enumerate(ordered)}


def build_v2_blob(document: Dict[str, Any]) -> bytes:
    """Serialize a v1-style model document as a v2 binary artifact.

    ``document`` is the ``{"schema", "manifest", "model"}`` object
    :func:`repro.serve.artifact.build_model_document` produces (already
    JSON-normalized).  The returned bytes are the complete artifact.

    Raises:
        DataError: when the model payload cannot be represented (a
            non-finite float, or a payload whose canonical CRC does not
            survive the section round trip).
    """
    model = document["model"]
    manifest = dict(document["manifest"])
    manifest["schema"] = MODEL_SCHEMA_V2

    records = _flatten_topics(model["hierarchy"])
    notation_of = [r["notation"] for r in records]
    topic_index = {n: i for i, n in enumerate(notation_of)}

    # ---------------------------------------------------- string tables
    phrase_names, phrase_id = _name_table(
        [p for r in records for p, _ in r["phrases"]])
    phi_types = sorted({t for r in records for t in r["phi"]})
    phi_names: Dict[str, List[str]] = {}
    phi_ids: Dict[str, Dict[str, int]] = {}
    for ntype in phi_types:
        phi_names[ntype], phi_ids[ntype] = _name_table(
            [n for r in records for n in r["phi"].get(ntype, {})])
    rank_types = sorted({t for r in records for t in r["entity_ranks"]})
    rank_names: Dict[str, List[str]] = {}
    rank_ids: Dict[str, Dict[str, int]] = {}
    for etype in rank_types:
        rank_names[etype], rank_ids[etype] = _name_table(
            [n for r in records
             for n, _ in r["entity_ranks"].get(etype, [])])
    roles = model["entity_roles"]
    role_keys, role_key_id = _name_table(
        [k for table in roles.values()
         for freqs in table.values() for k in freqs])
    entities = {etype: sorted(table) for etype, table in roles.items()}

    # ------------------------------------------------- numeric sections
    sections: List[Tuple[str, np.ndarray]] = []

    def add_ragged(prefix: str, ragged: _Ragged,
                   values_name: str = "values") -> None:
        indptr, ids, values = ragged.arrays()
        sections.append((f"{prefix}.indptr", indptr))
        sections.append((f"{prefix}.ids", ids))
        sections.append((f"{prefix}.{values_name}", values))

    phrases = _Ragged()
    for record in records:
        phrases.append_row([phrase_id[p] for p, _ in record["phrases"]],
                           [float(s) for _, s in record["phrases"]])
    add_ragged("phrases", phrases, "scores")

    for ntype in phi_types:
        ragged = _Ragged()
        table = phi_ids[ntype]
        for record in records:
            dist = record["phi"].get(ntype, {})
            names = sorted(dist)
            ragged.append_row([table[n] for n in names],
                              [float(dist[n]) for n in names])
        add_ragged(f"phi.{ntype}", ragged)

    for etype in rank_types:
        ragged = _Ragged()
        table = rank_ids[etype]
        for record in records:
            ranks = record["entity_ranks"].get(etype, [])
            ragged.append_row([table[n] for n, _ in ranks],
                              [float(s) for _, s in ranks])
        add_ragged(f"entity_ranks.{etype}", ragged, "scores")

    # Phrase inverted index, ranked exactly as the v1 engine ranks it:
    # per phrase, (topic, score) sorted by (-score, notation).
    inverted: Dict[str, List[Tuple[str, float]]] = {}
    for record in records:
        for phrase, score in record["phrases"]:
            inverted.setdefault(phrase, []).append(
                (record["notation"], float(score)))
    inv = _Ragged()
    for phrase in phrase_names:
        entries = sorted(inverted.get(phrase, []),
                         key=lambda pair: (-pair[1], pair[0]))
        inv.append_row([topic_index[n] for n, _ in entries],
                       [s for _, s in entries])
    add_ragged("inverted", inv, "scores")

    for etype in sorted(roles):
        ragged = _Ragged()
        for name in entities[etype]:
            freqs = roles[etype][name]
            keys = sorted(freqs)
            ragged.append_row([role_key_id[k] for k in keys],
                              [float(freqs[k]) for k in keys])
        add_ragged(f"roles.{etype}", ragged)

    # -------------------------------------------------- topic skeleton
    topics_meta: List[Dict[str, Any]] = []
    parent_of: Dict[str, Optional[str]] = {notation_of[0]: None}
    for record in records:
        for child in record["children"]:
            parent_of[child["notation"]] = record["notation"]
    for record in records:
        parent = parent_of[record["notation"]]
        topics_meta.append({
            "notation": record["notation"],
            "path": list(record["path"]),
            "rho": float(record["rho"]),
            "parent": None if parent is None else topic_index[parent],
            "children": [topic_index[c["notation"]]
                         for c in record["children"]],
            "phi_types": sorted(record["phi"]),
            "rank_types": sorted(record["entity_ranks"]),
        })

    # ------------------------------------------------------ assembly
    # Two passes: lay out offsets with a section table of known shape,
    # then emit.  Offsets depend on the header length, which depends on
    # the section table text — so iterate until the layout fixes.
    strings = {
        "vocabulary": model["vocabulary"],
        "phrases": phrase_names,
        "phi_names": phi_names,
        "rank_names": rank_names,
        "role_keys": role_keys,
        "entities": entities,
        "topics": topics_meta,
    }

    def header_bytes(table: List[Dict[str, Any]]) -> bytes:
        return _canonical({"schema": MODEL_SCHEMA_V2, "manifest": manifest,
                           "strings": strings, "sections": table})

    def aligned(offset: int) -> int:
        return (offset + _ALIGN - 1) // _ALIGN * _ALIGN

    def layout(header_len: int) -> List[Dict[str, Any]]:
        table = []
        offset = aligned(_PREAMBLE.size + header_len)
        for name, array in sections:
            table.append({"name": name,
                          "dtype": array.dtype.str,
                          "count": int(array.size),
                          "offset": offset,
                          "crc32": zlib.crc32(array.tobytes()) & 0xFFFFFFFF})
            offset = aligned(offset + array.nbytes)
        return table

    header_len = 0
    header = b""
    for _ in range(8):
        table = layout(header_len)
        header = header_bytes(table)
        if len(header) == header_len:
            break
        header_len = len(header)
    else:  # pragma: no cover - the digit-width fixpoint converges fast
        raise DataError("v2 header layout failed to converge")

    total = aligned(_PREAMBLE.size + len(header))
    if table:
        last_name, last_array = sections[-1]
        total = table[-1]["offset"] + last_array.nbytes
    blob = bytearray(total)
    blob[:_PREAMBLE.size] = _PREAMBLE.pack(
        _MAGIC, len(header), zlib.crc32(header) & 0xFFFFFFFF)
    blob[_PREAMBLE.size:_PREAMBLE.size + len(header)] = header
    for entry, (name, array) in zip(table, sections):
        start = entry["offset"]
        blob[start:start + array.nbytes] = array.tobytes()

    # Save-time self check: the sections must reconstruct the canonical
    # v1 payload bit for bit, or the artifact's CRC contract is a lie.
    reconstructed = model_document_from_mapped(
        _mapped_from_blob(bytes(blob), path="<in-memory>"))
    crc = zlib.crc32(_canonical(reconstructed["model"])) & 0xFFFFFFFF
    if crc != manifest["payload_crc32"]:
        raise DataError(
            f"v2 encoding does not round-trip the canonical payload "
            f"(crc {crc} != manifest {manifest['payload_crc32']}); "
            f"the model is not v2-representable")
    return bytes(blob)


def save_model_document_v2(document: Dict[str, Any],
                           path: str) -> Dict[str, Any]:
    """Write a v1-style model document as a v2 artifact (atomically)."""
    with timed("serve.export_v2"):
        blob = build_v2_blob(document)
        atomic_write_bytes(path, blob)
    manifest = dict(document["manifest"])
    manifest["schema"] = MODEL_SCHEMA_V2
    logger.info("exported v2 model artifact (%d topics, %d bytes) -> %s",
                manifest["num_topics"], len(blob), path)
    return manifest


# =====================================================================
# Reading
# =====================================================================

@dataclass
class MappedModel:
    """A v2 artifact mapped into memory, numeric sections zero-copy.

    Attributes:
        manifest: the artifact manifest (schema ``repro.serve/model/v2``).
        header: the full parsed JSON header (manifest, strings, sections).
        path: the artifact file, when loaded from disk.
        sections: section name -> little-endian numpy view over the map.

    The numpy views alias the underlying buffer directly: nothing is
    copied at load, and every process mapping the same file shares one
    page-cache copy of the numeric data.
    """

    manifest: Dict[str, Any]
    header: Dict[str, Any]
    path: Optional[str] = None
    sections: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _mmap: Optional[mmap.mmap] = field(default=None, repr=False,
                                       compare=False)

    @property
    def vocabulary(self) -> List[str]:
        return self.header["strings"]["vocabulary"]

    @property
    def strings(self) -> Dict[str, Any]:
        return self.header["strings"]

    def section(self, name: str) -> np.ndarray:
        array = self.sections.get(name)
        if array is None:
            raise DataError(f"v2 artifact has no section {name!r}")
        return array

    def nbytes_mapped(self) -> int:
        """Total bytes of numeric sections backing this model."""
        return sum(int(a.nbytes) for a in self.sections.values())

    def close(self) -> None:
        """Drop the section views and unmap the file."""
        self.sections = {}
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None


def _parse_header(buffer: Any, path: str) -> Tuple[Dict[str, Any], int]:
    """Validate preamble + header CRC; return (header, header_len)."""
    if len(buffer) < _PREAMBLE.size:
        raise DataError(f"{path} is not a v2 model artifact (truncated "
                        f"preamble)")
    magic, header_len, header_crc = _PREAMBLE.unpack_from(buffer, 0)
    if magic != _MAGIC:
        raise DataError(f"{path} is not a v2 model artifact (bad magic)")
    end = _PREAMBLE.size + header_len
    if len(buffer) < end:
        raise DataError(f"{path} is truncated (header extends past EOF)")
    header_bytes = bytes(buffer[_PREAMBLE.size:end])
    if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
        raise DataError(f"{path} is corrupted (header checksum mismatch)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(f"{path}: v2 header is not valid JSON: "
                        f"{exc}") from exc
    if not isinstance(header, dict) \
            or header.get("schema") != MODEL_SCHEMA_V2:
        raise DataError(f"{path}: unsupported v2 header schema "
                        f"{header.get('schema') if isinstance(header, dict) else None!r}")
    return header, header_len


def _map_sections(buffer: Any, header: Dict[str, Any], path: str,
                  verify_sections: bool) -> Dict[str, np.ndarray]:
    # Validate every section BEFORE exporting any numpy view: a view is
    # an exported pointer into the mmap, and if one exists when a later
    # section fails validation, the caller's cleanup mmap.close() would
    # raise BufferError instead of surfacing the typed DataError.
    for entry in header.get("sections", []):
        name, dtype = entry["name"], entry["dtype"]
        if dtype not in _SECTION_DTYPES:
            raise DataError(f"{path}: section {name!r} has unsupported "
                            f"dtype {dtype!r}")
        count, offset = int(entry["count"]), int(entry["offset"])
        if offset % _ALIGN != 0:
            raise DataError(f"{path}: section {name!r} is misaligned "
                            f"(offset {offset} not {_ALIGN}-byte aligned)")
        nbytes = count * np.dtype(dtype).itemsize
        if offset + nbytes > len(buffer):
            raise DataError(f"{path} is truncated (section {name!r} "
                            f"extends past EOF)")
        if verify_sections:
            crc = zlib.crc32(buffer[offset:offset + nbytes]) & 0xFFFFFFFF
            if crc != entry["crc32"]:
                raise DataError(f"{path} is corrupted (section {name!r} "
                                f"checksum mismatch: {crc} != "
                                f"{entry['crc32']})")
    views: Dict[str, np.ndarray] = {}
    for entry in header.get("sections", []):
        views[entry["name"]] = np.frombuffer(
            buffer, dtype=entry["dtype"], count=int(entry["count"]),
            offset=int(entry["offset"]))
    return views


def _validate_v2_manifest(header: Dict[str, Any], path: str,
                          ) -> Dict[str, Any]:
    from .artifact import _REQUIRED_MANIFEST, vocabulary_hash

    manifest = header.get("manifest")
    if not isinstance(manifest, dict):
        raise DataError(f"{path}: v2 manifest must be an object")
    for key in _REQUIRED_MANIFEST:
        if key not in manifest:
            raise DataError(f"{path}: v2 manifest missing field {key!r}")
    if manifest["schema"] != MODEL_SCHEMA_V2:
        raise DataError(f"{path}: unsupported model schema "
                        f"{manifest['schema']!r} (expected "
                        f"{MODEL_SCHEMA_V2!r})")
    strings = header.get("strings")
    if not isinstance(strings, dict):
        raise DataError(f"{path}: v2 header missing string tables")
    for key in ("vocabulary", "phrases", "topics", "entities",
                "role_keys"):
        if key not in strings:
            raise DataError(f"{path}: v2 string tables missing {key!r}")
    vocab_hash = vocabulary_hash(strings["vocabulary"])
    if vocab_hash != manifest["vocab_hash"]:
        raise DataError(f"{path}: vocabulary hash mismatch (manifest "
                        f"{manifest['vocab_hash']!r}, stored vocabulary "
                        f"hashes to {vocab_hash!r})")
    return manifest


def _mapped_from_blob(blob: bytes, path: str,
                      verify_sections: bool = True,
                      mapping: Optional[mmap.mmap] = None) -> MappedModel:
    header, _ = _parse_header(blob, path)
    manifest = _validate_v2_manifest(header, path)
    sections = _map_sections(blob, header, path, verify_sections)
    return MappedModel(manifest=manifest, header=header,
                       path=None if path == "<in-memory>" else path,
                       sections=sections, _mmap=mapping)


def load_model_v2(path: str, verify_sections: bool = True) -> MappedModel:
    """Map and verify a v2 model artifact.

    The file is memory-mapped read-only; the numeric sections become
    zero-copy numpy views over the map.  The header CRC and vocabulary
    hash are always verified.  ``verify_sections=True`` (the default)
    additionally sweeps every section against its CRC32 — a sequential
    read of the mapped pages, still far cheaper than a JSON parse;
    ``verify_sections=False`` skips the sweep so the load touches only
    the header pages (~O(mmap) cold start; integrity then rests on the
    header CRC and the page cache).

    Raises:
        DataError: bad magic, truncation, checksum mismatch, schema or
            vocabulary-hash mismatch — never a partially usable model.
        OSError: when the file cannot be opened or mapped.
    """
    with timed("serve.model_load_v2"):
        with open(path, "rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0,
                                access=mmap.ACCESS_READ)
        try:
            model = _mapped_from_blob(mapping, path,
                                      verify_sections=verify_sections,
                                      mapping=mapping)
        except BaseException:
            mapping.close()
            raise
    logger.info("mapped v2 model artifact %s (%d topics, %d sections, "
                "%d bytes mapped)", path, model.manifest["num_topics"],
                len(model.sections), model.nbytes_mapped())
    return model


# =====================================================================
# Reconstruction (migration + the save-time self check)
# =====================================================================

def _row(model: MappedModel, prefix: str, index: int,
         values_name: str = "values") -> Tuple[np.ndarray, np.ndarray]:
    indptr = model.section(f"{prefix}.indptr")
    start, stop = int(indptr[index]), int(indptr[index + 1])
    ids = model.section(f"{prefix}.ids")[start:stop]
    values = model.section(f"{prefix}.{values_name}")[start:stop]
    return ids, values


def model_document_from_mapped(model: MappedModel) -> Dict[str, Any]:
    """Materialize the full v1-style document from a mapped v2 model.

    The result is exactly the ``{"schema", "manifest", "model"}``
    document whose canonical payload the manifest's ``payload_crc32``
    covers — the inverse of :func:`build_v2_blob`, used by
    ``repro migrate-model`` and the migration-equivalence tests.
    """
    from .artifact import MODEL_SCHEMA

    strings = model.strings
    topics = strings["topics"]
    phrases = strings["phrases"]

    def record_of(index: int) -> Dict[str, Any]:
        meta = topics[index]
        ids, scores = _row(model, "phrases", index, "scores")
        phi: Dict[str, Dict[str, float]] = {}
        for ntype in meta["phi_types"]:
            names = strings["phi_names"][ntype]
            nids, values = _row(model, f"phi.{ntype}", index)
            phi[ntype] = {names[int(i)]: float(v)
                          for i, v in zip(nids, values)}
        ranks: Dict[str, List[List[Any]]] = {}
        for etype in meta["rank_types"]:
            names = strings["rank_names"][etype]
            rids, rscores = _row(model, f"entity_ranks.{etype}", index,
                                 "scores")
            ranks[etype] = [[names[int(i)], float(s)]
                            for i, s in zip(rids, rscores)]
        return {
            "path": list(meta["path"]),
            "notation": meta["notation"],
            "rho": float(meta["rho"]),
            "phi": phi,
            "phrases": [[phrases[int(i)], float(s)]
                        for i, s in zip(ids, scores)],
            "entity_ranks": ranks,
            "children": [record_of(child) for child in meta["children"]],
        }

    role_keys = strings["role_keys"]
    entity_roles: Dict[str, Dict[str, Dict[str, float]]] = {}
    for etype, names in strings["entities"].items():
        table: Dict[str, Dict[str, float]] = {}
        for index, name in enumerate(names):
            kids, values = _row(model, f"roles.{etype}", index)
            table[name] = {role_keys[int(i)]: float(v)
                           for i, v in zip(kids, values)}
        entity_roles[etype] = table

    manifest = dict(model.manifest)
    manifest["schema"] = MODEL_SCHEMA
    return {"schema": MODEL_SCHEMA, "manifest": manifest,
            "model": {"vocabulary": list(strings["vocabulary"]),
                      "hierarchy": record_of(0),
                      "entity_roles": entity_roles}}
