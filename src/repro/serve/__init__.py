"""repro.serve — the read path: artifacts, query engine, HTTP server.

Three layers turn a fitted :class:`~repro.core.MiningResult` into
something millions of users can query without re-running EM:

* **artifacts** (:mod:`repro.serve.artifact`): the versioned
  ``repro.serve/model/v1`` on-disk format — atomic writes, a manifest
  with schema / config / vocabulary fingerprints, and typed rejection of
  corrupt or mismatched files;
* the **query engine** (:mod:`repro.serve.engine`): read-optimized
  indexes (topic tree maps, a phrase inverted index, entity role
  tables) built once at load, behind an LRU result cache with hit/miss
  metrics;
* the **server** (:mod:`repro.serve.http`): a pure-stdlib threaded HTTP
  server exposing the queries as JSON endpoints with request metrics,
  read timeouts, and graceful SIGTERM shutdown.

Surfaced on the facade as :meth:`~repro.core.LatentEntityMiner.save_model`
/ :meth:`~repro.core.LatentEntityMiner.load_model` and on the CLI as
``repro export-model`` / ``repro serve``.
"""

from .artifact import (MODEL_SCHEMA, ServedModel, build_model_document,
                       load_model, save_model, vocabulary_hash)
from .engine import ModelQueryEngine
from .http import ModelServer

__all__ = [
    "MODEL_SCHEMA",
    "ModelQueryEngine",
    "ModelServer",
    "ServedModel",
    "build_model_document",
    "load_model",
    "save_model",
    "vocabulary_hash",
]
