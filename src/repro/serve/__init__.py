"""repro.serve — the read path: artifacts, query engine, HTTP servers.

Three layers turn a fitted :class:`~repro.core.MiningResult` into
something millions of users can query without re-running EM:

* **artifacts**: the versioned on-disk formats — ``repro.serve/model/v1``
  (:mod:`repro.serve.artifact`), one canonical JSON document, and
  ``repro.serve/model/v2`` (:mod:`repro.serve.artifact_v2`), the same
  manifest / CRC / fingerprint contract with the numeric payload in
  aligned memory-mappable binary sections (zero-copy load, one
  page-cache copy shared across N server processes).  Both formats are
  written atomically and reject corrupt or mismatched files with typed
  errors; :func:`load_model` sniffs the format;
* the **query engine** (:mod:`repro.serve.engine`): read-optimized
  indexes behind an LRU result cache with hit/miss metrics, working
  identically over dict-backed (v1) and mmap-backed (v2) models, with
  an optional hash-sharded phrase index for fan-out search;
* the **servers**: a pure-stdlib threaded HTTP server
  (:mod:`repro.serve.http`) and an asyncio server
  (:mod:`repro.serve.aio`) with concurrent batch and sharded-search
  fan-out — both routing through :mod:`repro.serve.router`, both with
  request metrics, read timeouts, hard body limits, and graceful
  SIGTERM shutdown.

Surfaced on the facade as :meth:`~repro.core.LatentEntityMiner.save_model`
/ :meth:`~repro.core.LatentEntityMiner.load_model` and on the CLI as
``repro export-model`` / ``repro migrate-model`` / ``repro serve``.
"""

from .aio import ModelAsyncServer
from .artifact import (ARTIFACT_FORMATS, MODEL_SCHEMA, ServedModel,
                       build_model_document, load_model, migrate_model,
                       save_model, save_model_document, vocabulary_hash)
from .artifact_v2 import (MODEL_SCHEMA_V2, MappedModel, load_model_v2,
                          model_document_from_mapped)
from .engine import ModelQueryEngine
from .http import ModelServer

__all__ = [
    "ARTIFACT_FORMATS",
    "MODEL_SCHEMA",
    "MODEL_SCHEMA_V2",
    "MappedModel",
    "ModelAsyncServer",
    "ModelQueryEngine",
    "ModelServer",
    "ServedModel",
    "build_model_document",
    "load_model",
    "load_model_v2",
    "migrate_model",
    "model_document_from_mapped",
    "save_model",
    "save_model_document",
    "vocabulary_hash",
]
