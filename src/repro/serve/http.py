"""Stdlib HTTP serving layer for mined hierarchies.

:class:`ModelServer` wraps a :class:`~repro.serve.engine.ModelQueryEngine`
in a :class:`http.server.ThreadingHTTPServer` (no third-party
dependencies) and exposes the query API as JSON endpoints:

=====================  ======================================================
``GET /healthz``        liveness probe (status, uptime, model id)
``GET /metrics``        request / latency / cache counters as JSON, or
                        Prometheus text exposition with
                        ``?format=prometheus`` (or an ``Accept`` header
                        preferring ``text/plain``); latency timers carry
                        p50/p90/p99 in both formats
``GET /v1/model``       manifest + tree-shape statistics
``GET /v1/topics/o/1``  topic detail; the path *is* the topic notation
                        (``?phrases=&entities=&terms=`` trim the answer)
``GET /v1/search``      ``?q=...&mode=prefix|substring&limit=N``
``GET /v1/entities/X``  entity roles (``?type=`` and ``?topic=`` refine)
``POST /v1/batch``      JSON array of ``{"op": ..., "args": {...}}``
=====================  ======================================================

Operational behavior:

* every request is timed and counted in the server's own
  :class:`~repro.obs.MetricsRegistry` (``serve.http.*``) — always on, so
  ``/metrics`` works without global observability — and mirrored into the
  process-wide registry when :func:`repro.obs.configure` enabled it;
* every request gets a trace ID, echoed back as the ``X-Request-Id``
  response header; with span tracing enabled the whole handling path is
  wrapped in a ``serve.http.request`` span carrying that ID, so one
  request's spans are one trace in the exported Chrome timeline;
* a per-connection read timeout drops clients that stall mid-request
  instead of pinning a handler thread forever;
* :meth:`ModelServer.install_signal_handlers` arranges a graceful
  shutdown on SIGTERM (and SIGINT): in-flight requests finish, the
  listening socket closes, and ``serve_forever`` returns.

Typed library errors map to JSON error responses: unknown topics and
entities (:class:`~repro.errors.DataError`) give 404, invalid parameters
(:class:`~repro.errors.ConfigurationError`) give 400, and anything
unexpected gives a 500 with the exception logged, never a dropped
connection.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from ..errors import ConfigurationError, DataError
from ..obs import (PROMETHEUS_CONTENT_TYPE, MetricsRegistry, get_logger,
                   inc, observe, render_prometheus, set_trace_id, span)
from .engine import ModelQueryEngine

__all__ = ["ModelServer"]

logger = get_logger("serve.http")


def _int_param(params: Dict[str, list], name: str, default: int) -> int:
    values = params.get(name)
    if not values or values[0] == "":
        return default
    try:
        return int(values[0])
    except ValueError:
        raise ConfigurationError(
            f"query parameter {name!r} must be an integer: "
            f"{values[0]!r}") from None


class _PrometheusText:
    """Marker wrapping a text-exposition body through ``_route``."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the engine and answers in JSON."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Trace ID of the request being handled (echoed as X-Request-Id).
    _request_id: Optional[str] = None

    # ------------------------------------------------------------ plumbing
    def setup(self) -> None:
        # Read timeout: a client that stalls mid-request is disconnected
        # instead of occupying a handler thread indefinitely.  Must be in
        # place before setup() so the socket timeout is applied.
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_body(self, status: int, body: bytes,
                   content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"),
                        "application/json")

    # ------------------------------------------------------------- methods
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        server: "_EngineServer" = self.server
        # One trace ID per request: every span opened while handling it
        # (this request span included) shares the ID, and the client gets
        # it back as X-Request-Id for log correlation.
        self._request_id = server.next_request_id()
        set_trace_id(self._request_id)
        start = time.perf_counter()
        endpoint = "unknown"
        try:
            with span("serve.http.request", method=method,
                      request_id=self._request_id):
                try:
                    status, payload, endpoint = self._route(method)
                except DataError as exc:
                    status, payload = 404, {"error": str(exc)}
                except (ConfigurationError, ValueError) as exc:
                    status, payload = 400, {"error": str(exc)}
                except BrokenPipeError:  # client went away mid-answer
                    self.close_connection = True
                    return
                except Exception as exc:  # noqa: BLE001 - must answer
                    logger.error("unhandled error serving %s: %r",
                                 self.path, exc)
                    status, payload = 500, {
                        "error": f"internal error: {exc!r}"}
                try:
                    if isinstance(payload, _PrometheusText):
                        self._send_body(status,
                                        payload.text.encode("utf-8"),
                                        PROMETHEUS_CONTENT_TYPE)
                    else:
                        self._send_json(status, payload)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
                    return
                finally:
                    elapsed = time.perf_counter() - start
                    server.record_request(endpoint, status, elapsed)
        finally:
            set_trace_id(None)

    # ------------------------------------------------------------- routing
    def _route(self, method: str) -> Tuple[int, Any, str]:
        server: "_EngineServer" = self.server
        engine = server.engine
        parsed = urlparse(self.path)
        parts = [unquote(part) for part in parsed.path.strip("/").split("/")
                 if part != ""]
        # keep_blank_values: "?q=" is an explicit (match-all) query, not
        # a missing parameter.
        params = parse_qs(parsed.query, keep_blank_values=True)

        if parts == ["healthz"]:
            return 200, {"status": "ok",
                         "uptime_s": time.time() - server.started_unix,
                         "num_topics":
                             engine.model.manifest["num_topics"]}, "healthz"
        if parts == ["metrics"]:
            # Content negotiation: JSON stays the default; Prometheus
            # text exposition via ?format=prometheus or an Accept header
            # preferring text/plain over JSON.
            fmt = params.get("format", [None])[0]
            accept = self.headers.get("Accept", "")
            wants_text = fmt == "prometheus" or (
                fmt is None and "text/plain" in accept
                and "application/json" not in accept)
            if wants_text:
                return (200, _PrometheusText(server.prometheus_payload()),
                        "metrics")
            return 200, server.metrics_payload(), "metrics"
        if len(parts) >= 1 and parts[0] == "v1":
            if method == "POST":
                if parts == ["v1", "batch"]:
                    return 200, engine.batch(self._read_json_body()), "batch"
                raise DataError(f"no POST endpoint at {parsed.path!r}")
            if parts == ["v1", "model"]:
                return 200, engine.model_info(), "model"
            if len(parts) >= 3 and parts[1] == "topics":
                notation = "/".join(parts[2:])
                return 200, engine.topic(
                    notation,
                    max_phrases=_int_param(params, "phrases", 10),
                    max_entities=_int_param(params, "entities", 5),
                    max_terms=_int_param(params, "terms", 10)), "topics"
            if parts == ["v1", "search"]:
                query = params.get("q")
                if not query:
                    raise ConfigurationError(
                        "search requires a 'q' query parameter")
                mode = params.get("mode", ["prefix"])[0]
                return 200, engine.search_phrases(
                    query[0], mode=mode,
                    limit=_int_param(params, "limit", 10)), "search"
            if len(parts) >= 3 and parts[1] == "entities":
                name = "/".join(parts[2:])
                entity_type = params.get("type", [None])[0]
                topic = params.get("topic", ["o"])[0]
                return 200, engine.entity_roles(
                    name, entity_type=entity_type, topic=topic), "entities"
        raise DataError(f"no endpoint at {parsed.path!r}")

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ConfigurationError("request body required")
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}") from exc


class _EngineServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the engine and per-server metrics."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], engine: ModelQueryEngine,
                 request_timeout: float) -> None:
        super().__init__(address, _RequestHandler)
        self.engine = engine
        self.request_timeout = request_timeout
        self.registry = MetricsRegistry()
        self.started_unix = time.time()
        self._request_serial = itertools.count(1)

    def next_request_id(self) -> str:
        """A process-unique request / trace ID (no RNG involved)."""
        return f"req-{os.getpid():x}-{next(self._request_serial):x}"

    def record_request(self, endpoint: str, status: int,
                       elapsed: float) -> None:
        self.registry.inc("serve.http.requests")
        self.registry.inc(f"serve.http.status.{status}")
        self.registry.observe("serve.http.latency", elapsed)
        self.registry.observe(f"serve.http.{endpoint}.latency", elapsed)
        # Mirror into the global registry for run reports (no-op unless
        # observability is configured).
        inc("serve.http.requests")
        inc(f"serve.http.status.{status}")
        observe("serve.http.latency", elapsed)

    def _combined_snapshot(self) -> Dict[str, Any]:
        """Server registry snapshot plus cache counters, one code path.

        Both ``/metrics`` formats are views of this snapshot, so the
        JSON and Prometheus answers always agree; timer entries carry
        p50/p90/p99 from the quantile sketches.
        """
        snapshot = self.registry.snapshot()
        cache = self.engine.cache_info()
        snapshot["counters"]["serve.cache.hits"] = float(cache["hits"])
        snapshot["counters"]["serve.cache.misses"] = float(cache["misses"])
        snapshot["gauges"]["serve.cache.size"] = float(cache["size"])
        snapshot["gauges"]["serve.cache.capacity"] = float(
            cache["capacity"])
        snapshot["gauges"]["serve.uptime_s"] = \
            time.time() - self.started_unix
        return snapshot

    def metrics_payload(self) -> Dict[str, Any]:
        return {
            "uptime_s": time.time() - self.started_unix,
            "server": self.registry.snapshot(),
            "combined": self._combined_snapshot(),
            "cache": self.engine.cache_info(),
        }

    def prometheus_payload(self) -> str:
        """The combined snapshot in Prometheus 0.0.4 text exposition."""
        return render_prometheus(self._combined_snapshot())


class ModelServer:
    """Lifecycle wrapper around the threaded HTTP server.

    Usage (blocking, as the CLI does)::

        server = ModelServer(engine, host="0.0.0.0", port=8080)
        server.install_signal_handlers()     # SIGTERM -> graceful stop
        server.serve_forever()

    or non-blocking (as the tests do)::

        with ModelServer(engine, port=0) as server:   # ephemeral port
            server.start()
            url = f"http://{server.host}:{server.port}/healthz"
    """

    def __init__(self, engine: ModelQueryEngine, host: str = "127.0.0.1",
                 port: int = 8080, request_timeout: float = 30.0) -> None:
        if request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive")
        self._httpd = _EngineServer((host, port), engine, request_timeout)
        self._thread: Optional[threading.Thread] = None
        self._previous_handlers: Dict[int, Any] = {}
        self._started = False

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> ModelQueryEngine:
        return self._httpd.engine

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def registry(self) -> MetricsRegistry:
        """The server-local metrics registry backing ``/metrics``."""
        return self._httpd.registry

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocking)."""
        logger.info("serving model on %s:%d", self.host, self.port)
        self._started = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ModelServer":
        """Serve from a background thread (returns immediately)."""
        if self._thread is not None:
            return self
        self._started = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting requests and let ``serve_forever`` return.

        A no-op when the server never started serving (calling the
        underlying ``shutdown`` then would block forever waiting for a
        serve loop that never ran).
        """
        if self._started:
            self._httpd.shutdown()
            self._started = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Release the listening socket (after shutdown)."""
        self.restore_signal_handlers()
        self._httpd.server_close()

    def install_signal_handlers(self,
                                signals: Tuple[int, ...] = (signal.SIGTERM,
                                                            signal.SIGINT),
                                ) -> None:
        """Trigger a graceful shutdown when one of ``signals`` arrives.

        ``shutdown`` must not run on the thread blocked in
        ``serve_forever`` (it would deadlock waiting for the serve loop
        to exit), and signal handlers run on the main thread — so the
        handler hands the shutdown to a short-lived helper thread.
        """
        def _handler(signum, frame):  # noqa: ARG001 - signal signature
            logger.info("signal %d: shutting down gracefully", signum)
            threading.Thread(target=self._httpd.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()

        for signum in signals:
            self._previous_handlers[signum] = signal.signal(signum, _handler)

    def restore_signal_handlers(self) -> None:
        """Reinstate the handlers replaced by :meth:`install_signal_handlers`."""
        while self._previous_handlers:
            signum, handler = self._previous_handlers.popitem()
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # not on the main thread
                pass

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.shutdown()
        finally:
            self.close()
