"""Stdlib threaded HTTP serving layer for mined hierarchies.

:class:`ModelServer` wraps a :class:`~repro.serve.engine.ModelQueryEngine`
in a :class:`http.server.ThreadingHTTPServer` (no third-party
dependencies) and exposes the query API as JSON endpoints:

=====================  ======================================================
``GET /healthz``        liveness probe (status, uptime, model id)
``GET /metrics``        request / latency / cache counters as JSON, or
                        Prometheus text exposition with
                        ``?format=prometheus`` (or an ``Accept`` header
                        preferring ``text/plain``); latency timers carry
                        p50/p90/p99 in both formats
``GET /v1/model``       manifest + tree-shape statistics
``GET /v1/topics/o/1``  topic detail; the path *is* the topic notation
                        (``?phrases=&entities=&terms=`` trim the answer)
``GET /v1/search``      ``?q=...&mode=prefix|substring&limit=N``
``GET /v1/entities/X``  entity roles (``?type=`` and ``?topic=`` refine)
``POST /v1/batch``      JSON array of ``{"op": ..., "args": {...}}``
``POST /v1/admin/reload``  hot-swap to a freshly loaded artifact (400
                        without a configured reloader); SIGHUP does the
                        same where the platform has it
=====================  ======================================================

Routing itself lives in :mod:`repro.serve.router`, shared with the
asyncio frontend (:mod:`repro.serve.aio`), so the two servers cannot
drift apart.  Operational behavior:

* every request is timed and counted in the server's own
  :class:`~repro.obs.MetricsRegistry` (``serve.http.*``) — always on, so
  ``/metrics`` works without global observability — and mirrored into the
  process-wide registry when :func:`repro.obs.configure` enabled it;
* every request gets a trace ID, echoed back as the ``X-Request-Id``
  response header; with span tracing enabled the whole handling path is
  wrapped in a ``serve.http.request`` span carrying that ID, so one
  request's spans are one trace in the exported Chrome timeline;
* a per-connection read timeout drops clients that stall mid-request
  instead of pinning a handler thread forever;
* POST bodies are hard-limited: no Content-Length gives 411, a
  malformed one gives 400, one past ``max_body_bytes`` gives 413 with a
  typed error payload — all before a single body byte is buffered;
* :meth:`ModelServer.install_signal_handlers` arranges a graceful
  shutdown on SIGTERM (and SIGINT): in-flight requests finish, the
  listening socket closes, and ``serve_forever`` returns.

Typed library errors map to JSON error responses: unknown topics and
entities (:class:`~repro.errors.DataError`) give 404, invalid parameters
(:class:`~repro.errors.ConfigurationError`) give 400, and anything
unexpected gives a 500 with the exception logged, never a dropped
connection.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError, DataError
from ..obs import (PROMETHEUS_CONTENT_TYPE, MetricsRegistry, get_logger,
                   set_trace_id, span)
from .engine import ModelQueryEngine
from .router import (DEFAULT_MAX_BODY_BYTES, PrometheusText,
                     RequestRejected, ServerStateMixin, parse_json_body,
                     route_request, validate_content_length)

__all__ = ["ModelServer"]

logger = get_logger("serve.http")


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the engine and answers in JSON."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Trace ID of the request being handled (echoed as X-Request-Id).
    _request_id: Optional[str] = None

    # ------------------------------------------------------------ plumbing
    def setup(self) -> None:
        # Read timeout: a client that stalls mid-request is disconnected
        # instead of occupying a handler thread indefinitely.  Must be in
        # place before setup() so the socket timeout is applied.
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_body(self, status: int, body: bytes,
                   content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self.close_connection:
            # Advertise the close (e.g. after a rejected body we never
            # read) so clients don't try to reuse the connection.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"),
                        "application/json")

    # ------------------------------------------------------------- methods
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        server: "_EngineServer" = self.server
        # One trace ID per request: every span opened while handling it
        # (this request span included) shares the ID, and the client gets
        # it back as X-Request-Id for log correlation.
        self._request_id = server.next_request_id()
        set_trace_id(self._request_id)
        start = time.perf_counter()
        endpoint = "unknown"
        # Lease the engine for the whole request: a hot swap landing
        # mid-request retires the old engine but this request keeps
        # answering from it; the engine closes after the last release.
        handle = server.acquire_engine()
        try:
            with span("serve.http.request", method=method,
                      request_id=self._request_id):
                try:
                    status, payload, endpoint = route_request(
                        server, method, self.path,
                        accept=self.headers.get("Accept", ""),
                        read_body=self._read_json_body,
                        engine=handle.engine)
                except RequestRejected as exc:
                    status, payload = exc.status, exc.payload
                    # An unread body would be parsed as the next request
                    # on this keep-alive connection; drop it instead.
                    self.close_connection = True
                except DataError as exc:
                    status, payload = 404, {"error": str(exc)}
                except (ConfigurationError, ValueError) as exc:
                    status, payload = 400, {"error": str(exc)}
                except BrokenPipeError:  # client went away mid-answer
                    self.close_connection = True
                    return
                except Exception as exc:  # noqa: BLE001 - must answer
                    logger.error("unhandled error serving %s: %r",
                                 self.path, exc)
                    status, payload = 500, {
                        "error": f"internal error: {exc!r}"}
                try:
                    if isinstance(payload, PrometheusText):
                        self._send_body(status,
                                        payload.text.encode("utf-8"),
                                        PROMETHEUS_CONTENT_TYPE)
                    else:
                        self._send_json(status, payload)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
                    return
                finally:
                    elapsed = time.perf_counter() - start
                    server.record_request(endpoint, status, elapsed)
        finally:
            handle.release()
            set_trace_id(None)

    def _read_json_body(self) -> Any:
        """Read and parse the POST body under the hardening contract.

        Raises :class:`RequestRejected` (411 / 400 / 413, typed payload)
        before reading a byte when the framing is absent, malformed, or
        over ``max_body_bytes``; a short read or bad JSON gives 400.
        """
        length = validate_content_length(
            self.headers.get("Content-Length"),
            self.server.max_body_bytes)
        body = self.rfile.read(length)
        if len(body) < length:
            raise ConfigurationError(
                f"request body truncated ({len(body)} of {length} "
                f"bytes received)")
        return parse_json_body(body)


class _EngineServer(ThreadingHTTPServer, ServerStateMixin):
    """ThreadingHTTPServer carrying the engine and per-server metrics."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], engine: ModelQueryEngine,
                 request_timeout: float, max_body_bytes: int) -> None:
        super().__init__(address, _RequestHandler)
        self._init_server_state(engine)
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes


class ModelServer:
    """Lifecycle wrapper around the threaded HTTP server.

    Usage (blocking, as the CLI does)::

        server = ModelServer(engine, host="0.0.0.0", port=8080)
        server.install_signal_handlers()     # SIGTERM -> graceful stop
        server.serve_forever()

    or non-blocking (as the tests do)::

        with ModelServer(engine, port=0) as server:   # ephemeral port
            server.start()
            url = f"http://{server.host}:{server.port}/healthz"
    """

    def __init__(self, engine: ModelQueryEngine, host: str = "127.0.0.1",
                 port: int = 8080, request_timeout: float = 30.0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES) -> None:
        if request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive")
        if max_body_bytes <= 0:
            raise ConfigurationError("max_body_bytes must be positive")
        self._httpd = _EngineServer((host, port), engine, request_timeout,
                                    max_body_bytes)
        self._thread: Optional[threading.Thread] = None
        self._previous_handlers: Dict[int, Any] = {}
        self._started = False

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> ModelQueryEngine:
        return self._httpd.engine

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def registry(self) -> MetricsRegistry:
        """The server-local metrics registry backing ``/metrics``."""
        return self._httpd.registry

    # ------------------------------------------------------------- hot swap
    def set_reloader(self, reloader) -> None:
        """Install the engine factory ``reload()`` / SIGHUP will call."""
        self._httpd.set_reloader(reloader)

    def swap_engine(self, engine: ModelQueryEngine) -> ModelQueryEngine:
        """Hot-swap to ``engine``; in-flight requests drain on the old."""
        return self._httpd.swap_engine(engine)

    def reload(self) -> Dict[str, Any]:
        """Rebuild via the reloader and swap (same as POST /v1/admin/reload)."""
        return self._httpd.reload_engine()

    # ------------------------------------------------------------ lifecycle
    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocking)."""
        logger.info("serving model on %s:%d", self.host, self.port)
        self._started = True
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ModelServer":
        """Serve from a background thread (returns immediately)."""
        if self._thread is not None:
            return self
        self._started = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting requests and let ``serve_forever`` return.

        A no-op when the server never started serving (calling the
        underlying ``shutdown`` then would block forever waiting for a
        serve loop that never ran).
        """
        if self._started:
            self._httpd.shutdown()
            self._started = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Release the listening socket (after shutdown)."""
        self.restore_signal_handlers()
        self._httpd.server_close()

    def install_signal_handlers(self,
                                signals: Tuple[int, ...] = (signal.SIGTERM,
                                                            signal.SIGINT),
                                ) -> None:
        """Trigger a graceful shutdown when one of ``signals`` arrives.

        ``shutdown`` must not run on the thread blocked in
        ``serve_forever`` (it would deadlock waiting for the serve loop
        to exit), and signal handlers run on the main thread — so the
        handler hands the shutdown to a short-lived helper thread.
        """
        def _handler(signum, frame):  # noqa: ARG001 - signal signature
            logger.info("signal %d: shutting down gracefully", signum)
            threading.Thread(target=self._httpd.shutdown,
                             name="repro-serve-shutdown",
                             daemon=True).start()

        for signum in signals:
            self._previous_handlers[signum] = signal.signal(signum, _handler)
        self._install_reload_handler()

    def _install_reload_handler(self) -> None:
        """SIGHUP -> hot reload, where the platform has SIGHUP."""
        if not hasattr(signal, "SIGHUP"):
            return

        def _reload(signum, frame):  # noqa: ARG001 - signal signature
            logger.info("signal %d: hot-reloading the model", signum)
            threading.Thread(target=self._reload_quietly,
                             name="repro-serve-reload",
                             daemon=True).start()

        self._previous_handlers[signal.SIGHUP] = \
            signal.signal(signal.SIGHUP, _reload)

    def _reload_quietly(self) -> None:
        try:
            self.reload()
        except Exception as exc:  # noqa: BLE001 - signal ctx, must not die
            logger.error("hot reload failed: %r", exc)

    def restore_signal_handlers(self) -> None:
        """Reinstate the handlers replaced by :meth:`install_signal_handlers`."""
        while self._previous_handlers:
            signum, handler = self._previous_handlers.popitem()
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # not on the main thread
                pass

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.shutdown()
        finally:
            self.close()
