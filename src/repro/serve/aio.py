"""Asyncio serving frontend: concurrent fan-out over the same contract.

:class:`ModelAsyncServer` answers exactly the endpoint contract of the
threaded :class:`~repro.serve.http.ModelServer` (both route through
:mod:`repro.serve.router`), but handles connections on one asyncio event
loop, which changes what happens *inside* a request:

* ``POST /v1/batch`` fans the batch's ops out concurrently — each op
  runs in a worker thread via :func:`asyncio.to_thread`, bounded by a
  semaphore of ``batch_concurrency`` slots so one huge batch cannot
  monopolize the pool — and the results come back in request order,
  per-op errors in-band, byte-identical to the sequential answer;
* ``GET /v1/search`` against an engine with ``phrase_shards > 1`` scans
  the hash shards concurrently (one worker thread per shard, each
  span-traced and timed as ``serve.search.shard.<i>.latency`` by the
  engine) and merges, again byte-identical to the sequential answer and
  cached under the same key;
* every other endpoint runs in a single worker thread, so the event
  loop only ever parses HTTP and moves bytes — a stalled client costs a
  connection, never a worker.

POST bodies are hard-limited exactly as in the threaded server: absent
Content-Length gives 411, a malformed one 400, one past
``max_body_bytes`` 413 with a typed payload — checked before a single
body byte is read.

Because many requests interleave on the loop thread, the per-request
trace ID is installed inside each worker thread (trace IDs are
thread-local), so engine spans still attribute to the right request;
the client still gets the ID back as ``X-Request-Id``.

Lifecycle mirrors the threaded server — ``start()`` (background thread
running the loop, as the tests use), ``serve_forever()`` (blocking, as
the CLI uses), ``install_signal_handlers()`` for graceful SIGTERM /
SIGINT (in-flight requests finish, the listening socket closes), and
context-manager support.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from http.client import responses as _http_reasons
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigurationError, DataError
from ..obs import (PROMETHEUS_CONTENT_TYPE, MetricsRegistry, get_logger,
                   set_trace_id, span)
from .engine import _SEARCH_MODES, ModelQueryEngine
from .router import (DEFAULT_MAX_BODY_BYTES, PrometheusText,
                     RequestRejected, ServerStateMixin, parse_json_body,
                     route_request, validate_content_length)

__all__ = ["ModelAsyncServer"]

logger = get_logger("serve.aio")

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 100


class _AioState(ServerStateMixin):
    """The mixin as a standalone object (no socketserver underneath)."""

    def __init__(self, engine: ModelQueryEngine) -> None:
        self._init_server_state(engine)


class ModelAsyncServer:
    """Asyncio HTTP server over a :class:`ModelQueryEngine`.

    Args:
        engine: the query engine (build it with ``phrase_shards > 1``
            to get concurrent sharded search).
        host / port: bind address (``port=0`` for an ephemeral port).
        request_timeout: per-read client timeout, seconds.
        max_body_bytes: hard POST body cap (411 / 413 below / above).
        batch_concurrency: concurrent worker slots per batch request.
    """

    def __init__(self, engine: ModelQueryEngine, host: str = "127.0.0.1",
                 port: int = 8080, request_timeout: float = 30.0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 batch_concurrency: int = 8) -> None:
        if request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive")
        if max_body_bytes <= 0:
            raise ConfigurationError("max_body_bytes must be positive")
        if batch_concurrency < 1:
            raise ConfigurationError("batch_concurrency must be >= 1")
        self.state = _AioState(engine)
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.batch_concurrency = batch_concurrency
        self._requested_address = (host, port)
        self._bound_address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._previous_handlers: Dict[int, Any] = {}

    # ------------------------------------------------------------ accessors
    @property
    def engine(self) -> ModelQueryEngine:
        return self.state.engine

    @property
    def registry(self) -> MetricsRegistry:
        """The server-local metrics registry backing ``/metrics``."""
        return self.state.registry

    @property
    def host(self) -> str:
        address = self._bound_address or self._requested_address
        return address[0]

    @property
    def port(self) -> int:
        address = self._bound_address or self._requested_address
        return address[1]

    # ------------------------------------------------------------- hot swap
    def set_reloader(self, reloader) -> None:
        """Install the engine factory ``reload()`` / SIGHUP will call."""
        self.state.set_reloader(reloader)

    def swap_engine(self, engine: ModelQueryEngine) -> ModelQueryEngine:
        """Hot-swap to ``engine``; in-flight requests drain on the old."""
        return self.state.swap_engine(engine)

    def reload(self) -> Dict[str, Any]:
        """Rebuild via the reloader and swap (same as POST /v1/admin/reload)."""
        return self.state.reload_engine()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ModelAsyncServer":
        """Run the event loop in a background thread (returns bound)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-serve-aio", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self._startup_error = None
            raise error
        if not self._ready.is_set():
            raise ConfigurationError(
                "async server failed to start within 30s")
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; CLI entry point)."""
        self.start()
        logger.info("serving model (asyncio) on %s:%d", self.host,
                    self.port)
        thread = self._thread
        assert thread is not None
        while thread.is_alive():
            # join() with a timeout keeps the main thread receptive to
            # signals (a bare join blocks them on some platforms).
            thread.join(timeout=0.2)

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight requests, close the socket."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._ready.clear()

    def close(self) -> None:
        """Restore signal handlers (the loop owns the socket)."""
        self.restore_signal_handlers()

    def install_signal_handlers(self,
                                signals: Tuple[int, ...] = (signal.SIGTERM,
                                                            signal.SIGINT),
                                ) -> None:
        """Trigger a graceful shutdown when one of ``signals`` arrives."""
        def _handler(signum, frame):  # noqa: ARG001 - signal signature
            logger.info("signal %d: shutting down gracefully", signum)
            threading.Thread(target=self.shutdown,
                             name="repro-serve-aio-shutdown",
                             daemon=True).start()

        for signum in signals:
            self._previous_handlers[signum] = signal.signal(signum, _handler)
        if hasattr(signal, "SIGHUP"):
            def _reload(signum, frame):  # noqa: ARG001 - signal signature
                logger.info("signal %d: hot-reloading the model", signum)
                threading.Thread(target=self._reload_quietly,
                                 name="repro-serve-aio-reload",
                                 daemon=True).start()

            self._previous_handlers[signal.SIGHUP] = \
                signal.signal(signal.SIGHUP, _reload)

    def _reload_quietly(self) -> None:
        try:
            self.reload()
        except Exception as exc:  # noqa: BLE001 - signal ctx, must not die
            logger.error("hot reload failed: %r", exc)

    def restore_signal_handlers(self) -> None:
        """Reinstate handlers replaced by :meth:`install_signal_handlers`."""
        while self._previous_handlers:
            signum, handler = self._previous_handlers.popitem()
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # not on the main thread
                pass

    def __enter__(self) -> "ModelAsyncServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.shutdown()
        finally:
            self.close()

    # ------------------------------------------------------------ event loop
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._batch_slots = asyncio.Semaphore(self.batch_concurrency)
        self._connections: set = set()
        host, port = self._requested_address
        server = await asyncio.start_server(self._handle_client, host,
                                            port)
        sockname = server.sockets[0].getsockname()
        self._bound_address = (sockname[0], sockname[1])
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._connections:
                await asyncio.wait(list(self._connections), timeout=5.0)
            self._loop = None

    # ---------------------------------------------------------- connections
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass  # client went away or stalled; the connection just ends
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not self._stop_event.is_set():
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=self.request_timeout)
            if not request_line:
                return
            if len(request_line) > _MAX_REQUEST_LINE:
                await self._reply(writer, 414, {
                    "error": "request line too long",
                    "code": "uri_too_long"}, "req-overlong", False)
                return
            parts = request_line.decode("latin-1").rstrip("\r\n").split()
            if len(parts) != 3:
                await self._reply(writer, 400, {
                    "error": "malformed request line",
                    "code": "bad_request_line"}, "req-malformed", False)
                return
            method, target, version = parts
            headers = await self._read_headers(reader)
            if headers is None:
                await self._reply(writer, 400, {
                    "error": "malformed or oversized request headers",
                    "code": "bad_headers"}, "req-badheaders", False)
                return
            keep_alive = (version == "HTTP/1.1"
                          and headers.get("connection", "").lower()
                          != "close")
            status, payload, request_id, must_close = \
                await self._answer(method, target, headers, reader)
            keep_alive = keep_alive and not must_close
            await self._reply(writer, status, payload, request_id,
                              keep_alive)
            if not keep_alive:
                return

    async def _read_headers(self, reader: asyncio.StreamReader,
                            ) -> Optional[Dict[str, str]]:
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=self.request_timeout)
            if line in (b"\r\n", b"\n", b""):
                return headers
            if b":" not in line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return None

    async def _reply(self, writer: asyncio.StreamWriter, status: int,
                     payload: Any, request_id: str,
                     keep_alive: bool) -> None:
        if isinstance(payload, PrometheusText):
            body = payload.text.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _http_reasons.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Server: repro-serve-aio/1\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"X-Request-Id: {request_id}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -------------------------------------------------------------- requests
    async def _answer(self, method: str, target: str,
                      headers: Dict[str, str],
                      reader: asyncio.StreamReader,
                      ) -> Tuple[int, Any, str, bool]:
        state = self.state
        request_id = state.next_request_id()
        start = time.perf_counter()
        endpoint = "unknown"
        must_close = False
        # Lease the engine for the whole request (hot-swap drain: see
        # router.EngineHandle) — released in the finally below.
        handle = state.acquire_engine()
        try:
            if method not in ("GET", "POST"):
                raise RequestRejected(
                    501, "method_not_implemented",
                    f"method {method!r} is not supported")
            body: Any = None
            if method == "POST":
                length = validate_content_length(
                    headers.get("content-length"), self.max_body_bytes)
                raw = await asyncio.wait_for(
                    reader.readexactly(length),
                    timeout=self.request_timeout)
                body = parse_json_body(raw)
            status, payload, endpoint = await self._route_async(
                request_id, method, target,
                headers.get("accept", ""), body, handle.engine)
        except RequestRejected as exc:
            status, payload = exc.status, exc.payload
            # An unread body would be parsed as the next request on
            # this keep-alive connection; drop the connection instead.
            must_close = True
        except asyncio.IncompleteReadError as exc:
            status, payload = 400, {
                "error": f"request body truncated ({len(exc.partial)} "
                         f"bytes received)", "code": "body_truncated"}
            must_close = True
        except DataError as exc:
            status, payload = 404, {"error": str(exc)}
        except (ConfigurationError, ValueError) as exc:
            status, payload = 400, {"error": str(exc)}
        except asyncio.TimeoutError:
            raise  # mid-body stall: connection-level, no answer owed
        except Exception as exc:  # noqa: BLE001 - must answer
            logger.error("unhandled error serving %s: %r", target, exc)
            status, payload = 500, {"error": f"internal error: {exc!r}"}
        finally:
            handle.release()
        state.record_request(endpoint, status,
                             time.perf_counter() - start)
        return status, payload, request_id, must_close

    async def _route_async(self, request_id: str, method: str,
                           target: str, accept: str, body: Any,
                           engine: ModelQueryEngine,
                           ) -> Tuple[int, Any, str]:
        """Route with concurrency where the endpoint supports it.

        Batch and sharded search fan out across worker threads; every
        other endpoint runs in one worker thread.  All engine work goes
        through :meth:`_in_worker`, which installs the request's trace
        ID in the worker (trace IDs are thread-local), so engine spans
        attribute to this request even though many requests share the
        event loop.
        """
        parsed = urlparse(target)
        path = parsed.path.rstrip("/")
        if method == "POST" and path == "/v1/batch":
            return 200, await self._batch_async(request_id, body,
                                                engine), "batch"
        if method == "GET" and path == "/v1/search" \
                and engine.num_shards > 1:
            params = parse_qs(parsed.query, keep_blank_values=True)
            query = params.get("q")
            if query is not None:
                answer = await self._search_async(request_id, query[0],
                                                  params, engine)
                return 200, answer, "search"
        return await self._in_worker(
            request_id, route_request, self.state, method, target,
            accept, lambda: body, engine)

    async def _batch_async(self, request_id: str, requests: Any,
                           engine: ModelQueryEngine) -> Dict[str, Any]:
        """Concurrent, bounded, order-preserving batch execution."""
        if not isinstance(requests, list):
            raise ConfigurationError("batch payload must be an array")

        async def run_op(request: Any) -> Dict[str, Any]:
            async with self._batch_slots:
                return await self._in_worker(request_id, engine.batch_op,
                                             request)

        results = await asyncio.gather(*[run_op(r) for r in requests])
        return {"results": list(results)}

    async def _search_async(self, request_id: str, query: str,
                            params: Dict[str, list],
                            engine: ModelQueryEngine) -> Dict[str, Any]:
        """Concurrent sharded search, cached under the engine's key."""
        mode = params.get("mode", ["prefix"])[0]
        if mode not in _SEARCH_MODES:
            raise ConfigurationError(
                f"unsupported search mode {mode!r} (one of "
                f"{_SEARCH_MODES})")
        raw_limit = params.get("limit", [""])[0]
        try:
            limit = int(raw_limit) if raw_limit != "" else 10
        except ValueError:
            raise ConfigurationError(
                f"query parameter 'limit' must be an integer: "
                f"{raw_limit!r}") from None
        key = ("search_phrases", query, mode, limit)
        hit, value = engine.cache_get(key)
        if hit:
            return value
        match_lists = await asyncio.gather(*[
            self._in_worker(request_id, engine.search_shard, index,
                            query, mode)
            for index in range(engine.num_shards)])
        return engine.cache_put(
            key, engine.merge_shard_matches(list(match_lists), query,
                                            mode, limit))

    async def _in_worker(self, request_id: str, fn: Callable, *args,
                         ) -> Any:
        """Run ``fn`` in a worker thread under this request's trace ID."""
        def traced() -> Any:
            set_trace_id(request_id)
            try:
                with span("serve.http.request", request_id=request_id):
                    return fn(*args)
            finally:
                set_trace_id(None)

        return await asyncio.to_thread(traced)
