"""Document and corpus containers.

A :class:`Document` is a tokenized piece of text together with optional
typed-entity links (authors, venues, persons, locations, ...) and optional
metadata such as a publication year or a ground-truth topic label.  A
:class:`Corpus` is an ordered collection of documents sharing one
:class:`~repro.corpus.vocabulary.Vocabulary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import DataError
from .tokenize import DEFAULT_STOPWORDS, tokenize_chunks
from .vocabulary import Vocabulary


@dataclass
class Document:
    """One text-attached node of the data model (Definition 1).

    Attributes:
        doc_id: stable identifier within the corpus.
        chunks: token-id sequences, one per phrase-invariant chunk.
        entities: mapping from entity type name (e.g. ``"author"``) to the
            list of entity names linked to this document.
        year: optional timestamp used by relation mining (Chapter 6).
        label: optional ground-truth topic label (used only for evaluation,
            e.g. the MI_K experiment of Section 4.4.1).
    """

    doc_id: int
    chunks: List[List[int]]
    entities: Dict[str, List[str]] = field(default_factory=dict)
    year: Optional[int] = None
    label: Optional[str] = None

    @property
    def tokens(self) -> List[int]:
        """All token ids in document order, chunk boundaries flattened."""
        return [tok for chunk in self.chunks for tok in chunk]

    @property
    def length(self) -> int:
        """Total number of tokens."""
        return sum(len(chunk) for chunk in self.chunks)

    def entity_list(self, entity_type: str) -> List[str]:
        """Entities of ``entity_type`` linked to this document ([] if none)."""
        return self.entities.get(entity_type, [])


class Corpus:
    """An ordered document collection with a shared vocabulary.

    Build one with :meth:`from_texts` (raw strings) or by appending
    pre-tokenized documents via :meth:`add_document`.
    """

    def __init__(self, vocabulary: Optional[Vocabulary] = None) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._documents: List[Document] = []

    # ------------------------------------------------------------------ build
    @classmethod
    def from_texts(cls,
                   texts: Iterable[str],
                   entities: Optional[Sequence[Mapping[str, Sequence[str]]]] = None,
                   years: Optional[Sequence[int]] = None,
                   labels: Optional[Sequence[str]] = None,
                   stopwords: Iterable[str] = DEFAULT_STOPWORDS) -> "Corpus":
        """Tokenize raw ``texts`` into a corpus.

        ``entities``, ``years`` and ``labels`` are optional parallel
        sequences aligned with ``texts``.
        """
        texts = list(texts)
        for name, seq in (("entities", entities), ("years", years),
                          ("labels", labels)):
            if seq is not None and len(seq) != len(texts):
                raise DataError(f"{name} must align with texts "
                                f"({len(seq)} != {len(texts)})")
        corpus = cls()
        for i, text in enumerate(texts):
            token_chunks = tokenize_chunks(text, stopwords=stopwords)
            id_chunks = [corpus.vocabulary.encode(chunk, add_missing=True)
                         for chunk in token_chunks]
            corpus.add_document(
                chunks=id_chunks,
                entities={k: list(v) for k, v in entities[i].items()}
                if entities is not None else None,
                year=years[i] if years is not None else None,
                label=labels[i] if labels is not None else None,
            )
        return corpus

    def add_document(self,
                     chunks: List[List[int]],
                     entities: Optional[Dict[str, List[str]]] = None,
                     year: Optional[int] = None,
                     label: Optional[str] = None) -> Document:
        """Append a pre-tokenized document and return it."""
        vocab_size = len(self.vocabulary)
        for chunk in chunks:
            for tok in chunk:
                if not 0 <= tok < vocab_size:
                    raise DataError(f"token id {tok} outside vocabulary "
                                    f"of size {vocab_size}")
        doc = Document(doc_id=len(self._documents), chunks=chunks,
                       entities=entities or {}, year=year, label=label)
        self._documents.append(doc)
        return doc

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    @property
    def documents(self) -> Tuple[Document, ...]:
        """All documents as an immutable tuple."""
        return tuple(self._documents)

    @property
    def num_tokens(self) -> int:
        """Total token count L over the whole corpus."""
        return sum(doc.length for doc in self._documents)

    def entity_types(self) -> List[str]:
        """All entity type names present anywhere in the corpus, sorted."""
        types = set()
        for doc in self._documents:
            types.update(doc.entities)
        return sorted(types)

    def word_counts(self) -> Dict[int, int]:
        """Corpus-wide token frequency f(v) per word id."""
        counts: Dict[int, int] = {}
        for doc in self._documents:
            for tok in doc.tokens:
                counts[tok] = counts.get(tok, 0) + 1
        return counts

    def document_frequency(self) -> Dict[int, int]:
        """Number of documents containing each word id at least once."""
        counts: Dict[int, int] = {}
        for doc in self._documents:
            for tok in set(doc.tokens):
                counts[tok] = counts.get(tok, 0) + 1
        return counts

    def subset(self, doc_ids: Sequence[int]) -> "Corpus":
        """A new corpus (sharing this vocabulary) with the given documents.

        Document ids are renumbered densely in the new corpus.
        """
        sub = Corpus(vocabulary=self.vocabulary)
        for doc_id in doc_ids:
            doc = self._documents[doc_id]
            sub.add_document(chunks=[list(c) for c in doc.chunks],
                             entities={k: list(v)
                                       for k, v in doc.entities.items()},
                             year=doc.year, label=doc.label)
        return sub

    def __repr__(self) -> str:
        return (f"Corpus(documents={len(self)}, vocabulary={len(self.vocabulary)}, "
                f"tokens={self.num_tokens})")
