"""Corpus substrate: documents, tokenization, vocabulary."""

from .document import Corpus, Document
from .tokenize import (DEFAULT_STOPWORDS, join_tokens, split_phrase_chunks,
                       tokenize, tokenize_chunks)
from .vocabulary import Vocabulary

__all__ = [
    "Corpus",
    "Document",
    "Vocabulary",
    "tokenize",
    "tokenize_chunks",
    "split_phrase_chunks",
    "join_tokens",
    "DEFAULT_STOPWORDS",
]
