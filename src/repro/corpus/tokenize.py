"""Tokenization utilities for information-rich short and long text.

The dissertation's phrase mining (Chapter 4) operates on token sequences
after minimal pre-processing: lowercase, strip punctuation that cannot be
inside a phrase, remove stopwords, and split sentences on phrase-invariant
punctuation so phrases never cross a comma or period (Section 4.3.1).
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Sequence

#: Default English stopword list.  Deliberately compact: the corpora the
#: dissertation evaluates on (paper titles) carry little function-word
#: noise, and a short list keeps tokenization transparent and testable.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset("""
a an and are as at be but by for from has have in is it its of on or that the
this to was were will with we our your their you i he she they them his her
not no yes do does did been being than then so such via using used use can
""".split())

#: Punctuation a phrase may never span (Section 4.3.1 splits documents into
#: chunks on these before mining, which also bounds per-chunk complexity).
PHRASE_INVARIANT_PUNCTUATION = re.compile(r"[.,;:!?()\[\]{}\"]+")

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9\-']*")


def split_phrase_chunks(text: str) -> List[str]:
    """Split ``text`` on punctuation that phrases may not cross."""
    chunks = PHRASE_INVARIANT_PUNCTUATION.split(text)
    return [chunk for chunk in (c.strip() for c in chunks) if chunk]


def tokenize(text: str,
             stopwords: Iterable[str] = DEFAULT_STOPWORDS) -> List[str]:
    """Lowercase, extract word tokens, and drop stopwords.

    Multi-chunk structure is *not* preserved here; use
    :func:`tokenize_chunks` when chunk boundaries matter (phrase mining).
    """
    stop = frozenset(stopwords)
    return [tok for tok in _TOKEN_RE.findall(text.lower()) if tok not in stop]


def tokenize_chunks(text: str,
                    stopwords: Iterable[str] = DEFAULT_STOPWORDS,
                    ) -> List[List[str]]:
    """Tokenize ``text`` into a list of chunks of tokens.

    Each chunk is a maximal run of text between phrase-invariant
    punctuation marks; frequent-phrase mining treats each chunk as an
    independent token sequence.
    """
    stop = frozenset(stopwords)
    chunks = []
    for raw_chunk in split_phrase_chunks(text.lower()):
        tokens = [tok for tok in _TOKEN_RE.findall(raw_chunk)
                  if tok not in stop]
        if tokens:
            chunks.append(tokens)
    return chunks


def join_tokens(tokens: Sequence[str]) -> str:
    """Render a token sequence as a single space-joined phrase string."""
    return " ".join(tokens)
