"""Bidirectional word <-> integer-id mapping."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from ..errors import DataError


class Vocabulary:
    """Maps words to dense integer ids and back.

    Ids are assigned in first-seen order, so a vocabulary built from a
    deterministic corpus walk is itself deterministic.
    """

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        """Add ``word`` if new; return its id either way."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        new_id = len(self._id_to_word)
        self._word_to_id[word] = new_id
        self._id_to_word.append(word)
        return new_id

    def id_of(self, word: str) -> int:
        """Return the id of ``word``; raise :class:`DataError` if unknown."""
        try:
            return self._word_to_id[word]
        except KeyError:
            raise DataError(f"word not in vocabulary: {word!r}") from None

    def word_of(self, word_id: int) -> str:
        """Return the word with id ``word_id``."""
        if not 0 <= word_id < len(self._id_to_word):
            raise DataError(f"word id out of range: {word_id}")
        return self._id_to_word[word_id]

    def encode(self, tokens: Sequence[str], add_missing: bool = False) -> List[int]:
        """Encode a token sequence to ids, optionally growing the vocabulary."""
        if add_missing:
            return [self.add(tok) for tok in tokens]
        return [self.id_of(tok) for tok in tokens]

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Decode a sequence of ids back to words."""
        return [self.word_of(i) for i in ids]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
