"""Probabilistic latent semantic analysis (PLSA) with EM.

The pre-Bayesian ancestor of LDA (Section 2.1); used in Chapter 7 as the
second maximum-likelihood baseline for robustness/scalability comparisons.
Operates on a dense or sparse document-word count matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..phrases.ranking import FlatTopicModel
from ..utils import EPS, RandomState, ensure_rng


@dataclass
class PLSAModel:
    """Fitted PLSA parameters."""

    phi: np.ndarray     # (k, V): p(w | z)
    theta: np.ndarray   # (D, k): p(z | d)
    rho: np.ndarray     # (k,): corpus topic proportions
    log_likelihood: float

    def to_flat(self) -> FlatTopicModel:
        """Export as the shared flat-model currency."""
        return FlatTopicModel(rho=self.rho, phi=self.phi)


class PLSA:
    """EM estimator for PLSA.

    Args:
        num_topics: k.
        max_iter: EM sweeps.
        tol: relative log-likelihood improvement stopping threshold.
        seed: RNG seed or generator.
    """

    def __init__(self, num_topics: int, max_iter: int = 100,
                 tol: float = 1e-6, seed: RandomState = None) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        self.num_topics = num_topics
        self.max_iter = max_iter
        self.tol = tol
        self._rng = ensure_rng(seed)
        self.model_: Optional[PLSAModel] = None

    def fit(self, count_matrix: np.ndarray) -> PLSAModel:
        """Fit to a (D, V) document-word count matrix."""
        counts = np.asarray(count_matrix, dtype=float)
        if counts.ndim != 2:
            raise ConfigurationError("count_matrix must be 2-D")
        num_docs, vocab_size = counts.shape
        k = self.num_topics
        rng = self._rng

        phi = rng.dirichlet(np.ones(vocab_size), size=k)          # (k, V)
        theta = rng.dirichlet(np.ones(k), size=num_docs)          # (D, k)

        prev_ll = -np.inf
        ll = prev_ll
        for _ in range(self.max_iter):
            # E-step folded into M-step accumulators: responsibilities
            # p(z | d, w) proportional to theta[d, z] * phi[z, w].
            mix = theta @ phi                                     # (D, V)
            mix = np.maximum(mix, EPS)
            ll = float((counts * np.log(mix)).sum())

            ratio = counts / mix                                  # (D, V)
            new_theta = theta * (ratio @ phi.T)                   # (D, k)
            new_phi = phi * (theta.T @ ratio)                     # (k, V)

            theta = new_theta / np.maximum(
                new_theta.sum(axis=1, keepdims=True), EPS)
            phi = new_phi / np.maximum(
                new_phi.sum(axis=1, keepdims=True), EPS)

            if np.isfinite(prev_ll) and \
                    ll - prev_ll < self.tol * max(abs(prev_ll), 1.0):
                break
            prev_ll = ll

        doc_weights = counts.sum(axis=1)
        rho = (theta * doc_weights[:, None]).sum(axis=0)
        rho = rho / max(rho.sum(), EPS)
        self.model_ = PLSAModel(phi=phi, theta=theta, rho=rho,
                                log_likelihood=ll)
        return self.model_

    def require_model(self) -> PLSAModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_


def docs_to_count_matrix(docs: Sequence[Sequence[int]],
                         vocab_size: int) -> np.ndarray:
    """Convert token-id documents to a dense (D, V) count matrix."""
    counts = np.zeros((len(docs), vocab_size), dtype=float)
    for d, doc in enumerate(docs):
        for w in doc:
            counts[d, w] += 1
    return counts
