"""Baseline methods used across the evaluation chapters."""

from .kpheuristics import KpRelRanker
from .lda_gibbs import LDAGibbs, LDAModel
from .lda_variational import VariationalLDA, VariationalLDAModel
from .netclus import NetClus, NetClusModel
from .phrase_topic_models import PDLDA, TNG, TurboTopics
from .plsa import PLSA, PLSAModel, docs_to_count_matrix

__all__ = [
    "LDAGibbs",
    "LDAModel",
    "VariationalLDA",
    "VariationalLDAModel",
    "PLSA",
    "PLSAModel",
    "docs_to_count_matrix",
    "NetClus",
    "NetClusModel",
    "KpRelRanker",
    "TNG",
    "TurboTopics",
    "PDLDA",
]
