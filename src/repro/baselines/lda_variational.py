"""Mean-field variational inference for LDA (Blei, Ng, Jordan 2003).

The second maximum-likelihood-family inference method Chapter 7 compares
STROD against ("two most popular approximate inference methods have been
variational Bayesian inference and Markov Chain Monte Carlo").  Batch
coordinate ascent: per document, the variational document-topic
parameters gamma and token responsibilities are iterated to convergence;
the topic-word parameters lambda are re-estimated from the aggregated
responsibilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.special import digamma

from ..errors import ConfigurationError, NotFittedError
from ..phrases.ranking import FlatTopicModel
from ..utils import EPS, RandomState, ensure_rng


@dataclass
class VariationalLDAModel:
    """Variational posterior point estimates."""

    phi: np.ndarray        # (k, V) expected topic-word distributions
    gamma: np.ndarray      # (D, k) document-topic Dirichlet parameters
    rho: np.ndarray        # (k,) corpus topic proportions
    elbo_trace: List[float]

    def to_flat(self) -> FlatTopicModel:
        """Export as the shared flat-model currency."""
        return FlatTopicModel(rho=self.rho, phi=self.phi)

    @property
    def theta(self) -> np.ndarray:
        """Expected document-topic mixtures E[theta | gamma]."""
        return self.gamma / self.gamma.sum(axis=1, keepdims=True)


class VariationalLDA:
    """Batch mean-field VB estimator for LDA.

    Args:
        num_topics: k.
        alpha: symmetric document-topic prior.
        eta: symmetric topic-word prior.
        em_iterations: outer (lambda) updates.
        doc_iterations: inner gamma updates per document per outer step.
        seed: RNG seed (lambda initialization).
    """

    def __init__(self, num_topics: int, alpha: float = 0.1,
                 eta: float = 0.01, em_iterations: int = 30,
                 doc_iterations: int = 20,
                 seed: RandomState = None) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        self.num_topics = num_topics
        self.alpha = alpha
        self.eta = eta
        self.em_iterations = em_iterations
        self.doc_iterations = doc_iterations
        self._rng = ensure_rng(seed)
        self.model_: Optional[VariationalLDAModel] = None

    def fit(self, docs: Sequence[Sequence[int]],
            vocab_size: int) -> VariationalLDAModel:
        """Run batch variational EM on token-id documents."""
        k = self.num_topics
        rng = self._rng

        # Per-document sparse counts.
        doc_ids: List[np.ndarray] = []
        doc_counts: List[np.ndarray] = []
        for doc in docs:
            ids, counts = np.unique(np.asarray(doc, dtype=np.int64),
                                    return_counts=True)
            doc_ids.append(ids)
            doc_counts.append(counts.astype(float))
        num_docs = len(docs)

        lam = rng.gamma(100.0, 0.01, size=(k, vocab_size))
        gamma = np.full((num_docs, k), self.alpha + 1.0)
        elbo_trace: List[float] = []

        for _ in range(self.em_iterations):
            expected_log_beta = (digamma(lam)
                                 - digamma(lam.sum(axis=1,
                                                   keepdims=True)))
            sufficient = np.zeros((k, vocab_size))
            bound = 0.0
            for d in range(num_docs):
                ids, counts = doc_ids[d], doc_counts[d]
                if len(ids) == 0:
                    continue
                log_beta_d = expected_log_beta[:, ids]      # (k, n)
                gamma_d = gamma[d]
                for _ in range(self.doc_iterations):
                    expected_log_theta = digamma(gamma_d) - digamma(
                        gamma_d.sum())
                    log_resp = expected_log_theta[:, None] + log_beta_d
                    log_resp -= log_resp.max(axis=0, keepdims=True)
                    resp = np.exp(log_resp)
                    resp /= np.maximum(resp.sum(axis=0, keepdims=True),
                                       EPS)
                    new_gamma = self.alpha + resp @ counts
                    if np.abs(new_gamma - gamma_d).mean() < 1e-4:
                        gamma_d = new_gamma
                        break
                    gamma_d = new_gamma
                gamma[d] = gamma_d
                sufficient[:, ids] += resp * counts[None, :]
                # Word-likelihood part of the ELBO (fit diagnostic).
                mix = (gamma_d / gamma_d.sum())[:, None] * np.exp(
                    log_beta_d)
                bound += float(counts @ np.log(
                    np.maximum(mix.sum(axis=0), EPS)))
            lam = self.eta + sufficient
            elbo_trace.append(bound)

        phi = lam / np.maximum(lam.sum(axis=1, keepdims=True), EPS)
        theta_mass = gamma - self.alpha
        rho = theta_mass.sum(axis=0)
        rho = rho / max(rho.sum(), EPS)
        self.model_ = VariationalLDAModel(phi=phi, gamma=gamma, rho=rho,
                                          elbo_trace=elbo_trace)
        return self.model_

    def require_model(self) -> VariationalLDAModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_
