"""kpRel and kpRelInt*: topical keyphrase ranking baselines (Section 4.4.1).

Zhao et al.'s methods rank topical keyphrases by first scoring unigrams
by topical relevance and then heuristically combining constituent scores
— the design KERT's comparability property is contrasted against (it
systematically favors short phrases).

* ``kpRel``: relevance only — the average constituent unigram relevance
  weighted by the phrase's topical probability.
* ``kpRelInt*``: relevance times an "interestingness" factor; the paper's
  original factor is re-tweet counts, re-implemented here (as in the
  dissertation's own evaluation) as the phrase's relative corpus
  frequency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..corpus import Corpus
from ..utils import EPS
from ..phrases.frequent import Phrase, PhraseCounts, mine_frequent_phrases
from ..phrases.ranking import (FlatTopicModel, render_phrase,
                               topical_frequencies)


def _unigram_relevance(model: FlatTopicModel) -> np.ndarray:
    """Per-topic unigram relevance: p(w|t) log(p(w|t) / p(w))."""
    marginal = model.rho @ model.phi  # (V,)
    marginal = np.maximum(marginal, EPS)
    relevance = model.phi * (np.log(np.maximum(model.phi, EPS))
                             - np.log(marginal)[None, :])
    return relevance


class KpRelRanker:
    """Constituent-combination keyphrase ranking.

    Args:
        interestingness: enable the kpRelInt* frequency factor.
        min_support: frequent-phrase threshold when counts are mined here.
    """

    def __init__(self, interestingness: bool = False,
                 min_support: int = 5) -> None:
        self.interestingness = interestingness
        self.min_support = min_support

    def rank(self, corpus: Corpus, model: FlatTopicModel,
             counts: Optional[PhraseCounts] = None,
             ) -> List[List[Tuple[Phrase, float]]]:
        """Per topic, ranked (phrase, score) lists."""
        if counts is None:
            counts = mine_frequent_phrases(corpus,
                                           min_support=self.min_support)
        relevance = _unigram_relevance(model)
        freqs = topical_frequencies(counts, model)
        num_docs = max(counts.num_documents, 1)

        rankings: List[List[Tuple[Phrase, float]]] = []
        for t in range(model.num_topics):
            scored = []
            for phrase, frequency in counts.counts.items():
                topical = freqs[phrase][t]
                if topical < counts.min_support:
                    continue
                # The probability product is the source of the length
                # bias the dissertation documents: n-gram probabilities
                # are not comparable across lengths, so unigrams win.
                probability = float(np.prod(
                    [model.phi[t, w] for w in phrase]))
                constituent = float(np.mean([relevance[t, w]
                                             for w in phrase]))
                score = probability * max(constituent, 0.0)
                if self.interestingness:
                    score = score * (frequency / num_docs)
                if score > 0:
                    scored.append((phrase, score))
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            rankings.append(scored)
        return rankings

    def rank_strings(self, corpus: Corpus, model: FlatTopicModel,
                     counts: Optional[PhraseCounts] = None,
                     top_k: int = 20) -> List[List[Tuple[str, float]]]:
        """Like :meth:`rank` but rendering phrases as strings."""
        rankings = self.rank(corpus, model, counts=counts)
        return [[(render_phrase(p, corpus.vocabulary), s)
                 for p, s in topic[:top_k]]
                for topic in rankings]
