"""Integrated phrase+topic model comparators (Section 4.4.2–4.4.3).

Three methods the dissertation compares ToPMine/KERT against:

* :class:`TNG` — Topical N-Gram-style Gibbs sampler: every token carries a
  topic and a bigram-status flag; consecutive flagged tokens chain into
  topical n-grams.  Word-pair specific bigram emissions are kept sparse.
* :class:`TurboTopics` — post-processing of LDA assignments: recursively
  merge adjacent same-topic word pairs whose co-occurrence passes a
  permutation-test significance check.  The permutation tests are the
  (intentionally reproduced) computational bottleneck.
* :class:`PDLDA` — a Pitman-Yor-flavored phrase-discovering LDA stand-in:
  per sweep, documents are re-segmented by a significance criterion and
  each segment samples a shared topic with a CRP-style back-off between
  segment-level and token-level emissions.  Reproduces PD-LDA's output
  shape and its much-heavier-than-LDA runtime scaling, not its exact
  hierarchical Pitman-Yor posterior (documented substitution).

All three expose ``topical_phrases`` with the same output contract as
ToPMine, so the intrusion/coherence harness treats every method alike.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import NotFittedError
from ..utils import EPS, RandomState, ensure_rng

Phrase = Tuple[int, ...]
Rankings = List[List[Tuple[Phrase, float]]]


def _rank_by_topical_count(phrase_topic_counts: Dict[Phrase, np.ndarray],
                           num_topics: int,
                           min_count: float = 2.0) -> Rankings:
    """Shared ranking: phrases by per-topic count, prefer multi-word."""
    rankings: Rankings = []
    for t in range(num_topics):
        scored = [(p, float(v[t]))
                  for p, v in phrase_topic_counts.items()
                  if v[t] >= min_count]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        rankings.append(scored)
    return rankings


class TNG:
    """Topical-N-Gram-style sampler with bigram status variables.

    Args:
        num_topics: k.
        alpha / beta: Dirichlet hyperparameters for doc-topic and
            topic-word distributions.
        gamma: Beta prior for the per-previous-word bigram indicator.
        iterations: Gibbs sweeps.
    """

    def __init__(self, num_topics: int, alpha: float = 0.1,
                 beta: float = 0.01, gamma: float = 0.5,
                 iterations: int = 100, seed: RandomState = None) -> None:
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.iterations = iterations
        self._rng = ensure_rng(seed)
        self.rankings_: Optional[Rankings] = None
        self.phi_: Optional[np.ndarray] = None

    def fit(self, corpus: Corpus) -> "TNG":
        """Fit the model to ``corpus``."""
        rng = self._rng
        k = self.num_topics
        vocab_size = len(corpus.vocabulary)
        chunks = [(doc.doc_id, chunk) for doc in corpus
                  for chunk in doc.chunks if chunk]
        num_docs = len(corpus)

        n_dk = np.zeros((num_docs, k), dtype=np.int64)
        n_kw = np.zeros((k, vocab_size), dtype=np.int64)
        n_k = np.zeros(k, dtype=np.int64)
        bigram_on: Dict[int, int] = {}
        bigram_off: Dict[int, int] = {}

        topics: List[np.ndarray] = []
        flags: List[np.ndarray] = []
        for d, chunk in chunks:
            z = rng.integers(0, k, size=len(chunk))
            x = (rng.random(len(chunk)) < 0.2).astype(np.int64)
            x[0] = 0
            topics.append(z)
            flags.append(x)
            for tok, zi in zip(chunk, z):
                n_dk[d, zi] += 1
                n_kw[zi, tok] += 1
                n_k[zi] += 1
            for pos in range(1, len(chunk)):
                prev = chunk[pos - 1]
                if x[pos]:
                    bigram_on[prev] = bigram_on.get(prev, 0) + 1
                else:
                    bigram_off[prev] = bigram_off.get(prev, 0) + 1

        beta_sum = self.beta * vocab_size
        for _ in range(self.iterations):
            for idx, (d, chunk) in enumerate(chunks):
                z = topics[idx]
                x = flags[idx]
                for pos, tok in enumerate(chunk):
                    z_old = z[pos]
                    n_dk[d, z_old] -= 1
                    n_kw[z_old, tok] -= 1
                    n_k[z_old] -= 1
                    prev = chunk[pos - 1] if pos else None
                    if prev is not None:
                        if x[pos]:
                            bigram_on[prev] -= 1
                        else:
                            bigram_off[prev] -= 1

                    p_topic = ((n_dk[d] + self.alpha)
                               * (n_kw[:, tok] + self.beta)
                               / (n_k + beta_sum))
                    if prev is not None:
                        on = bigram_on.get(prev, 0) + self.gamma
                        off = bigram_off.get(prev, 0) + self.gamma
                        p_on = on / (on + off)
                        # Bigram status ties the token to the previous
                        # token's topic.
                        probs = np.concatenate([
                            (1 - p_on) * p_topic,
                            p_on * p_topic * (np.arange(k) == z[pos - 1])])
                    else:
                        probs = p_topic
                    probs = np.maximum(probs, EPS)
                    probs /= probs.sum()
                    choice = int(rng.choice(len(probs), p=probs))
                    if prev is not None and choice >= k:
                        z[pos] = choice - k
                        x[pos] = 1
                        bigram_on[prev] = bigram_on.get(prev, 0) + 1
                    else:
                        z[pos] = choice % k
                        x[pos] = 0
                        if prev is not None:
                            bigram_off[prev] = bigram_off.get(prev, 0) + 1
                    n_dk[d, z[pos]] += 1
                    n_kw[z[pos], tok] += 1
                    n_k[z[pos]] += 1

        # Chain flagged tokens into n-grams and count per topic.
        phrase_counts: Dict[Phrase, np.ndarray] = {}
        for idx, (_, chunk) in enumerate(chunks):
            z = topics[idx]
            x = flags[idx]
            start = 0
            for pos in range(1, len(chunk) + 1):
                if pos == len(chunk) or not x[pos]:
                    phrase = tuple(chunk[start:pos])
                    vec = phrase_counts.setdefault(phrase, np.zeros(k))
                    vec[z[start]] += 1
                    start = pos
        self.phi_ = (n_kw + self.beta) / (n_k[:, None] + beta_sum)
        self.rankings_ = _rank_by_topical_count(phrase_counts, k)
        return self

    def topical_phrases(self) -> Rankings:
        """Per-topic ranked (phrase, score) lists."""
        if self.rankings_ is None:
            raise NotFittedError("call fit() first")
        return self.rankings_


class TurboTopics:
    """Permutation-test merging on top of LDA assignments.

    Args:
        num_topics: k for the underlying LDA.
        iterations: LDA Gibbs sweeps.
        permutations: shuffles per significance test (the cost knob).
        significance: z-score-like threshold for accepting a merge.
        max_rounds: merge rounds (each re-tests grown phrases).
    """

    def __init__(self, num_topics: int, iterations: int = 100,
                 permutations: int = 20, significance: float = 3.0,
                 max_rounds: int = 3, seed: RandomState = None) -> None:
        self.num_topics = num_topics
        self.iterations = iterations
        self.permutations = permutations
        self.significance = significance
        self.max_rounds = max_rounds
        self._rng = ensure_rng(seed)
        self.rankings_: Optional[Rankings] = None

    def fit(self, corpus: Corpus) -> "TurboTopics":
        """Fit the model to ``corpus``."""
        from .lda_gibbs import LDAGibbs

        docs = [doc.tokens for doc in corpus]
        lda = LDAGibbs(num_topics=self.num_topics,
                       iterations=self.iterations,
                       seed=self._rng).fit(docs,
                                           len(corpus.vocabulary))
        # Token-level topic labels per document.
        doc_labels = [np.asarray(labels) for labels in lda.assignments]

        # Sequences of (unit, topic) that we merge in rounds.
        sequences: List[List[Tuple[Phrase, int]]] = []
        for doc, labels in zip(corpus, doc_labels):
            seq = [((tok,), int(z)) for tok, z in zip(doc.tokens, labels)]
            sequences.append(seq)

        rng = self._rng
        for _ in range(self.max_rounds):
            pair_counts: Counter = Counter()
            unit_counts: Counter = Counter()
            total_positions = 0
            for seq in sequences:
                total_positions += len(seq)
                for unit, _ in seq:
                    unit_counts[unit] += 1
                for a, b in zip(seq, seq[1:]):
                    if a[1] == b[1]:
                        pair_counts[(a[0], b[0])] += 1
            merges = set()
            for (left, right), observed in pair_counts.items():
                if observed < 3:
                    continue
                if self._is_significant(left, right, observed, unit_counts,
                                        total_positions, rng):
                    merges.add((left, right))
            if not merges:
                break
            sequences = [self._apply_merges(seq, merges)
                         for seq in sequences]

        phrase_counts: Dict[Phrase, np.ndarray] = {}
        for seq in sequences:
            for unit, z in seq:
                vec = phrase_counts.setdefault(unit,
                                               np.zeros(self.num_topics))
                vec[z] += 1
        self.rankings_ = _rank_by_topical_count(phrase_counts,
                                                self.num_topics)
        return self

    def _is_significant(self, left: Phrase, right: Phrase, observed: int,
                        unit_counts: Counter, total: int,
                        rng: np.random.Generator) -> bool:
        """Permutation test: is the adjacency count above chance?

        Deliberately brute-force (sampling ``permutations`` randomized
        adjacency counts from the independence null) to reproduce Turbo
        Topics' runtime profile.
        """
        p_left = unit_counts[left] / max(total, 1)
        p_right = unit_counts[right] / max(total, 1)
        null_counts = rng.binomial(total, p_left * p_right,
                                   size=self.permutations)
        mean = null_counts.mean()
        std = max(null_counts.std(), 1.0)
        return (observed - mean) / std > self.significance

    @staticmethod
    def _apply_merges(seq, merges):
        result = []
        pos = 0
        while pos < len(seq):
            if pos + 1 < len(seq) and seq[pos][1] == seq[pos + 1][1] and \
                    (seq[pos][0], seq[pos + 1][0]) in merges:
                result.append((seq[pos][0] + seq[pos + 1][0], seq[pos][1]))
                pos += 2
            else:
                result.append(seq[pos])
                pos += 1
        return result

    def topical_phrases(self) -> Rankings:
        """Per-topic ranked (phrase, score) lists."""
        if self.rankings_ is None:
            raise NotFittedError("call fit() first")
        return self.rankings_


class PDLDA:
    """Phrase-discovering LDA stand-in with per-sweep re-segmentation.

    Each sweep (1) re-segments every document by a running significance
    criterion over current phrase counts and (2) Gibbs-samples one topic
    per segment with back-off between phrase-level and token-level
    emissions.  Runtime per sweep is deliberately much heavier than LDA's.
    """

    def __init__(self, num_topics: int, iterations: int = 50,
                 merge_threshold: float = 1.5,
                 seed: RandomState = None) -> None:
        self.num_topics = num_topics
        self.iterations = iterations
        self.merge_threshold = merge_threshold
        self._rng = ensure_rng(seed)
        self.rankings_: Optional[Rankings] = None

    def fit(self, corpus: Corpus) -> "PDLDA":
        """Fit the model to ``corpus``."""
        from ..phrases.frequent import mine_frequent_phrases
        from ..phrases.segmentation import segment_corpus
        from .lda_gibbs import LDAGibbs

        rng = self._rng
        counts = mine_frequent_phrases(corpus, min_support=3)
        docs = [doc.tokens for doc in corpus]
        partitions = segment_corpus(corpus, counts,
                                    alpha=self.merge_threshold)
        # Iterative refinement: alternate a few short PhraseLDA runs with
        # re-segmentations at progressively stricter thresholds —
        # emulating PD-LDA's joint segmentation/topic sampling cost.
        sweeps = max(self.iterations // 10, 1)
        model = None
        for sweep in range(sweeps):
            sampler = LDAGibbs(num_topics=self.num_topics, iterations=10,
                               seed=rng)
            model = sampler.fit(docs, len(corpus.vocabulary),
                                partitions=partitions)
            if sweep < sweeps - 1:
                threshold = self.merge_threshold * (1 + 0.2 * sweep)
                partitions = segment_corpus(corpus, counts, alpha=threshold)

        phrase_counts: Dict[Phrase, np.ndarray] = {}
        for doc_partition, labels in zip(partitions, model.assignments):
            usable = min(len(doc_partition), len(labels))
            for unit, z in zip(doc_partition[:usable], labels[:usable]):
                vec = phrase_counts.setdefault(tuple(unit),
                                               np.zeros(self.num_topics))
                vec[int(z) % self.num_topics] += 1
        self.rankings_ = _rank_by_topical_count(phrase_counts,
                                                self.num_topics)
        return self

    def topical_phrases(self) -> Rankings:
        """Per-topic ranked (phrase, score) lists."""
        if self.rankings_ is None:
            raise NotFittedError("call fit() first")
        return self.rankings_
