"""Latent Dirichlet allocation via collapsed Gibbs sampling.

Serves three roles in the reproduction:

* the maximum-likelihood-family baseline for Chapter 7's scalability and
  robustness comparisons against STROD,
* the topic-model substrate for KERT (a background LDA, Section 4.4.3),
* phrase-constrained LDA ("PhraseLDA") for ToPMine: all tokens of a
  phrase instance share one topic assignment, sampled jointly, which the
  paper notes often makes it *faster* than token-level LDA.

The sweep runs as a blocked kernel: uniform variates are drawn once per
document per sweep (one ``Generator.random`` call instead of one
``Generator.choice`` per unit), the conditional p(z | rest) is evaluated
in linear space, and the draw is an inverse-CDF scan over the cumulative
unnormalized weights.  Counts live in plain Python lists for the
duration of a sweep — at typical k (5–50 topics) interpreter-level list
indexing beats numpy's per-call dispatch overhead by an order of
magnitude on these tiny vectors — and are written back to the canonical
numpy arrays at every sweep boundary, which is also the checkpoint
granularity, so the saved-state contract is unchanged.  A log-space
reference sweep is retained behind ``REPRO_GIBBS_REFERENCE`` for
debugging and benchmarking; forcing it records a
``kernel.fallback.lda.gibbs_sweep`` event.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..fastpath import kernel_fallback
from ..obs import span, trace
from ..resilience import CheckpointWriter
from ..utils import EPS, RandomState, ensure_rng
from ..phrases.ranking import FlatTopicModel

#: Environment switch forcing the retained log-space reference sweep.
ENV_REFERENCE_SWEEP = "REPRO_GIBBS_REFERENCE"


def _ll_from_counts(counts: np.ndarray, phi: np.ndarray) -> float:
    """log p(w | z) from a (k, V) token-assignment count matrix.

    Every token assigned to topic z contributes ``log phi[z, w]``; the
    count matrix (which the collapsed sampler already maintains as
    ``n_kw``) makes that a single masked contraction.
    """
    mask = counts != 0
    return float(np.dot(counts[mask],
                        np.log(np.maximum(phi[mask], EPS))))


@dataclass
class LDAModel:
    """Posterior point estimates after Gibbs sampling.

    Attributes:
        phi: topic-word distributions (k, V).
        theta: document-topic distributions (D, k).
        rho: corpus-level topic proportions (k,).
        assignments: final topic label per sampling unit per document.
        log_likelihood: in-sample log p(w | z) at the final state.
    """

    phi: np.ndarray
    theta: np.ndarray
    rho: np.ndarray
    assignments: List[np.ndarray]
    log_likelihood: float

    def to_flat(self) -> FlatTopicModel:
        """Export as the shared flat-model currency for phrase ranking."""
        return FlatTopicModel(rho=self.rho, phi=self.phi)


class LDAGibbs:
    """Collapsed Gibbs sampler for (phrase-constrained) LDA.

    Args:
        num_topics: k.
        alpha: symmetric document-topic Dirichlet hyperparameter.
        beta: symmetric topic-word Dirichlet hyperparameter.
        iterations: Gibbs sweeps.
        seed: RNG seed or generator.
        checkpoint: optional :class:`~repro.resilience.CheckpointWriter`;
            the sampler state — counts, assignments, and the bit
            generator state, so the resumed chain draws exactly the
            numbers the uninterrupted chain would have — is persisted at
            the writer's cadence.
        resume: continue from the checkpoint file when it exists.
    """

    def __init__(self, num_topics: int, alpha: float = 0.1,
                 beta: float = 0.01, iterations: int = 200,
                 seed: RandomState = None,
                 checkpoint: Optional[CheckpointWriter] = None,
                 resume: bool = False) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.iterations = iterations
        self.checkpoint = checkpoint
        self.resume = resume
        self._rng = ensure_rng(seed)
        self.model_: Optional[LDAModel] = None

    def fit(self, docs: Sequence[Sequence[int]], vocab_size: int,
            partitions: Optional[Sequence[Sequence[Tuple[int, ...]]]] = None,
            ) -> LDAModel:
        """Run the sampler.

        Args:
            docs: token-id sequences (ignored when ``partitions`` given,
                except for vocabulary bounds checking).
            vocab_size: V.
            partitions: optional bag-of-phrases per document (from
                ToPMine segmentation); when given, each phrase instance is
                one sampling unit sharing a topic.
        """
        k = self.num_topics
        rng = self._rng
        if partitions is not None:
            units: List[List[Tuple[int, ...]]] = [
                [tuple(p) for p in doc_partition]
                for doc_partition in partitions]
        else:
            units = [[(tok,) for tok in doc] for doc in docs]

        num_docs = len(units)
        saved = None
        if self.checkpoint is not None and self.resume:
            document = self.checkpoint.load()
            if document is not None:
                saved = document["state"]
        if saved is not None:
            # The bit-generator state makes the resumed chain draw the
            # exact numbers the uninterrupted chain would have drawn.
            n_dk = saved["n_dk"]
            n_kw = saved["n_kw"]
            n_k = saved["n_k"]
            assignments = [np.array(a) for a in saved["assignments"]]
            rng.bit_generator.state = saved["rng_state"]
            start = int(saved["iteration"]) + 1
        else:
            n_dk = np.zeros((num_docs, k), dtype=np.int64)
            n_kw = np.zeros((k, vocab_size), dtype=np.int64)
            n_k = np.zeros(k, dtype=np.int64)
            assignments = []

            for d, doc_units in enumerate(units):
                labels = rng.integers(0, k, size=len(doc_units))
                assignments.append(labels)
                for unit, z in zip(doc_units, labels):
                    n_dk[d, z] += len(unit)
                    n_k[z] += len(unit)
                    for w in unit:
                        n_kw[z, w] += 1
            start = 0

        beta_sum = self.beta * vocab_size
        use_reference = os.environ.get(
            ENV_REFERENCE_SWEEP, "").strip().lower() in ("1", "true",
                                                         "yes", "on")
        if use_reference:
            kernel_fallback("lda.gibbs_sweep",
                            f"reference sweep forced by {ENV_REFERENCE_SWEEP}")
        tracer = trace("lda.gibbs", num_topics=k, num_docs=num_docs,
                       num_units=sum(len(u) for u in units),
                       phrase_constrained=partitions is not None)
        for iteration in range(start, self.iterations):
            with span("lda.gibbs.sweep", iteration=iteration):
                if use_reference:
                    self._sweep_reference(units, assignments, n_dk, n_kw,
                                          n_k, beta_sum, rng)
                else:
                    self._sweep(units, assignments, n_dk, n_kw, n_k,
                                beta_sum, rng)

            if tracer.active:
                # Per-sweep likelihood is extra work, so it is computed
                # only while tracing is enabled.
                phi_now = (n_kw + self.beta) / (n_k[:, None] + beta_sum)
                tracer.record(
                    log_likelihood=_ll_from_counts(n_kw, phi_now))
            else:
                tracer.record()
            if self.checkpoint is not None:
                self.checkpoint.maybe_save(iteration, lambda: {  # noqa: E731
                    "iteration": iteration, "n_dk": n_dk, "n_kw": n_kw,
                    "n_k": n_k, "assignments": assignments,
                    "rng_state": rng.bit_generator.state})
        tracer.finish("completed")

        phi = (n_kw + self.beta) / (n_k[:, None] + beta_sum)
        theta = (n_dk + self.alpha) / (
            n_dk.sum(axis=1, keepdims=True) + self.alpha * k)
        rho = n_k / max(n_k.sum(), 1)
        ll = _ll_from_counts(n_kw, phi)
        self.model_ = LDAModel(phi=phi, theta=theta, rho=rho,
                               assignments=assignments, log_likelihood=ll)
        return self.model_

    def _sweep(self, units, assignments, n_dk, n_kw, n_k, beta_sum,
               rng) -> None:
        """One blocked Gibbs sweep (fast kernel), mutating counts in place.

        Counts are transcribed to Python lists for the sweep — ``n_wk``
        transposed so each word's k-vector is one row — and written back
        at the end; all randomness is one batched uniform draw per
        document, consumed by an inverse-CDF scan over the cumulative
        unnormalized conditional.
        """
        k = self.num_topics
        alpha = self.alpha
        beta = self.beta
        topics = range(k)
        n_dk_l = n_dk.tolist()
        n_wk_l = n_kw.T.tolist()
        n_k_l = n_k.tolist()
        for d, doc_units in enumerate(units):
            if not doc_units:
                continue
            labels = assignments[d]
            labels_l = labels.tolist()
            row_d = n_dk_l[d]
            draws = rng.random(len(doc_units)).tolist()
            for u, unit in enumerate(doc_units):
                z_old = labels_l[u]
                size = len(unit)
                row_d[z_old] -= size
                n_k_l[z_old] -= size
                for w in unit:
                    n_wk_l[w][z_old] -= 1

                # Joint conditional for the whole phrase instance, in
                # linear space: the document factor once, one topic-word
                # factor per token with the denominator offset by the
                # token's position (Eq. for PhraseLDA's joint draw).
                if size == 1:
                    row_w = n_wk_l[unit[0]]
                    p = [(row_d[z] + alpha) * (row_w[z] + beta)
                         / (n_k_l[z] + beta_sum) for z in topics]
                else:
                    p = [row_d[z] + alpha for z in topics]
                    for offset, w in enumerate(unit):
                        row_w = n_wk_l[w]
                        for z in topics:
                            p[z] *= (row_w[z] + beta) \
                                / (n_k_l[z] + beta_sum + offset)

                total = 0.0
                cumulative = p
                for z in topics:
                    total += p[z]
                    cumulative[z] = total
                target = draws[u] * total
                z_new = 0
                while z_new < k - 1 and cumulative[z_new] <= target:
                    z_new += 1

                labels_l[u] = z_new
                row_d[z_new] += size
                n_k_l[z_new] += size
                for w in unit:
                    n_wk_l[w][z_new] += 1
            labels[:] = labels_l
        n_dk[:] = n_dk_l
        n_kw[:] = np.asarray(n_wk_l, dtype=n_kw.dtype).T
        n_k[:] = n_k_l

    def _sweep_reference(self, units, assignments, n_dk, n_kw, n_k,
                         beta_sum, rng) -> None:
        """Retained log-space reference sweep (same draw contract).

        Semantically identical to :meth:`_sweep` — same conditional, the
        same one-batched-uniform-per-document randomness, the same
        first-index-past-the-target draw — but evaluated per unit with
        numpy log-space arithmetic.  Kept as the equivalence baseline
        and for ``REPRO_GIBBS_REFERENCE`` debugging.
        """
        k = self.num_topics
        for d, doc_units in enumerate(units):
            if not doc_units:
                continue
            labels = assignments[d]
            draws = rng.random(len(doc_units))
            for u, unit in enumerate(doc_units):
                z_old = labels[u]
                size = len(unit)
                n_dk[d, z_old] -= size
                n_k[z_old] -= size
                for w in unit:
                    n_kw[z_old, w] -= 1

                log_p = np.log(n_dk[d] + self.alpha)
                denom = n_k + beta_sum
                for offset, w in enumerate(unit):
                    log_p = log_p + np.log(n_kw[:, w] + self.beta) \
                        - np.log(denom + offset)
                log_p -= log_p.max()
                p = np.exp(log_p)
                p /= p.sum()
                z_new = min(int(np.searchsorted(np.cumsum(p), draws[u],
                                                side="right")), k - 1)

                labels[u] = z_new
                n_dk[d, z_new] += size
                n_k[z_new] += size
                for w in unit:
                    n_kw[z_new, w] += 1

    @staticmethod
    def _log_likelihood(units, assignments, phi) -> float:
        """In-sample log p(w | z): one scatter + one reduction per call.

        Builds the (k, V) token-assignment count matrix from the units
        and labels (one ``np.add.at`` per document) and contracts it
        with ``log phi`` once, instead of the historical
        token-at-a-time triple loop.
        """
        counts = np.zeros(phi.shape, dtype=np.int64)
        for doc_units, labels in zip(units, assignments):
            if not len(doc_units):
                continue
            words = np.fromiter(
                (w for unit in doc_units for w in unit), dtype=np.int64)
            zs = np.repeat(np.asarray(labels, dtype=np.int64),
                           [len(unit) for unit in doc_units])
            np.add.at(counts, (zs, words), 1)
        return _ll_from_counts(counts, phi)

    def require_model(self) -> LDAModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_
