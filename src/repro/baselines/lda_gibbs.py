"""Latent Dirichlet allocation via collapsed Gibbs sampling.

Serves three roles in the reproduction:

* the maximum-likelihood-family baseline for Chapter 7's scalability and
  robustness comparisons against STROD,
* the topic-model substrate for KERT (a background LDA, Section 4.4.3),
* phrase-constrained LDA ("PhraseLDA") for ToPMine: all tokens of a
  phrase instance share one topic assignment, sampled jointly, which the
  paper notes often makes it *faster* than token-level LDA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from ..obs import span, trace
from ..resilience import CheckpointWriter
from ..utils import EPS, RandomState, ensure_rng
from ..phrases.ranking import FlatTopicModel


@dataclass
class LDAModel:
    """Posterior point estimates after Gibbs sampling.

    Attributes:
        phi: topic-word distributions (k, V).
        theta: document-topic distributions (D, k).
        rho: corpus-level topic proportions (k,).
        assignments: final topic label per sampling unit per document.
        log_likelihood: in-sample log p(w | z) at the final state.
    """

    phi: np.ndarray
    theta: np.ndarray
    rho: np.ndarray
    assignments: List[np.ndarray]
    log_likelihood: float

    def to_flat(self) -> FlatTopicModel:
        """Export as the shared flat-model currency for phrase ranking."""
        return FlatTopicModel(rho=self.rho, phi=self.phi)


class LDAGibbs:
    """Collapsed Gibbs sampler for (phrase-constrained) LDA.

    Args:
        num_topics: k.
        alpha: symmetric document-topic Dirichlet hyperparameter.
        beta: symmetric topic-word Dirichlet hyperparameter.
        iterations: Gibbs sweeps.
        seed: RNG seed or generator.
        checkpoint: optional :class:`~repro.resilience.CheckpointWriter`;
            the sampler state — counts, assignments, and the bit
            generator state, so the resumed chain draws exactly the
            numbers the uninterrupted chain would have — is persisted at
            the writer's cadence.
        resume: continue from the checkpoint file when it exists.
    """

    def __init__(self, num_topics: int, alpha: float = 0.1,
                 beta: float = 0.01, iterations: int = 200,
                 seed: RandomState = None,
                 checkpoint: Optional[CheckpointWriter] = None,
                 resume: bool = False) -> None:
        if num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.iterations = iterations
        self.checkpoint = checkpoint
        self.resume = resume
        self._rng = ensure_rng(seed)
        self.model_: Optional[LDAModel] = None

    def fit(self, docs: Sequence[Sequence[int]], vocab_size: int,
            partitions: Optional[Sequence[Sequence[Tuple[int, ...]]]] = None,
            ) -> LDAModel:
        """Run the sampler.

        Args:
            docs: token-id sequences (ignored when ``partitions`` given,
                except for vocabulary bounds checking).
            vocab_size: V.
            partitions: optional bag-of-phrases per document (from
                ToPMine segmentation); when given, each phrase instance is
                one sampling unit sharing a topic.
        """
        k = self.num_topics
        rng = self._rng
        if partitions is not None:
            units: List[List[Tuple[int, ...]]] = [
                [tuple(p) for p in doc_partition]
                for doc_partition in partitions]
        else:
            units = [[(tok,) for tok in doc] for doc in docs]

        num_docs = len(units)
        saved = None
        if self.checkpoint is not None and self.resume:
            document = self.checkpoint.load()
            if document is not None:
                saved = document["state"]
        if saved is not None:
            # The bit-generator state makes the resumed chain draw the
            # exact numbers the uninterrupted chain would have drawn.
            n_dk = saved["n_dk"]
            n_kw = saved["n_kw"]
            n_k = saved["n_k"]
            assignments = [np.array(a) for a in saved["assignments"]]
            rng.bit_generator.state = saved["rng_state"]
            start = int(saved["iteration"]) + 1
        else:
            n_dk = np.zeros((num_docs, k), dtype=np.int64)
            n_kw = np.zeros((k, vocab_size), dtype=np.int64)
            n_k = np.zeros(k, dtype=np.int64)
            assignments = []

            for d, doc_units in enumerate(units):
                labels = rng.integers(0, k, size=len(doc_units))
                assignments.append(labels)
                for unit, z in zip(doc_units, labels):
                    n_dk[d, z] += len(unit)
                    n_k[z] += len(unit)
                    for w in unit:
                        n_kw[z, w] += 1
            start = 0

        beta_sum = self.beta * vocab_size
        tracer = trace("lda.gibbs", num_topics=k, num_docs=num_docs,
                       num_units=sum(len(u) for u in units),
                       phrase_constrained=partitions is not None)
        for iteration in range(start, self.iterations):
            with span("lda.gibbs.sweep", iteration=iteration):
                for d, doc_units in enumerate(units):
                    labels = assignments[d]
                    for u, unit in enumerate(doc_units):
                        z_old = labels[u]
                        size = len(unit)
                        n_dk[d, z_old] -= size
                        n_k[z_old] -= size
                        for w in unit:
                            n_kw[z_old, w] -= 1

                        # Joint conditional for the whole phrase instance:
                        # the document factor uses the unit count once; the
                        # word factor multiplies each token's topic-word
                        # term.
                        log_p = np.log(n_dk[d] + self.alpha)
                        denom = n_k + beta_sum
                        for offset, w in enumerate(unit):
                            log_p = log_p + np.log(
                                n_kw[:, w] + self.beta + EPS) - np.log(
                                denom + offset)
                        log_p -= log_p.max()
                        p = np.exp(log_p)
                        p /= p.sum()
                        z_new = int(rng.choice(k, p=p))

                        labels[u] = z_new
                        n_dk[d, z_new] += size
                        n_k[z_new] += size
                        for w in unit:
                            n_kw[z_new, w] += 1

            if tracer.active:
                # Per-sweep likelihood is extra work, so it is computed
                # only while tracing is enabled.
                phi_now = (n_kw + self.beta) / (n_k[:, None] + beta_sum)
                tracer.record(log_likelihood=self._log_likelihood(
                    units, assignments, phi_now))
            else:
                tracer.record()
            if self.checkpoint is not None:
                self.checkpoint.maybe_save(iteration, lambda: {  # noqa: E731
                    "iteration": iteration, "n_dk": n_dk, "n_kw": n_kw,
                    "n_k": n_k, "assignments": assignments,
                    "rng_state": rng.bit_generator.state})
        tracer.finish("completed")

        phi = (n_kw + self.beta) / (n_k[:, None] + beta_sum)
        theta = (n_dk + self.alpha) / (
            n_dk.sum(axis=1, keepdims=True) + self.alpha * k)
        rho = n_k / max(n_k.sum(), 1)
        ll = self._log_likelihood(units, assignments, phi)
        self.model_ = LDAModel(phi=phi, theta=theta, rho=rho,
                               assignments=assignments, log_likelihood=ll)
        return self.model_

    @staticmethod
    def _log_likelihood(units, assignments, phi) -> float:
        ll = 0.0
        for doc_units, labels in zip(units, assignments):
            for unit, z in zip(doc_units, labels):
                for w in unit:
                    ll += float(np.log(max(phi[z, w], EPS)))
        return ll

    def require_model(self) -> LDAModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_
