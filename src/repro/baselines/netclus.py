"""NetClus-style ranking-clustering for star-schema networks.

The comparison method of Section 3.3 (Sun et al.): documents are the
star center linked to multi-typed attribute objects (terms, authors,
venues / persons, locations).  The algorithm alternates between

* computing, per cluster, a *conditional ranking distribution* over each
  attribute type (smoothed against the background distribution with the
  parameter ``lambda_s``), and
* re-assigning each document to clusters by the posterior probability of
  its attached objects under the cluster rankings.

Unlike CATHYHIN it hard-partitions documents, has no unified objective,
and does not model link-type importance — the properties the Chapter 3
experiments contrast against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from ..errors import ConfigurationError, NotFittedError
from ..network import TERM_TYPE
from ..utils import EPS, RandomState, ensure_rng


@dataclass
class NetClusModel:
    """Fitted NetClus clusters.

    Attributes:
        rankings: per node type, a (k, n_type) array of conditional
            ranking distributions; ``names[type]`` aligns the columns.
        assignments: hard cluster label per document.
        posteriors: (D, k) soft posteriors from the final iteration.
    """

    rankings: Dict[str, np.ndarray]
    names: Dict[str, List[str]]
    assignments: np.ndarray
    posteriors: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of clusters k."""
        return self.posteriors.shape[1]

    def top_nodes(self, node_type: str, cluster: int,
                  k: int = 10) -> List[str]:
        """The k most probable type-x nodes in one cluster."""
        dist = self.rankings[node_type][cluster]
        order = np.argsort(-dist, kind="stable")
        return [self.names[node_type][i] for i in order[:k]]

    def topic_distribution(self, node_type: str,
                           cluster: int) -> Dict[str, float]:
        """One cluster's ranking distribution as a name -> probability dict."""
        dist = self.rankings[node_type][cluster]
        return {name: float(p)
                for name, p in zip(self.names[node_type], dist) if p > 0}


class NetClus:
    """Ranking-clustering over a document-centered star schema.

    Args:
        num_clusters: k.
        smoothing: lambda_S, mixing weight of the global background
            distribution into each cluster ranking (grid-tuned in the
            paper's experiments).
        max_iter: alternation rounds.
        seed: RNG seed or generator.
    """

    def __init__(self, num_clusters: int, smoothing: float = 0.3,
                 max_iter: int = 30, seed: RandomState = None) -> None:
        if num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if not 0 <= smoothing < 1:
            raise ConfigurationError("smoothing must be in [0, 1)")
        self.num_clusters = num_clusters
        self.smoothing = smoothing
        self.max_iter = max_iter
        self._rng = ensure_rng(seed)
        self.model_: Optional[NetClusModel] = None

    def fit(self, corpus: Corpus,
            entity_types: Optional[Sequence[str]] = None) -> NetClusModel:
        """Cluster the documents of ``corpus`` and rank attached objects."""
        if entity_types is None:
            entity_types = corpus.entity_types()
        node_types = [TERM_TYPE] + list(entity_types)

        # Build per-document attribute id lists and per-type name spaces.
        names: Dict[str, List[str]] = {t: [] for t in node_types}
        index: Dict[str, Dict[str, int]] = {t: {} for t in node_types}

        def intern(node_type: str, name: str) -> int:
            mapping = index[node_type]
            if name not in mapping:
                mapping[name] = len(names[node_type])
                names[node_type].append(name)
            return mapping[name]

        doc_objects: List[Dict[str, List[int]]] = []
        for doc in corpus:
            attached: Dict[str, List[int]] = {t: [] for t in node_types}
            for tok in doc.tokens:
                attached[TERM_TYPE].append(
                    intern(TERM_TYPE, corpus.vocabulary.word_of(tok)))
            for etype in entity_types:
                for name in doc.entity_list(etype):
                    attached[etype].append(intern(etype, name))
            doc_objects.append(attached)

        background = {
            t: self._background(doc_objects, t, len(names[t]))
            for t in node_types}

        k = self.num_clusters
        num_docs = len(corpus)
        assignments = self._rng.integers(0, k, size=num_docs)

        rankings: Dict[str, np.ndarray] = {}
        posteriors = np.zeros((num_docs, k))
        for _ in range(self.max_iter):
            rankings = {
                t: self._cluster_rankings(doc_objects, assignments, t,
                                          len(names[t]), background[t])
                for t in node_types}
            log_priors = np.log(np.maximum(
                np.bincount(assignments, minlength=k) / num_docs, EPS))
            new_assignments = np.empty(num_docs, dtype=np.int64)
            for d, attached in enumerate(doc_objects):
                log_post = np.array(log_priors)
                for t in node_types:
                    ids = attached[t]
                    if ids:
                        log_post = log_post + np.log(
                            np.maximum(rankings[t][:, ids], EPS)).sum(axis=1)
                log_post -= log_post.max()
                post = np.exp(log_post)
                post /= max(post.sum(), EPS)
                posteriors[d] = post
                new_assignments[d] = int(post.argmax())
            if np.array_equal(new_assignments, assignments):
                assignments = new_assignments
                break
            assignments = new_assignments

        self.model_ = NetClusModel(rankings=rankings, names=names,
                                   assignments=assignments,
                                   posteriors=posteriors)
        return self.model_

    @staticmethod
    def _background(doc_objects, node_type: str, size: int) -> np.ndarray:
        counts = np.zeros(size)
        for attached in doc_objects:
            for i in attached[node_type]:
                counts[i] += 1
        total = counts.sum()
        return counts / total if total > 0 else np.full(size, 1.0 / max(size, 1))

    def _cluster_rankings(self, doc_objects, assignments, node_type: str,
                          size: int, background: np.ndarray) -> np.ndarray:
        counts = np.zeros((self.num_clusters, size))
        for attached, z in zip(doc_objects, assignments):
            for i in attached[node_type]:
                counts[z, i] += 1
        totals = np.maximum(counts.sum(axis=1, keepdims=True), EPS)
        conditional = counts / totals
        return ((1 - self.smoothing) * conditional
                + self.smoothing * background[None, :])

    def require_model(self) -> NetClusModel:
        """Return the fitted model or raise :class:`NotFittedError`."""
        if self.model_ is None:
            raise NotFittedError("call fit() first")
        return self.model_
