"""Edge-weighted heterogeneous network (the G^t of Chapter 3).

A :class:`HeterogeneousNetwork` holds typed nodes and non-negative link
weights grouped by link type.  Link types are *unordered* pairs of node
types; within a type pair the node pair is stored canonically so that each
undirected link appears exactly once.  This matches the dissertation's
model, which duplicates undirected links in both directions only as a
modelling device (Section 3.2.1) — the sufficient statistics are symmetric.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import DataError

LinkType = Tuple[str, str]
LinkKey = Tuple[int, int]


def canonical_link_type(type_x: str, type_y: str) -> LinkType:
    """Order a node-type pair canonically (lexicographically)."""
    return (type_x, type_y) if type_x <= type_y else (type_y, type_x)


class HeterogeneousNetwork:
    """Typed nodes plus weighted links grouped by unordered link type.

    Node identities are (type, name) pairs; each type has its own dense
    integer index space.  Link weights are floats so subnetworks produced
    by soft clustering (expected link weights, Eq. 3.23) are representable.
    """

    def __init__(self, node_types: Iterable[str] = ()) -> None:
        self._names: Dict[str, List[str]] = {}
        self._index: Dict[str, Dict[str, int]] = {}
        self._links: Dict[LinkType, Dict[LinkKey, float]] = {}
        for node_type in node_types:
            self.add_node_type(node_type)

    # ------------------------------------------------------------------ nodes
    def add_node_type(self, node_type: str) -> None:
        """Register an (initially empty) node type."""
        if node_type not in self._names:
            self._names[node_type] = []
            self._index[node_type] = {}

    def add_node(self, node_type: str, name: str) -> int:
        """Add a node (idempotent) and return its per-type index."""
        self.add_node_type(node_type)
        index = self._index[node_type]
        existing = index.get(name)
        if existing is not None:
            return existing
        node_id = len(self._names[node_type])
        self._names[node_type].append(name)
        index[name] = node_id
        return node_id

    def node_types(self) -> List[str]:
        """All registered node types, sorted."""
        return sorted(self._names)

    def node_names(self, node_type: str) -> List[str]:
        """Names of all nodes of ``node_type`` in index order."""
        self._require_type(node_type)
        return list(self._names[node_type])

    def node_count(self, node_type: str) -> int:
        """Number of nodes of ``node_type``."""
        self._require_type(node_type)
        return len(self._names[node_type])

    def node_id(self, node_type: str, name: str) -> int:
        """Index of a named node; raises :class:`DataError` if absent."""
        self._require_type(node_type)
        try:
            return self._index[node_type][name]
        except KeyError:
            raise DataError(f"no {node_type} node named {name!r}") from None

    def has_node(self, node_type: str, name: str) -> bool:
        """True when a node of that type and name exists."""
        return node_type in self._index and name in self._index[node_type]

    # ------------------------------------------------------------------ links
    @staticmethod
    def _canonical_key(link_type: LinkType, i: int, j: int) -> LinkKey:
        type_x, type_y = link_type
        if type_x == type_y and i > j:
            return (j, i)
        return (i, j)

    def add_link(self, type_x: str, i: int, type_y: str, j: int,
                 weight: float = 1.0) -> None:
        """Accumulate ``weight`` onto the undirected link (x:i, y:j)."""
        if weight < 0:
            raise DataError("link weights must be non-negative")
        self._require_type(type_x)
        self._require_type(type_y)
        self._check_index(type_x, i)
        self._check_index(type_y, j)
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        key = self._canonical_key(link_type, i, j)
        bucket = self._links.setdefault(link_type, {})
        bucket[key] = bucket.get(key, 0.0) + float(weight)

    def set_link(self, type_x: str, i: int, type_y: str, j: int,
                 weight: float) -> None:
        """Overwrite (rather than accumulate) a link weight."""
        if weight < 0:
            raise DataError("link weights must be non-negative")
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        key = self._canonical_key(link_type, i, j)
        bucket = self._links.setdefault(link_type, {})
        if weight == 0:
            bucket.pop(key, None)
        else:
            bucket[key] = float(weight)

    def link_weight(self, type_x: str, i: int, type_y: str, j: int) -> float:
        """Weight of the undirected link (0.0 when absent)."""
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        key = self._canonical_key(link_type, i, j)
        return self._links.get(link_type, {}).get(key, 0.0)

    def link_types(self) -> List[LinkType]:
        """Link types with at least one non-zero link, sorted."""
        return sorted(lt for lt, bucket in self._links.items() if bucket)

    def links(self, link_type: LinkType) -> Iterator[Tuple[int, int, float]]:
        """Iterate (i, j, weight) over the links of ``link_type``."""
        canonical = canonical_link_type(*link_type)
        for (i, j), weight in self._links.get(canonical, {}).items():
            yield i, j, weight

    def link_dict(self, link_type: LinkType) -> Dict[LinkKey, float]:
        """A copy of the weight mapping for ``link_type``."""
        canonical = canonical_link_type(*link_type)
        return dict(self._links.get(canonical, {}))

    def total_weight(self, link_type: Optional[LinkType] = None) -> float:
        """Sum of link weights for one link type, or over all types."""
        if link_type is not None:
            canonical = canonical_link_type(*link_type)
            return float(sum(self._links.get(canonical, {}).values()))
        return float(sum(sum(bucket.values())
                         for bucket in self._links.values()))

    def num_links(self, link_type: Optional[LinkType] = None) -> int:
        """Count of non-zero stored links (n_{x,y} in the paper)."""
        if link_type is not None:
            canonical = canonical_link_type(*link_type)
            return len(self._links.get(canonical, {}))
        return sum(len(bucket) for bucket in self._links.values())

    # ------------------------------------------------------------ subnetworks
    def subnetwork(self,
                   link_weights: Mapping[LinkType, Mapping[LinkKey, float]],
                   min_weight: float = 1.0) -> "HeterogeneousNetwork":
        """Build a child network from per-link expected weights.

        Implements the recursion step of Section 3.2.1: links whose expected
        topic weight falls below ``min_weight`` are dropped, and nodes keep
        their identity (name) so rankings remain comparable across levels.
        Isolated nodes are *not* added to the child network.
        """
        child = HeterogeneousNetwork()
        for link_type, bucket in link_weights.items():
            canonical = canonical_link_type(*link_type)
            type_x, type_y = canonical
            for (i, j), weight in bucket.items():
                if weight < min_weight:
                    continue
                name_x = self._names[type_x][i]
                name_y = self._names[type_y][j]
                new_i = child.add_node(type_x, name_x)
                new_j = child.add_node(type_y, name_y)
                child.add_link(type_x, new_i, type_y, new_j, weight)
        return child

    # -------------------------------------------------------------- utilities
    def degree(self, node_type: str, node_id: int) -> float:
        """Total weight of links incident to one node (self-links once)."""
        self._require_type(node_type)
        self._check_index(node_type, node_id)
        total = 0.0
        for (type_x, type_y), bucket in self._links.items():
            if node_type not in (type_x, type_y):
                continue
            for (i, j), weight in bucket.items():
                if type_x == node_type and i == node_id:
                    total += weight
                elif type_y == node_type and j == node_id and not (
                        type_x == type_y and i == node_id):
                    total += weight
        return total

    def _require_type(self, node_type: str) -> None:
        if node_type not in self._names:
            raise DataError(f"unknown node type: {node_type!r}")

    def _check_index(self, node_type: str, node_id: int) -> None:
        if not 0 <= node_id < len(self._names[node_type]):
            raise DataError(
                f"{node_type} node id {node_id} out of range "
                f"(have {len(self._names[node_type])})")

    def __repr__(self) -> str:
        types = ", ".join(f"{t}:{len(names)}"
                          for t, names in sorted(self._names.items()))
        return (f"HeterogeneousNetwork({types}; links={self.num_links()}, "
                f"weight={self.total_weight():.1f})")
