"""Edge-weighted heterogeneous network (the G^t of Chapter 3).

A :class:`HeterogeneousNetwork` holds typed nodes and non-negative link
weights grouped by link type.  Link types are *unordered* pairs of node
types; within a type pair the node pair is stored canonically so that each
undirected link appears exactly once.  This matches the dissertation's
model, which duplicates undirected links in both directions only as a
modelling device (Section 3.2.1) — the sufficient statistics are symmetric.

Storage is a COO-build / CSR-freeze backbone: mutations append to
per-link-type triplet buffers, and every read first *freezes* the buffer
into deduplicated, key-sorted index/weight arrays (duplicate pairs sum,
matching the old dict-accumulate semantics).  Solvers pull those arrays
zero-copy via :meth:`HeterogeneousNetwork.link_arrays` (or as a
:mod:`scipy.sparse` CSR matrix via :meth:`link_matrix`) instead of
iterating links one Python tuple at a time.
"""

from __future__ import annotations

from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..errors import DataError

try:  # scipy is a hard dependency, but the backbone degrades gracefully
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via fallback tests
    _sparse = None

LinkType = Tuple[str, str]
LinkKey = Tuple[int, int]
LinkArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


def canonical_link_type(type_x: str, type_y: str) -> LinkType:
    """Order a node-type pair canonically (lexicographically)."""
    return (type_x, type_y) if type_x <= type_y else (type_y, type_x)


class _LinkStore:
    """One link type's weights: COO build buffers plus a frozen view.

    ``rows``/``cols``/``weights`` hold the deduplicated links sorted by
    the scalar key ``row * enc_cols + col`` — the canonical CSR ordering.
    Mutations go into cheap append buffers; :meth:`freeze` merges them
    with one vectorized sort-and-reduce pass.
    """

    __slots__ = ("rows", "cols", "weights", "_keys", "_enc_cols",
                 "_pend_i", "_pend_j", "_pend_w", "_chunks", "_matrix")

    def __init__(self) -> None:
        self.rows = np.empty(0, dtype=np.int64)
        self.cols = np.empty(0, dtype=np.int64)
        self.weights = np.empty(0, dtype=np.float64)
        self._keys = np.empty(0, dtype=np.int64)
        self._enc_cols = 1
        self._pend_i: List[int] = []
        self._pend_j: List[int] = []
        self._pend_w: List[float] = []
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._matrix = None

    # _matrix is a derived scipy handle; drop it when pickling so workers
    # ship plain arrays and rebuild the CSR lazily.
    def __getstate__(self) -> Tuple:
        return (self.rows, self.cols, self.weights, self._keys,
                self._enc_cols, self._pend_i, self._pend_j, self._pend_w,
                self._chunks)

    def __setstate__(self, state: Tuple) -> None:
        (self.rows, self.cols, self.weights, self._keys, self._enc_cols,
         self._pend_i, self._pend_j, self._pend_w, self._chunks) = state
        self._matrix = None

    @property
    def dirty(self) -> bool:
        """True when appended links have not been folded in yet."""
        return bool(self._pend_i or self._chunks)

    def __len__(self) -> int:
        """Stored links after the last freeze (callers freeze first)."""
        return len(self.weights)

    def append(self, i: int, j: int, weight: float) -> None:
        """Buffer one accumulating link."""
        self._pend_i.append(i)
        self._pend_j.append(j)
        self._pend_w.append(weight)
        self._matrix = None

    def append_arrays(self, i_idx: np.ndarray, j_idx: np.ndarray,
                      weights: np.ndarray) -> None:
        """Buffer a whole edge-list column (the bulk build path)."""
        self._chunks.append((i_idx, j_idx, weights))
        self._matrix = None

    def freeze(self, num_cols: int) -> None:
        """Fold the append buffers into the deduplicated sorted arrays."""
        if not self.dirty:
            return
        parts_i: List[np.ndarray] = [self.rows]
        parts_j: List[np.ndarray] = [self.cols]
        parts_w: List[np.ndarray] = [self.weights]
        if self._pend_i:
            parts_i.append(np.asarray(self._pend_i, dtype=np.int64))
            parts_j.append(np.asarray(self._pend_j, dtype=np.int64))
            parts_w.append(np.asarray(self._pend_w, dtype=np.float64))
        for chunk_i, chunk_j, chunk_w in self._chunks:
            parts_i.append(chunk_i)
            parts_j.append(chunk_j)
            parts_w.append(chunk_w)
        i_all = np.concatenate(parts_i)
        j_all = np.concatenate(parts_j)
        w_all = np.concatenate(parts_w)
        enc = max(int(num_cols), 1)
        keys = i_all * enc + j_all
        uniq, inverse = np.unique(keys, return_inverse=True)
        self.weights = np.bincount(inverse, weights=w_all,
                                   minlength=len(uniq))
        self.rows = uniq // enc
        self.cols = uniq - self.rows * enc
        self._keys = uniq
        self._enc_cols = enc
        self._pend_i = []
        self._pend_j = []
        self._pend_w = []
        self._chunks = []
        self._matrix = None

    def find(self, i: int, j: int) -> int:
        """Position of link (i, j) in the frozen arrays, or -1."""
        if j >= self._enc_cols or i < 0 or j < 0:
            # Encoded after a smaller freeze: the pair cannot be stored
            # (new columns always arrive with pending links, which would
            # have re-frozen with a larger encoding).
            return -1
        key = i * self._enc_cols + j
        pos = int(np.searchsorted(self._keys, key))
        if pos < len(self._keys) and self._keys[pos] == key:
            return pos
        return -1

    def set_weight(self, pos: int, weight: float) -> None:
        """Overwrite one frozen entry in place."""
        self.weights[pos] = weight
        self._matrix = None

    def delete(self, pos: int) -> None:
        """Physically remove one frozen entry (rare: ``set_link(0)``)."""
        keep = np.ones(len(self.weights), dtype=bool)
        keep[pos] = False
        self.rows = self.rows[keep]
        self.cols = self.cols[keep]
        self.weights = self.weights[keep]
        self._keys = self._keys[keep]
        self._matrix = None

    def matrix(self, shape: Tuple[int, int]):
        """The frozen links as a :class:`scipy.sparse.csr_matrix`."""
        if self._matrix is not None and self._matrix.shape == shape:
            return self._matrix
        mat = _sparse.coo_matrix(
            (self.weights, (self.rows, self.cols)), shape=shape).tocsr()
        self._matrix = mat
        return mat


#: ``subnetwork`` accepts either the classic per-link dict buckets or
#: zero-copy (i_idx, j_idx, weights) array triples per link type.
LinkWeights = Mapping[LinkType,
                      Union[Mapping[LinkKey, float], LinkArrays]]


class HeterogeneousNetwork:
    """Typed nodes plus weighted links grouped by unordered link type.

    Node identities are (type, name) pairs; each type has its own dense
    integer index space.  Link weights are floats so subnetworks produced
    by soft clustering (expected link weights, Eq. 3.23) are representable.
    """

    def __init__(self, node_types: Iterable[str] = ()) -> None:
        self._names: Dict[str, List[str]] = {}
        self._index: Dict[str, Dict[str, int]] = {}
        self._links: Dict[LinkType, _LinkStore] = {}
        self._version = 0
        self._degree_cache: Dict[str, Tuple[int, np.ndarray]] = {}
        for node_type in node_types:
            self.add_node_type(node_type)

    # ------------------------------------------------------------------ nodes
    def add_node_type(self, node_type: str) -> None:
        """Register an (initially empty) node type."""
        if node_type not in self._names:
            self._names[node_type] = []
            self._index[node_type] = {}

    def add_node(self, node_type: str, name: str) -> int:
        """Add a node (idempotent) and return its per-type index."""
        self.add_node_type(node_type)
        index = self._index[node_type]
        existing = index.get(name)
        if existing is not None:
            return existing
        node_id = len(self._names[node_type])
        self._names[node_type].append(name)
        index[name] = node_id
        self._version += 1
        return node_id

    def add_nodes(self, node_type: str, names: Iterable[str]) -> np.ndarray:
        """Bulk-add nodes; returns their per-type indices as an array."""
        self.add_node_type(node_type)
        index = self._index[node_type]
        name_list = self._names[node_type]
        ids: List[int] = []
        for name in names:
            existing = index.get(name)
            if existing is None:
                existing = len(name_list)
                name_list.append(name)
                index[name] = existing
            ids.append(existing)
        self._version += 1
        return np.asarray(ids, dtype=np.int64)

    def node_types(self) -> List[str]:
        """All registered node types, sorted."""
        return sorted(self._names)

    def node_names(self, node_type: str) -> List[str]:
        """Names of all nodes of ``node_type`` in index order."""
        self._require_type(node_type)
        return list(self._names[node_type])

    def node_count(self, node_type: str) -> int:
        """Number of nodes of ``node_type``."""
        self._require_type(node_type)
        return len(self._names[node_type])

    def node_id(self, node_type: str, name: str) -> int:
        """Index of a named node; raises :class:`DataError` if absent."""
        self._require_type(node_type)
        try:
            return self._index[node_type][name]
        except KeyError:
            raise DataError(f"no {node_type} node named {name!r}") from None

    def has_node(self, node_type: str, name: str) -> bool:
        """True when a node of that type and name exists."""
        return node_type in self._index and name in self._index[node_type]

    # ------------------------------------------------------------------ links
    @staticmethod
    def _canonical_key(link_type: LinkType, i: int, j: int) -> LinkKey:
        type_x, type_y = link_type
        if type_x == type_y and i > j:
            return (j, i)
        return (i, j)

    def _store(self, link_type: LinkType) -> _LinkStore:
        store = self._links.get(link_type)
        if store is None:
            store = _LinkStore()
            self._links[link_type] = store
        return store

    def _frozen(self, link_type: LinkType) -> Optional[_LinkStore]:
        """The frozen store for a canonical link type, or None."""
        store = self._links.get(link_type)
        if store is None:
            return None
        if store.dirty:
            store.freeze(len(self._names[link_type[1]]))
        return store

    def add_link(self, type_x: str, i: int, type_y: str, j: int,
                 weight: float = 1.0) -> None:
        """Accumulate ``weight`` onto the undirected link (x:i, y:j)."""
        if weight < 0:
            raise DataError("link weights must be non-negative")
        self._require_type(type_x)
        self._require_type(type_y)
        self._check_index(type_x, i)
        self._check_index(type_y, j)
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        i, j = self._canonical_key(link_type, i, j)
        self._store(link_type).append(i, j, float(weight))
        self._version += 1

    def add_links(self, type_x: str, i_idx: Sequence[int], type_y: str,
                  j_idx: Sequence[int],
                  weights: Union[None, float, Sequence[float]] = None,
                  ) -> None:
        """Accumulate a whole edge list columnwise (the bulk build path).

        ``i_idx``/``j_idx`` are parallel index arrays; ``weights`` is a
        parallel array, a scalar broadcast to every link, or None for
        unit weights.  Equivalent to calling :meth:`add_link` per edge,
        but validated and canonicalized in one vectorized pass.
        """
        self._require_type(type_x)
        self._require_type(type_y)
        i_arr = np.ascontiguousarray(i_idx, dtype=np.int64)
        j_arr = np.ascontiguousarray(j_idx, dtype=np.int64)
        if i_arr.shape != j_arr.shape or i_arr.ndim != 1:
            raise DataError("add_links expects parallel 1-D index arrays")
        if len(i_arr) == 0:
            return
        if weights is None:
            w_arr = np.ones(len(i_arr), dtype=np.float64)
        else:
            w_arr = np.broadcast_to(
                np.asarray(weights, dtype=np.float64),
                i_arr.shape).astype(np.float64, copy=True)
        if np.any(w_arr < 0):
            raise DataError("link weights must be non-negative")
        for node_type, arr in ((type_x, i_arr), (type_y, j_arr)):
            count = len(self._names[node_type])
            low = int(arr.min())
            high = int(arr.max())
            if low < 0 or high >= count:
                raise DataError(
                    f"{node_type} node id {low if low < 0 else high} out "
                    f"of range (have {count})")
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i_arr, j_arr = j_arr, i_arr
        if link_type[0] == link_type[1]:
            flip = i_arr > j_arr
            if np.any(flip):
                i_new = np.where(flip, j_arr, i_arr)
                j_arr = np.where(flip, i_arr, j_arr)
                i_arr = i_new
        self._store(link_type).append_arrays(i_arr, j_arr, w_arr)
        self._version += 1

    def set_link(self, type_x: str, i: int, type_y: str, j: int,
                 weight: float) -> None:
        """Overwrite (rather than accumulate) a link weight."""
        if weight < 0:
            raise DataError("link weights must be non-negative")
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        i, j = self._canonical_key(link_type, i, j)
        self.add_node_type(link_type[0])
        self.add_node_type(link_type[1])
        store = self._store(link_type)
        store.freeze(len(self._names[link_type[1]]))
        pos = store.find(i, j)
        if pos < 0:
            if weight != 0:
                store.append(i, j, float(weight))
        elif weight == 0:
            store.delete(pos)
        else:
            store.set_weight(pos, float(weight))
        self._version += 1

    def link_weight(self, type_x: str, i: int, type_y: str, j: int) -> float:
        """Weight of the undirected link (0.0 when absent)."""
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        i, j = self._canonical_key(link_type, i, j)
        store = self._frozen(link_type)
        if store is None:
            return 0.0
        pos = store.find(i, j)
        return float(store.weights[pos]) if pos >= 0 else 0.0

    def link_types(self) -> List[LinkType]:
        """Link types with at least one stored link, sorted."""
        result = []
        for link_type in self._links:
            store = self._frozen(link_type)
            if store is not None and len(store):
                result.append(link_type)
        return sorted(result)

    def links(self, link_type: LinkType) -> Iterator[Tuple[int, int, float]]:
        """Iterate (i, j, weight) over the links of ``link_type``.

        Links stream in CSR order — sorted by (i, j) — which is also the
        order of :meth:`link_arrays`.
        """
        store = self._frozen(canonical_link_type(*link_type))
        if store is None:
            return
        yield from zip(store.rows.tolist(), store.cols.tolist(),
                       store.weights.tolist())

    def link_arrays(self, link_type: LinkType) -> LinkArrays:
        """The links of ``link_type`` as (i_idx, j_idx, weights) arrays.

        This is the zero-copy solver entry point: the arrays are the
        frozen storage itself, sorted by (i, j).  Treat them as
        read-only; mutate via :meth:`add_link`/:meth:`set_link` only.
        """
        store = self._frozen(canonical_link_type(*link_type))
        if store is None:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, np.empty(0, dtype=np.int64), np.empty(0)
        return store.rows, store.cols, store.weights

    def link_matrix(self, link_type: LinkType):
        """The links of ``link_type`` as a ``scipy.sparse`` CSR matrix.

        Shape is ``(node_count(type_x), node_count(type_y))`` in the
        canonical type order.  Raises :class:`DataError` when scipy is
        unavailable (after recording a ``kernel.fallback`` metric).
        """
        canonical = canonical_link_type(*link_type)
        if _sparse is None:
            from ..fastpath import kernel_fallback
            kernel_fallback("network.link_matrix", "scipy unavailable")
            raise DataError("scipy is required for link_matrix()")
        self._require_type(canonical[0])
        self._require_type(canonical[1])
        shape = (len(self._names[canonical[0]]),
                 len(self._names[canonical[1]]))
        store = self._frozen(canonical)
        if store is None:
            return _sparse.csr_matrix(shape)
        return store.matrix(shape)

    def link_dict(self, link_type: LinkType) -> Dict[LinkKey, float]:
        """A copy of the weight mapping for ``link_type``."""
        store = self._frozen(canonical_link_type(*link_type))
        if store is None:
            return {}
        return dict(zip(zip(store.rows.tolist(), store.cols.tolist()),
                        store.weights.tolist()))

    def total_weight(self, link_type: Optional[LinkType] = None) -> float:
        """Sum of link weights for one link type, or over all types."""
        if link_type is not None:
            store = self._frozen(canonical_link_type(*link_type))
            return float(store.weights.sum()) if store is not None else 0.0
        total = 0.0
        for lt in self._links:
            store = self._frozen(lt)
            if store is not None:
                total += float(store.weights.sum())
        return total

    def num_links(self, link_type: Optional[LinkType] = None) -> int:
        """Count of stored links (n_{x,y} in the paper)."""
        if link_type is not None:
            store = self._frozen(canonical_link_type(*link_type))
            return len(store) if store is not None else 0
        return sum(len(self._frozen(lt) or ()) for lt in list(self._links))

    # ------------------------------------------------------------ subnetworks
    def subnetwork(self, link_weights: LinkWeights,
                   min_weight: float = 1.0) -> "HeterogeneousNetwork":
        """Build a child network from per-link expected weights.

        Implements the recursion step of Section 3.2.1: links whose expected
        topic weight falls below ``min_weight`` are dropped, and nodes keep
        their identity (name) so rankings remain comparable across levels.
        Isolated nodes are *not* added to the child network.

        ``link_weights`` maps each link type to either a ``{(i, j):
        weight}`` mapping (the classic interface) or an ``(i_idx, j_idx,
        weights)`` array triple (the zero-copy solver path).
        """
        child = HeterogeneousNetwork()
        for link_type, bucket in link_weights.items():
            canonical = canonical_link_type(*link_type)
            type_x, type_y = canonical
            if isinstance(bucket, Mapping):
                if not bucket:
                    continue
                keys = np.asarray(list(bucket.keys()), dtype=np.int64)
                i_arr, j_arr = keys[:, 0], keys[:, 1]
                w_arr = np.fromiter(bucket.values(), dtype=np.float64,
                                    count=len(bucket))
            else:
                i_arr, j_arr, w_arr = bucket
                i_arr = np.asarray(i_arr, dtype=np.int64)
                j_arr = np.asarray(j_arr, dtype=np.int64)
                w_arr = np.asarray(w_arr, dtype=np.float64)
            mask = w_arr >= min_weight
            if not np.any(mask):
                continue
            i_arr, j_arr, w_arr = i_arr[mask], j_arr[mask], w_arr[mask]
            names_x = self._names[type_x]
            names_y = self._names[type_y]
            if type_x == type_y:
                used = np.unique(np.concatenate([i_arr, j_arr]))
                new_ids = child.add_nodes(
                    type_x, (names_x[t] for t in used.tolist()))
                remap = np.empty(int(used[-1]) + 1, dtype=np.int64)
                remap[used] = new_ids
                child.add_links(type_x, remap[i_arr], type_y, remap[j_arr],
                                w_arr)
            else:
                used_x = np.unique(i_arr)
                used_y = np.unique(j_arr)
                new_x = child.add_nodes(
                    type_x, (names_x[t] for t in used_x.tolist()))
                new_y = child.add_nodes(
                    type_y, (names_y[t] for t in used_y.tolist()))
                remap_x = np.empty(int(used_x[-1]) + 1, dtype=np.int64)
                remap_x[used_x] = new_x
                remap_y = np.empty(int(used_y[-1]) + 1, dtype=np.int64)
                remap_y[used_y] = new_y
                child.add_links(type_x, remap_x[i_arr], type_y,
                                remap_y[j_arr], w_arr)
        return child

    # -------------------------------------------------------------- utilities
    def degree_vector(self, node_type: str) -> np.ndarray:
        """Total incident link weight of every ``node_type`` node.

        Self-links count once, matching :meth:`degree`.  The vector is
        cached until the network mutates.
        """
        self._require_type(node_type)
        count = len(self._names[node_type])
        cached = self._degree_cache.get(node_type)
        if cached is not None and cached[0] == self._version \
                and len(cached[1]) == count:
            return cached[1]
        degrees = np.zeros(count, dtype=np.float64)
        for link_type in list(self._links):
            if node_type not in link_type:
                continue
            store = self._frozen(link_type)
            if store is None or not len(store):
                continue
            type_x, type_y = link_type
            if type_x == node_type:
                degrees += np.bincount(store.rows, weights=store.weights,
                                       minlength=count)
            if type_y == node_type:
                weights = store.weights
                if type_x == type_y:
                    # Self-links already counted via the row endpoint.
                    weights = np.where(store.rows == store.cols, 0.0,
                                       weights)
                degrees += np.bincount(store.cols, weights=weights,
                                       minlength=count)
        self._degree_cache[node_type] = (self._version, degrees)
        return degrees

    def degree(self, node_type: str, node_id: int) -> float:
        """Total weight of links incident to one node (self-links once)."""
        self._require_type(node_type)
        self._check_index(node_type, node_id)
        return float(self.degree_vector(node_type)[node_id])

    def _require_type(self, node_type: str) -> None:
        if node_type not in self._names:
            raise DataError(f"unknown node type: {node_type!r}")

    def _check_index(self, node_type: str, node_id: int) -> None:
        if not 0 <= node_id < len(self._names[node_type]):
            raise DataError(
                f"{node_type} node id {node_id} out of range "
                f"(have {len(self._names[node_type])})")

    def __repr__(self) -> str:
        types = ", ".join(f"{t}:{len(names)}"
                          for t, names in sorted(self._names.items()))
        return (f"HeterogeneousNetwork({types}; links={self.num_links()}, "
                f"weight={self.total_weight():.1f})")
