"""Network substrate: heterogeneous edge-weighted networks and builders."""

from .build import (TERM_TYPE, build_collapsed_network, build_term_network,
                    network_statistics)
from .weighted import HeterogeneousNetwork, canonical_link_type

__all__ = [
    "HeterogeneousNetwork",
    "canonical_link_type",
    "build_term_network",
    "build_collapsed_network",
    "network_statistics",
    "TERM_TYPE",
]
