"""Constructing networks from a corpus (Sections 3.1 and 3.2).

Two builders are provided:

* :func:`build_term_network` — the term co-occurrence network G^o of
  Section 3.1, used by text-only CATHY.
* :func:`build_collapsed_network` — the collapsed heterogeneous network of
  Section 3.2 / Example 3.1: term–term co-occurrence links plus
  term–entity and entity–entity links derived from document attachments.

Both assemble edge lists *columnwise*: per document they emit index
arrays (all unordered term pairs come from one cached ``triu_indices``
template, entity–term stars from a repeat/tile), concatenate once, and
hand the whole column to :meth:`HeterogeneousNetwork.add_links` — the
network's COO→CSR freeze deduplicates and sums in a single vectorized
pass instead of one dict insert per co-occurrence.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corpus import Corpus
from .weighted import HeterogeneousNetwork, LinkType, canonical_link_type

TERM_TYPE = "term"


@lru_cache(maxsize=4096)
def _pair_template(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Upper-triangle index template for all unordered pairs of n items."""
    return np.triu_indices(n, k=1)


class _EdgeColumns:
    """Per-link-type accumulator of (i, j, weight-1) edge-list columns."""

    def __init__(self) -> None:
        self._parts: Dict[LinkType, Tuple[List[np.ndarray],
                                          List[np.ndarray]]] = {}
        self._scalars: Dict[LinkType, Tuple[List[int], List[int]]] = {}

    def add_arrays(self, type_x: str, i_idx: np.ndarray, type_y: str,
                   j_idx: np.ndarray) -> None:
        """Append one unit-weight edge column (canonicalized by type)."""
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i_idx, j_idx = j_idx, i_idx
        parts = self._parts.get(link_type)
        if parts is None:
            parts = ([], [])
            self._parts[link_type] = parts
        parts[0].append(i_idx)
        parts[1].append(j_idx)

    def add_pair(self, type_x: str, i: int, type_y: str, j: int) -> None:
        """Append one unit-weight edge (sparse per-document pairs)."""
        link_type = canonical_link_type(type_x, type_y)
        if (type_x, type_y) != link_type:
            i, j = j, i
        scalars = self._scalars.get(link_type)
        if scalars is None:
            scalars = ([], [])
            self._scalars[link_type] = scalars
        scalars[0].append(i)
        scalars[1].append(j)

    def flush(self, network: HeterogeneousNetwork) -> None:
        """Hand every accumulated column to the network in one call."""
        for link_type, (i_lists, j_lists) in self._scalars.items():
            parts = self._parts.setdefault(link_type, ([], []))
            parts[0].append(np.asarray(i_lists, dtype=np.int64))
            parts[1].append(np.asarray(j_lists, dtype=np.int64))
        for link_type, (i_parts, j_parts) in self._parts.items():
            if not i_parts:
                continue
            network.add_links(link_type[0], np.concatenate(i_parts),
                              link_type[1], np.concatenate(j_parts))


class _TermIndex:
    """Maps kept corpus token ids to network node ids, registering lazily.

    Registration order matches the classic per-edge builder: first
    document containing a term registers it, terms within a document in
    sorted token order.
    """

    def __init__(self, corpus: Corpus, network: HeterogeneousNetwork,
                 min_count: int) -> None:
        counts = corpus.word_counts()
        self._keep = {w for w, c in counts.items() if c >= min_count}
        self._vocabulary = corpus.vocabulary
        self._network = network
        self._node_of: Dict[int, int] = {}

    def doc_term_ids(self, tokens: Sequence[int]) -> np.ndarray:
        """Network node ids of the document's distinct kept terms."""
        node_of = self._node_of
        ids: List[int] = []
        for tok in sorted({t for t in tokens if t in self._keep}):
            node = node_of.get(tok)
            if node is None:
                node = self._network.add_node(
                    TERM_TYPE, self._vocabulary.word_of(tok))
                node_of[tok] = node
            ids.append(node)
        return np.asarray(ids, dtype=np.int64)


def build_term_network(corpus: Corpus,
                       min_count: int = 1) -> HeterogeneousNetwork:
    """Build the term co-occurrence network from ``corpus``.

    Every unordered pair of distinct terms co-occurring in a document
    contributes one unit of link weight, following Section 3.1 ("the number
    of links e_ij ... is equal to the number of co-occurrences of the two
    terms").  Terms below ``min_count`` corpus frequency are skipped.
    """
    network = HeterogeneousNetwork(node_types=[TERM_TYPE])
    index = _TermIndex(corpus, network, min_count)
    columns = _EdgeColumns()
    for doc in corpus:
        term_ids = index.doc_term_ids(doc.tokens)
        if len(term_ids) >= 2:
            iu, ju = _pair_template(len(term_ids))
            columns.add_arrays(TERM_TYPE, term_ids[iu], TERM_TYPE,
                               term_ids[ju])
    columns.flush(network)
    return network


def build_collapsed_network(corpus: Corpus,
                            entity_types: Optional[Sequence[str]] = None,
                            min_count: int = 1,
                            include_text: bool = True,
                            ) -> HeterogeneousNetwork:
    """Collapse a text-attached HIN into an edge-weighted network.

    Implements Example 3.1: for each document, every unordered pair of
    distinct terms gets a term–term link; every (entity, term) pair gets a
    term–entity link; every unordered pair of distinct entities (same or
    different type) gets an entity link.  The link weight between two
    objects equals the number of documents in which they co-occur.

    Args:
        corpus: the text-attached network (documents + entity links).
        entity_types: which entity types to include; defaults to all types
            present in the corpus.
        min_count: minimum corpus frequency for a term to enter the network.
        include_text: set ``False`` to build a text-absent network (the
            degenerate case G^o = H discussed in Section 3.2).
    """
    if entity_types is None:
        entity_types = corpus.entity_types()
    entity_types = list(entity_types)

    node_types = list(entity_types)
    if include_text:
        node_types.append(TERM_TYPE)
    network = HeterogeneousNetwork(node_types=node_types)

    index = _TermIndex(corpus, network, min_count) if include_text else None
    columns = _EdgeColumns()
    empty = np.empty(0, dtype=np.int64)

    for doc in corpus:
        term_ids = index.doc_term_ids(doc.tokens) \
            if index is not None else empty
        # Term-term co-occurrence links.
        if len(term_ids) >= 2:
            iu, ju = _pair_template(len(term_ids))
            columns.add_arrays(TERM_TYPE, term_ids[iu], TERM_TYPE,
                               term_ids[ju])

        # Entity nodes linked to all terms of the document and to the other
        # entities of the document.
        doc_entities = []  # (type, node_id) pairs
        for etype in entity_types:
            for name in doc.entity_list(etype):
                doc_entities.append((etype, network.add_node(etype, name)))
        if len(term_ids):
            for (etype, eid) in doc_entities:
                columns.add_arrays(
                    etype, np.full(len(term_ids), eid, dtype=np.int64),
                    TERM_TYPE, term_ids)
        for (type_a, id_a), (type_b, id_b) in combinations(doc_entities, 2):
            if type_a == type_b and id_a == id_b:
                continue
            columns.add_pair(type_a, id_a, type_b, id_b)
    columns.flush(network)
    return network


def network_statistics(network: HeterogeneousNetwork) -> dict:
    """Summary statistics in the shape of Table 3.4.

    Returns a dict with per-type node counts and per-link-type totals of
    link weight, suitable for printing the dataset summary table.
    """
    stats = {
        "nodes": {t: network.node_count(t) for t in network.node_types()},
        "links": {},
    }
    for link_type in network.link_types():
        stats["links"]["-".join(link_type)] = {
            "pairs": network.num_links(link_type),
            "weight": network.total_weight(link_type),
        }
    return stats
