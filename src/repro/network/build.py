"""Constructing networks from a corpus (Sections 3.1 and 3.2).

Two builders are provided:

* :func:`build_term_network` — the term co-occurrence network G^o of
  Section 3.1, used by text-only CATHY.
* :func:`build_collapsed_network` — the collapsed heterogeneous network of
  Section 3.2 / Example 3.1: term–term co-occurrence links plus
  term–entity and entity–entity links derived from document attachments.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Sequence

from ..corpus import Corpus
from .weighted import HeterogeneousNetwork

TERM_TYPE = "term"


def build_term_network(corpus: Corpus,
                       min_count: int = 1) -> HeterogeneousNetwork:
    """Build the term co-occurrence network from ``corpus``.

    Every unordered pair of distinct terms co-occurring in a document
    contributes one unit of link weight, following Section 3.1 ("the number
    of links e_ij ... is equal to the number of co-occurrences of the two
    terms").  Terms below ``min_count`` corpus frequency are skipped.
    """
    network = HeterogeneousNetwork(node_types=[TERM_TYPE])
    counts = corpus.word_counts()
    keep = {w for w, c in counts.items() if c >= min_count}
    for doc in corpus:
        terms = sorted({tok for tok in doc.tokens if tok in keep})
        for tok_i, tok_j in combinations(terms, 2):
            i = network.add_node(TERM_TYPE, corpus.vocabulary.word_of(tok_i))
            j = network.add_node(TERM_TYPE, corpus.vocabulary.word_of(tok_j))
            network.add_link(TERM_TYPE, i, TERM_TYPE, j, 1.0)
    return network


def build_collapsed_network(corpus: Corpus,
                            entity_types: Optional[Sequence[str]] = None,
                            min_count: int = 1,
                            include_text: bool = True,
                            ) -> HeterogeneousNetwork:
    """Collapse a text-attached HIN into an edge-weighted network.

    Implements Example 3.1: for each document, every unordered pair of
    distinct terms gets a term–term link; every (entity, term) pair gets a
    term–entity link; every unordered pair of distinct entities (same or
    different type) gets an entity link.  The link weight between two
    objects equals the number of documents in which they co-occur.

    Args:
        corpus: the text-attached network (documents + entity links).
        entity_types: which entity types to include; defaults to all types
            present in the corpus.
        min_count: minimum corpus frequency for a term to enter the network.
        include_text: set ``False`` to build a text-absent network (the
            degenerate case G^o = H discussed in Section 3.2).
    """
    if entity_types is None:
        entity_types = corpus.entity_types()
    entity_types = list(entity_types)

    node_types = list(entity_types)
    if include_text:
        node_types.append(TERM_TYPE)
    network = HeterogeneousNetwork(node_types=node_types)

    counts = corpus.word_counts()
    keep = {w for w, c in counts.items() if c >= min_count}

    for doc in corpus:
        terms = sorted({tok for tok in doc.tokens
                        if tok in keep}) if include_text else []
        term_ids = [network.add_node(TERM_TYPE, corpus.vocabulary.word_of(t))
                    for t in terms]
        # Term-term co-occurrence links.
        for i, j in combinations(term_ids, 2):
            network.add_link(TERM_TYPE, i, TERM_TYPE, j, 1.0)

        # Entity nodes linked to all terms of the document and to the other
        # entities of the document.
        doc_entities = []  # (type, node_id) pairs
        for etype in entity_types:
            for name in doc.entity_list(etype):
                doc_entities.append((etype, network.add_node(etype, name)))
        for (etype, eid) in doc_entities:
            for tid in term_ids:
                network.add_link(etype, eid, TERM_TYPE, tid, 1.0)
        for (type_a, id_a), (type_b, id_b) in combinations(doc_entities, 2):
            if type_a == type_b and id_a == id_b:
                continue
            network.add_link(type_a, id_a, type_b, id_b, 1.0)
    return network


def network_statistics(network: HeterogeneousNetwork) -> dict:
    """Summary statistics in the shape of Table 3.4.

    Returns a dict with per-type node counts and per-link-type totals of
    link weight, suitable for printing the dataset summary table.
    """
    stats = {
        "nodes": {t: network.node_count(t) for t in network.node_types()},
        "links": {},
    }
    for link_type in network.link_types():
        stats["links"]["-".join(link_type)] = {
            "pairs": network.num_links(link_type),
            "weight": network.total_weight(link_type),
        }
    return stats
