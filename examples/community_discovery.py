"""Hierarchical community discovery on a text-absent network.

Section 3.1: "For the data where no text information is available, our
method can be applied to find hierarchical community structures."  This
example strips the text from a bibliographic network, clusters the pure
author/venue link structure into hierarchical communities, and then
demonstrates the recursive framework's revision property: re-growing one
subtree while leaving the rest of the hierarchy intact (Section 1.4).

Run:  python examples/community_discovery.py
"""

from repro.cathy import BuilderConfig, HierarchyBuilder
from repro.datasets import DBLPConfig, generate_dblp
from repro.network import build_collapsed_network


def community_summary(topic, truth) -> str:
    """Describe a community by its top authors' true areas."""
    authors = topic.top_words("author", 5)
    areas = [truth.topic_of_entity("author", a) for a in authors]
    area_names = sorted({truth.paths[a[:1]].name
                         for a in areas if a is not None})
    return (f"{topic.notation}: authors {', '.join(authors[:3])} ... "
            f"(true areas: {', '.join(area_names)})")


def main() -> None:
    dataset = generate_dblp(DBLPConfig(max_authors=150), seed=3)
    truth = dataset.ground_truth

    # Text-absent network: only author-author and author-venue links.
    network = build_collapsed_network(dataset.corpus, include_text=False)
    print(f"text-absent network: {network}")

    builder = HierarchyBuilder(
        BuilderConfig(num_children=[6, 2], max_depth=2,
                      weight_mode="learn", max_iter=80), seed=0)
    hierarchy = builder.build(network)

    print("\nhierarchical communities (no text used):")
    for topic in hierarchy.topics():
        if topic.level == 1:
            print("  " + community_summary(topic, truth))

    # Revision: re-grow one community's subtree with a different number
    # of subcommunities, leaving the siblings untouched.
    target = hierarchy.root.children[0]
    sibling = hierarchy.root.children[1]
    sibling_children_before = [c.notation for c in sibling.children]

    print(f"\nrevising subtree {target.notation} (3 subcommunities "
          "instead of 2) ...")
    builder.expand_topic(hierarchy, target, num_children=3)

    print(f"  {target.notation} now has "
          f"{len(target.children)} children")
    assert [c.notation for c in sibling.children] == \
        sibling_children_before
    print(f"  sibling {sibling.notation} untouched "
          f"({len(sibling.children)} children)")


if __name__ == "__main__":
    main()
