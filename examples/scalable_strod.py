"""Scalable, robust topic discovery with STROD (Chapter 7).

Plants an LDA model, recovers it with moment-based tensor decomposition,
and contrasts runtime and run-to-run stability against collapsed Gibbs
sampling — the Section 7.4 experiments in miniature.  Also builds a
recursive STROD topic tree over text.

Run:  python examples/scalable_strod.py
"""

import time

import numpy as np

from repro.baselines import LDAGibbs
from repro.datasets import DBLPConfig, generate_dblp, generate_planted_lda
from repro.eval import pairwise_discrepancy, recovery_error
from repro.strod import STROD, STRODHierarchyBuilder, STRODTreeConfig


def main() -> None:
    planted = generate_planted_lda(num_docs=1200, num_topics=5,
                                   vocab_size=120, doc_length=50, seed=1)
    alpha0 = float(planted.alpha.sum())
    print(f"planted LDA: k=5, V=120, D=1200, alpha0={alpha0:.2f}")

    start = time.perf_counter()
    strod = STROD(num_topics=5, alpha0=alpha0, seed=0)
    model = strod.fit(planted.docs, planted.vocab_size)
    strod_time = time.perf_counter() - start
    print(f"\nSTROD:      {strod_time:6.2f}s   recovery L1 error "
          f"{recovery_error(planted.phi, model.phi):.3f}")
    print(f"  alpha true: {np.round(np.sort(planted.alpha)[::-1], 3)}")
    print(f"  alpha hat : {np.round(model.alpha, 3)}")

    start = time.perf_counter()
    gibbs = LDAGibbs(num_topics=5, iterations=50, seed=0).fit(
        planted.docs, planted.vocab_size)
    gibbs_time = time.perf_counter() - start
    print(f"Gibbs (50):  {gibbs_time:5.2f}s   recovery L1 error "
          f"{recovery_error(planted.phi, gibbs.phi):.3f}")
    print(f"  speedup: {gibbs_time / strod_time:.1f}x")

    print("\nrun-to-run robustness (aligned per-topic L1 discrepancy):")
    strod_runs = [STROD(num_topics=5, alpha0=alpha0, seed=s).fit(
        planted.docs, planted.vocab_size).phi for s in (0, 1, 2)]
    gibbs_runs = [LDAGibbs(num_topics=5, iterations=25, seed=s).fit(
        planted.docs, planted.vocab_size).phi for s in (0, 1, 2)]
    print(f"  STROD: {pairwise_discrepancy(strod_runs):.4f}")
    print(f"  Gibbs: {pairwise_discrepancy(gibbs_runs):.4f}")

    print("\nrecursive STROD topic tree on synthetic DBLP titles:")
    corpus = generate_dblp(DBLPConfig(max_authors=120), seed=3).corpus
    builder = STRODHierarchyBuilder(
        STRODTreeConfig(num_children=4, max_depth=2, min_documents=80),
        seed=0)
    hierarchy = builder.build(corpus)
    for topic in hierarchy.topics():
        if topic.level == 0:
            continue
        words = topic.top_words("term", 5)
        print("  " * topic.level + f"[{topic.notation}] "
              + ", ".join(words))


if __name__ == "__main__":
    main()
