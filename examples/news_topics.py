"""Topic and entity analysis of a news corpus (the NEWS setting).

Mines a flat story hierarchy from a synthetic news corpus whose
documents carry automatically-extracted (noisy) person and location
entities, then drills into one story's subtopics and entity roles —
mirroring the NEWS case study of Sections 3.3 and Table 3.7.

Run:  python examples/news_topics.py
"""

from repro.core import LatentEntityMiner, MinerConfig
from repro.datasets import NewsConfig, generate_news


def main() -> None:
    dataset = generate_news(NewsConfig(num_stories=8,
                                       articles_per_story=80), seed=5)
    corpus = dataset.corpus
    print(f"news corpus: {len(corpus)} articles, "
          f"entity types {corpus.entity_types()}\n")

    miner = LatentEntityMiner(
        MinerConfig(num_children=[8, 2], max_depth=2,
                    weight_mode="learn", min_support=4), seed=0)
    result = miner.fit(corpus)

    print("story hierarchy (phrases / locations):\n")
    print(result.render(max_phrases=3, entity_types=["location"],
                        max_entities=3))

    # Drill into the first story: aspects and key people.
    story = result.hierarchy.root.children[0]
    print(f"\nstory {story.notation}: "
          + " / ".join(story.top_phrases(4)))
    print("key people (ERankPop+Pur):")
    for name, score in result.roles.rank_entities(story.notation,
                                                  "person", top_k=4):
        print(f"  {name}  ({score:.4f})")
    for aspect in story.children:
        print(f"  aspect {aspect.notation}: "
              + " / ".join(aspect.top_phrases(3)))


if __name__ == "__main__":
    main()
